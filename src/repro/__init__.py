"""repro — Checking Equivalence for Partial Implementations (DAC 2001).

A complete implementation of Scholl & Becker's Black Box Equivalence
Checking, with every substrate built from scratch: a BDD package, a
CDCL SAT solver, a netlist model with BLIF/ISCAS I/O, the benchmark
generators, and the paper's full experimental harness.

The most convenient entry point is the facade::

    from repro import BlackBoxChecker

    checker = BlackBoxChecker(spec_circuit)
    results = checker.check(partial_implementation)

Subpackages: :mod:`repro.bdd`, :mod:`repro.circuit`,
:mod:`repro.generators`, :mod:`repro.sim`, :mod:`repro.partial`,
:mod:`repro.core`, :mod:`repro.sat`, :mod:`repro.seq`,
:mod:`repro.experiments`, :mod:`repro.analysis`.
"""

from .analysis import Diagnostic, LintReport, lint_circuit, lint_partial
from .api import BlackBoxChecker
from .circuit.netlist import Circuit, CircuitError, \
    CombinationalCycleError
from .circuit.builder import CircuitBuilder
from .core.ladder import CHECK_ORDER, check_partial_equivalence, \
    run_ladder
from .core.result import CheckResult
from .partial.blackbox import BlackBox, PartialImplementation

__version__ = "1.0.0"

__all__ = [
    "BlackBoxChecker",
    "Circuit",
    "CircuitBuilder",
    "CircuitError",
    "CombinationalCycleError",
    "BlackBox",
    "PartialImplementation",
    "CheckResult",
    "CHECK_ORDER",
    "run_ladder",
    "check_partial_equivalence",
    "Diagnostic",
    "LintReport",
    "lint_circuit",
    "lint_partial",
    "__version__",
]
