"""BDD backend registry: select the manager implementation by name.

Three backends exist:

``dict``
    The pure-Python :class:`repro.bdd.manager.BddManager` (default).
    No dependencies; the differential oracle for the arena.
``arena``
    The numpy struct-of-arrays :class:`repro.bdd.arena.ArenaManager`.
    Requires numpy; requesting it without numpy raises
    :class:`repro.bdd.arena.ArenaUnavailableError`, which carries a
    structured ``diagnostic`` dict instead of an ImportError traceback.
``legacy``
    The frozen PR-4 reference stack (:mod:`repro.bdd._legacy`), kept
    for before/after benchmarking only.

Selection precedence: an explicit ``backend=`` argument beats the
``REPRO_BDD_BACKEND`` environment variable, which beats the default.
The resolved name is threaded through :attr:`repro.jobs.spec.CaseSpec`
so campaign journals stay deterministic — the default backend is
*omitted* from journal records, keeping pre-arena journals
byte-identical.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from .function import Bdd, default_bdd

__all__ = ["BACKENDS", "DEFAULT_BACKEND", "BACKEND_ENV",
           "normalize_backend", "resolve_backend", "backend_class",
           "make_bdd", "default_bdd_for_backend"]

BACKENDS = ("dict", "arena", "legacy")
DEFAULT_BACKEND = "dict"
BACKEND_ENV = "REPRO_BDD_BACKEND"


def normalize_backend(name: Optional[str]) -> Optional[str]:
    """Canonical backend name, or ``None`` for "unset / the default".

    ``None``, ``""`` and ``"dict"`` all normalize to ``None`` so that
    case keys and journal bytes are identical whether the default was
    chosen implicitly or spelled out.  Unknown names raise
    ``ValueError``.
    """
    if name is None:
        return None
    name = name.strip().lower()
    if name in ("", DEFAULT_BACKEND):
        return None
    if name not in BACKENDS:
        raise ValueError("unknown BDD backend %r (choose from %s)"
                         % (name, ", ".join(BACKENDS)))
    return name


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve an explicit name (or the environment) to a backend.

    Explicit ``name`` wins; otherwise ``$REPRO_BDD_BACKEND`` is
    consulted; otherwise the default.  Always returns a member of
    :data:`BACKENDS`.
    """
    if name is not None and name != "":
        return normalize_backend(name) or DEFAULT_BACKEND
    return normalize_backend(os.environ.get(BACKEND_ENV)) \
        or DEFAULT_BACKEND


def backend_class(name: Optional[str] = None) -> type:
    """The :class:`~repro.bdd.function.Bdd` subclass for a backend.

    Importing the class never requires numpy — only *constructing* an
    arena does (see :class:`repro.bdd.arena.ArenaUnavailableError`).
    """
    resolved = resolve_backend(name)
    if resolved == "arena":
        from .arena import ArenaBdd

        return ArenaBdd
    if resolved == "legacy":
        from ._legacy import LegacyBdd

        return LegacyBdd
    return Bdd


def make_bdd(backend: Optional[str] = None, **kwargs) -> Bdd:
    """Construct a Bdd on the chosen backend (kwargs as ``Bdd(...)``)."""
    return backend_class(backend)(**kwargs)


def default_bdd_for_backend(backend: Optional[str] = None)\
        -> Callable[[], Bdd]:
    """Zero-arg factory producing the backend's production-tuned Bdd.

    Each backend's own ``default_*`` tuning is preserved (all three
    currently agree: auto-reorder on, 30k initial threshold).
    """
    resolved = resolve_backend(backend)
    if resolved == "arena":
        from .arena import default_arena_bdd

        return default_arena_bdd
    if resolved == "legacy":
        from ._legacy import default_legacy_bdd

        return default_legacy_bdd
    return default_bdd
