"""Computed-table configuration and statistics for the BDD manager.

The manager keeps one bounded *segment* (a dict) per operation code
instead of a single unbounded table.  Bounding the segments turns the
computed table into a lossy cache in the spirit of CUDD's: a full
segment evicts its oldest entry on insert (cheap O(1) eviction; the
classic hashed-slot overwrite was measured slower in CPython, where the
C-implemented dict probe beats any Python-level slot arithmetic — see
``docs/performance.md``).  Losing an entry only costs recomputation;
results stay canonical because every node goes through the unique
table.

Segments also survive garbage collection when ``keep_across_gc`` is on:
entries whose operands and result are still live are kept instead of
the historic wholesale ``clear()``, so the table stays warm across GC.
Reordering still clears everything — a level swap changes what a node
id *means*, so cached results would be wrong, not just stale.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheConfig", "DEFAULT_CACHE_CONFIG", "OP_NAMES"]

#: Operation names, in opcode order (see ``repro.bdd.manager._OP_*``).
OP_NAMES = ("and", "or", "xor", "not", "ite", "exists", "forall",
            "compose", "restrict", "and_exists")


@dataclass(frozen=True)
class CacheConfig:
    """Sizing and retention policy of the segmented computed table.

    Parameters
    ----------
    segment_entries:
        Upper bound on the number of entries *per operation segment*.
        ``0`` means unbounded (no eviction).  Small powers of two are
        useful in tests; the default is large enough that eviction is
        rare on the paper's circuits while still bounding memory.
    keep_across_gc:
        Keep computed-table entries across garbage collection when the
        operands and the result all survived the sweep.  When off, every
        GC clears the whole table (the pre-segmentation behaviour).
    """

    segment_entries: int = 1 << 16
    keep_across_gc: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.segment_entries, int) \
                or isinstance(self.segment_entries, bool):
            raise TypeError("segment_entries must be an int")
        if self.segment_entries < 0:
            raise ValueError("segment_entries must be >= 0 (0 = unbounded)")

    @property
    def entry_limit(self) -> int:
        """The per-segment bound as a plain comparison limit."""
        return self.segment_entries if self.segment_entries else (1 << 62)


DEFAULT_CACHE_CONFIG = CacheConfig()
