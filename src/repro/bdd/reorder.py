"""Dynamic variable reordering by Rudell's sifting algorithm.

The paper's experiments run with CUDD's dynamic reordering enabled
("Dynamic reordering [15] was activated during all experiments"); this
module provides the equivalent for our manager.

The central primitive is :func:`swap_adjacent_levels`, an in-place swap of
two neighbouring levels.  Node ids keep their Boolean semantics across the
swap, so user handles stay valid.  :func:`sift` moves each variable (most
populous first) through the whole order and parks it at the position that
minimised the live node count.

Correctness relies on exact parent-reference counts in the manager, which
is why callers must garbage-collect immediately before sifting (both
:meth:`repro.bdd.function.Bdd.reorder` and the automatic trigger do).
"""

from __future__ import annotations

from typing import List

from .manager import TRUE, BddManager

__all__ = ["swap_adjacent_levels", "sift", "set_order"]


def swap_adjacent_levels(mgr: BddManager, level: int) -> int:
    """Swap the variables at ``level`` and ``level + 1`` in place.

    Returns the live node count after the swap.  Semantics of every node
    id are preserved; nodes made unreachable by the restructuring are
    freed immediately (exact parent counts required).

    An attached budget is checked once *before* any mutation — the only
    safe point — and detached for the duration of the swap, so a
    :class:`~repro.resilience.budget.BudgetExceededError` can never
    surface from a half-rebuilt level.
    """
    if not 0 <= level < mgr.num_vars - 1:
        raise ValueError("level %d out of range" % level)
    budget = mgr.budget
    if budget is not None:
        budget.checkpoint("reorder", live_nodes=mgr._live_nodes)
        mgr.set_budget(None)
    try:
        return _swap_unchecked(mgr, level)
    finally:
        if budget is not None:
            mgr.set_budget(budget)


def _swap_unchecked(mgr: BddManager, level: int) -> int:
    u = mgr._level2var[level]
    v = mgr._level2var[level + 1]
    var_arr, low_arr, high_arr = mgr._var, mgr._low, mgr._high
    unodes = mgr._var_nodes[u]

    movers: List[int] = [n for n in unodes
                         if var_arr[low_arr[n]] == v
                         or var_arr[high_arr[n]] == v]
    # Phase 1: take movers out of the unique table so lookups during
    # rebuilding only ever hit nodes that keep their identity.
    for n in movers:
        del mgr._unique[(u, low_arr[n], high_arr[n])]
        unodes.discard(n)

    vnodes = mgr._var_nodes[v]
    pref = mgr._pref
    for n in movers:
        f0, f1 = low_arr[n], high_arr[n]
        if var_arr[f0] == v:
            f00, f01 = low_arr[f0], high_arr[f0]
        else:
            f00 = f01 = f0
        if var_arr[f1] == v:
            f10, f11 = low_arr[f1], high_arr[f1]
        else:
            f10 = f11 = f1
        g0 = mgr.mk(u, f00, f10)
        g1 = mgr.mk(u, f01, f11)
        # Mutate n in place: it now tests v first.
        key = (v, g0, g1)
        assert key not in mgr._unique, "swap produced duplicate node"
        var_arr[n] = v
        low_arr[n] = g0
        high_arr[n] = g1
        mgr._unique[key] = n
        vnodes.add(n)
        pref[g0] += 1
        pref[g1] += 1
        for child in (f0, f1):
            pref[child] -= 1
            if (child > TRUE and pref[child] == 0
                    and mgr._ref[child] == 0):
                mgr._free_node(child)

    mgr._level2var[level] = v
    mgr._level2var[level + 1] = u
    mgr._var2level[u] = level + 1
    mgr._var2level[v] = level
    return mgr._live_nodes


def _sift_one(mgr: BddManager, var: int, max_growth: float) -> None:
    """Move one variable through the order, settle at its best level."""
    nvars = mgr.num_vars
    start = mgr._var2level[var]
    best_size = mgr._live_nodes
    best_level = start
    limit = int(best_size * max_growth) + 2

    def walk(level: int, stop: int, step: int) -> int:
        nonlocal best_size, best_level
        while level != stop:
            if step > 0:
                size = swap_adjacent_levels(mgr, level)
            else:
                size = swap_adjacent_levels(mgr, level - 1)
            level += step
            if size < best_size:
                best_size = size
                best_level = level
            if size > limit:
                break
        return level

    # Visit the nearer end first, then sweep to the other end, then park
    # at the best position seen.
    if start <= (nvars - 1) - start:
        level = walk(start, 0, -1)
        level = walk(level, nvars - 1, +1)
    else:
        level = walk(start, nvars - 1, +1)
        level = walk(level, 0, -1)
    while level < best_level:
        swap_adjacent_levels(mgr, level)
        level += 1
    while level > best_level:
        swap_adjacent_levels(mgr, level - 1)
        level -= 1


def sift(mgr: BddManager, max_growth: float = 1.2,
         max_vars: int = 0) -> int:
    """One full sifting pass; returns the resulting live node count.

    Variables are processed in decreasing order of their node count.
    ``max_growth`` bounds the tolerated intermediate blow-up per
    variable; ``max_vars`` (0 = all) limits how many variables are
    sifted, mirroring CUDD's ``siftMaxVar``.
    """
    order = sorted(range(mgr.num_vars),
                   key=lambda w: -len(mgr._var_nodes[w]))
    if max_vars:
        order = order[:max_vars]
    for var in order:
        if len(mgr._var_nodes[var]) == 0:
            continue
        _sift_one(mgr, var, max_growth)
    mgr._cache.clear()
    if mgr.debug_checks:
        mgr._selfcheck("reorder")
    return mgr._live_nodes


def set_order(mgr: BddManager, names_top_to_bottom: List[str]) -> None:
    """Force a specific variable order via bubble sort of level swaps.

    Mostly a testing aid; sifting is the production path.
    """
    want = [mgr.var_id(n) for n in names_top_to_bottom]
    if sorted(want) != list(range(mgr.num_vars)):
        raise ValueError("order must mention every variable exactly once")
    for target_level, var in enumerate(want):
        level = mgr._var2level[var]
        while level > target_level:
            swap_adjacent_levels(mgr, level - 1)
            level -= 1
    mgr._cache.clear()
