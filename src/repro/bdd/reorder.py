"""Dynamic variable reordering by Rudell's sifting algorithm.

The paper's experiments run with CUDD's dynamic reordering enabled
("Dynamic reordering [15] was activated during all experiments"); this
module provides the equivalent for our manager.

The central primitive is :func:`swap_adjacent_levels`, an in-place swap of
two neighbouring levels.  Node ids keep their Boolean semantics across the
swap, so user handles stay valid.  :func:`sift` moves each variable (most
populous first) through the whole order and parks it at the position that
minimised the live node count.

Correctness relies on exact parent-reference counts in the manager, which
is why callers must garbage-collect immediately before sifting (both
:meth:`repro.bdd.function.Bdd.reorder` and the automatic trigger do).

Computed-table hygiene: a raw :func:`swap_adjacent_levels` leaves the
manager's computed table dirty — swaps preserve node semantics, but ids
freed here may be recycled by later ``mk`` calls, so the *caller* must
invalidate the table before running any Boolean operation.  :func:`sift`
and :func:`set_order` do this via :meth:`BddManager.clear_cache` once at
the end of their swap sequences.
"""

from __future__ import annotations

from typing import List, Optional

from .manager import TRUE, BddManager, _TERMINAL_VAR

__all__ = ["swap_adjacent_levels", "sift", "set_order"]


def swap_adjacent_levels(mgr: BddManager, level: int) -> int:
    """Swap the variables at ``level`` and ``level + 1`` in place.

    Returns the live node count after the swap.  Semantics of every node
    id are preserved; nodes made unreachable by the restructuring are
    freed immediately (exact parent counts required).

    An attached budget is checked once *before* any mutation — the only
    safe point — and detached for the duration of the swap, so a
    :class:`~repro.resilience.budget.BudgetExceededError` can never
    surface from a half-rebuilt level.
    """
    if not 0 <= level < mgr.num_vars - 1:
        raise ValueError("level %d out of range" % level)
    budget = mgr.budget
    if budget is not None:
        budget.checkpoint("reorder", live_nodes=mgr._live_nodes)
        mgr.set_budget(None)
    # Manager subclasses may pin their own swap implementation (the
    # legacy reference manager keeps the historic one so before/after
    # benchmarks measure the true pre-rewrite code path).
    impl = getattr(type(mgr), "_swap_unchecked_impl", _swap_unchecked)
    try:
        return impl(mgr, level)
    finally:
        if budget is not None:
            mgr.set_budget(budget)


def _swap_unchecked(mgr: BddManager, level: int) -> int:
    # Sifting spends most of its time here, so the loop binds every
    # manager structure to a local and inlines both the node-creating
    # half of ``mk`` and the ``_free_node`` cascade.  The duplicate-node
    # assert runs only under ``debug_checks``.
    u = mgr._level2var[level]
    v = mgr._level2var[level + 1]
    var_arr = mgr._var
    low_arr = mgr._low
    high_arr = mgr._high
    var_nodes = mgr._var_nodes
    unodes = var_nodes[u]
    unique = mgr._unique
    unique_get = unique.get
    pref = mgr._pref
    ref = mgr._ref
    free = mgr._free
    free_append = free.append
    debug = mgr.debug_checks

    movers: List[int] = [n for n in unodes
                         if var_arr[low_arr[n]] == v
                         or var_arr[high_arr[n]] == v]
    # Phase 1: take movers out of the unique table so lookups during
    # rebuilding only ever hit nodes that keep their identity.
    for n in movers:
        del unique[(u, low_arr[n], high_arr[n])]
        unodes.discard(n)

    vnodes = var_nodes[v]
    vnodes_add = vnodes.add
    unodes_add = unodes.add
    live = mgr._live_nodes
    peak = mgr.peak_live_nodes
    for n in movers:
        f0 = low_arr[n]
        f1 = high_arr[n]
        if var_arr[f0] == v:
            f00 = low_arr[f0]
            f01 = high_arr[f0]
        else:
            f00 = f01 = f0
        if var_arr[f1] == v:
            f10 = low_arr[f1]
            f11 = high_arr[f1]
        else:
            f10 = f11 = f1
        # Inline mk(u, f00, f10).
        if f00 == f10:
            g0 = f00
        else:
            ukey = (u, f00, f10)
            g0 = unique_get(ukey)
            if g0 is None:
                if free:
                    g0 = free.pop()
                    var_arr[g0] = u
                    low_arr[g0] = f00
                    high_arr[g0] = f10
                    ref[g0] = 0
                    pref[g0] = 0
                else:
                    g0 = len(var_arr)
                    var_arr.append(u)
                    low_arr.append(f00)
                    high_arr.append(f10)
                    ref.append(0)
                    pref.append(0)
                unique[ukey] = g0
                unodes_add(g0)
                pref[f00] += 1
                pref[f10] += 1
                live += 1
                if live > peak:
                    peak = live
                cd = mgr._budget_countdown
                if cd is not None:
                    if cd > 0:
                        mgr._budget_countdown = cd - 1
                    else:
                        mgr._live_nodes = live
                        mgr._budget_poll("mk")
        # Inline mk(u, f01, f11).
        if f01 == f11:
            g1 = f01
        else:
            ukey = (u, f01, f11)
            g1 = unique_get(ukey)
            if g1 is None:
                if free:
                    g1 = free.pop()
                    var_arr[g1] = u
                    low_arr[g1] = f01
                    high_arr[g1] = f11
                    ref[g1] = 0
                    pref[g1] = 0
                else:
                    g1 = len(var_arr)
                    var_arr.append(u)
                    low_arr.append(f01)
                    high_arr.append(f11)
                    ref.append(0)
                    pref.append(0)
                unique[ukey] = g1
                unodes_add(g1)
                pref[f01] += 1
                pref[f11] += 1
                live += 1
                if live > peak:
                    peak = live
                cd = mgr._budget_countdown
                if cd is not None:
                    if cd > 0:
                        mgr._budget_countdown = cd - 1
                    else:
                        mgr._live_nodes = live
                        mgr._budget_poll("mk")
        # Mutate n in place: it now tests v first.
        key = (v, g0, g1)
        if debug:
            assert key not in unique, "swap produced duplicate node"
        var_arr[n] = v
        low_arr[n] = g0
        high_arr[n] = g1
        unique[key] = n
        vnodes_add(n)
        pref[g0] += 1
        pref[g1] += 1
        # Release the old children; cascade into dead subgraphs
        # (inline _free_node).
        for child in (f0, f1):
            pref[child] -= 1
            if child > TRUE and pref[child] == 0 and ref[child] == 0:
                dstack = [child]
                while dstack:
                    d = dstack.pop()
                    w = var_arr[d]
                    del unique[(w, low_arr[d], high_arr[d])]
                    var_nodes[w].discard(d)
                    var_arr[d] = _TERMINAL_VAR
                    for c in (low_arr[d], high_arr[d]):
                        pref[c] -= 1
                        if c > TRUE and pref[c] == 0 and ref[c] == 0:
                            dstack.append(c)
                    free_append(d)
                    live -= 1

    mgr._live_nodes = live
    if peak > mgr.peak_live_nodes:
        mgr.peak_live_nodes = peak
    mgr._level2var[level] = v
    mgr._level2var[level + 1] = u
    mgr._var2level[u] = level + 1
    mgr._var2level[v] = level
    return live


def _sift_one(mgr: BddManager, var: int, max_growth: float,
              stall: int = 0) -> None:
    """Move one variable through the order, settle at its best level.

    The walk in each direction terminates early on two conditions:

    * the live count exceeds ``max_growth`` times the *best* size seen
      so far (the bound tightens as better positions are found), or
    * ``stall`` consecutive swaps have failed to improve on the best —
      the span cut that makes sifting affordable on wide orders, where
      a variable's useful positions cluster near a local optimum and
      the historic full-span walk spent most of its swaps shuffling a
      settled variable through levels it never belonged in.

    ``stall = 0`` disables the second condition (the historic walk).
    """
    nvars = mgr.num_vars
    start = mgr._var2level[var]
    best_size = mgr._live_nodes
    best_level = start

    def walk(level: int, stop: int, step: int) -> int:
        nonlocal best_size, best_level
        since_best = 0
        while level != stop:
            if step > 0:
                size = swap_adjacent_levels(mgr, level)
            else:
                size = swap_adjacent_levels(mgr, level - 1)
            level += step
            if size < best_size:
                best_size = size
                best_level = level
                since_best = 0
            else:
                since_best += 1
                if size > int(best_size * max_growth) + 2:
                    break
                if stall and since_best >= stall:
                    break
        return level

    # Visit the nearer end first, then sweep to the other end, then park
    # at the best position seen.
    if start <= (nvars - 1) - start:
        level = walk(start, 0, -1)
        level = walk(level, nvars - 1, +1)
    else:
        level = walk(start, nvars - 1, +1)
        level = walk(level, 0, -1)
    while level < best_level:
        swap_adjacent_levels(mgr, level)
        level += 1
    while level > best_level:
        swap_adjacent_levels(mgr, level - 1)
        level -= 1


def sift(mgr: BddManager, max_growth: float = 1.2,
         max_vars: int = 0, stall: Optional[int] = None) -> int:
    """One full sifting pass; returns the resulting live node count.

    Variables are processed in decreasing order of their node count.
    ``max_growth`` bounds the tolerated intermediate blow-up per
    variable; ``max_vars`` (0 = all) limits how many variables are
    sifted, mirroring CUDD's ``siftMaxVar``; ``stall`` is the
    early-termination span cut of :func:`_sift_one` (``None`` reads the
    manager's ``sift_stall`` attribute, ``0`` forces the historic
    full-span walk).

    A manager subclass may pin the historic per-variable walk via a
    ``_sift_one_impl`` class attribute (the legacy reference manager
    does, so before/after benchmarks measure the true pre-rewrite
    reordering cost).
    """
    counts = mgr.var_node_counts()
    order = sorted(range(mgr.num_vars), key=lambda w: -counts[w])
    if max_vars:
        order = order[:max_vars]
    if stall is None:
        stall = getattr(mgr, "sift_stall", 0)
    sift_one = getattr(type(mgr), "_sift_one_impl", _sift_one)
    # Duck-typed observability hook (repro.obs.Tracer injected via
    # BddManager.set_tracer); one span per sifting pass covers both the
    # automatic trigger and explicit Bdd.reorder() calls.
    tracer = getattr(mgr, "_tracer", None)
    span = None if tracer is None \
        else tracer.span("reorder", live_before=mgr._live_nodes,
                         variables=len(order))
    try:
        for var in order:
            # Re-read: earlier sifts shift nodes between variables.
            if mgr.var_node_counts()[var] == 0:
                continue
            sift_one(mgr, var, max_growth, stall)
        mgr.clear_cache()
    finally:
        if span is not None:
            span.done(live_after=mgr._live_nodes)
    if mgr.debug_checks:
        mgr._selfcheck("reorder")
    return mgr._live_nodes


def set_order(mgr: BddManager, names_top_to_bottom: List[str]) -> None:
    """Force a specific variable order via bubble sort of level swaps.

    Mostly a testing aid; sifting is the production path.
    """
    want = [mgr.var_id(n) for n in names_top_to_bottom]
    if sorted(want) != list(range(mgr.num_vars)):
        raise ValueError("order must mention every variable exactly once")
    for target_level, var in enumerate(want):
        level = mgr._var2level[var]
        while level > target_level:
            swap_adjacent_levels(mgr, level - 1)
            level -= 1
    mgr.clear_cache()
