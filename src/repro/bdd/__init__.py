"""A from-scratch ROBDD package (the paper's CUDD substrate).

Quick example::

    from repro.bdd import Bdd

    bdd = Bdd()
    x, y = bdd.add_var("x"), bdd.add_var("y")
    f = (x & ~y) | (~x & y)
    assert f == (x ^ y)
    assert f.sat_count() == 2
"""

from .cache import CacheConfig, DEFAULT_CACHE_CONFIG
from .function import Bdd, Function, default_bdd
from .manager import BddManager, FALSE, TRUE
from .reorder import set_order, sift, swap_adjacent_levels
from .dot import to_dot
from .restrict_ops import constrain, minimize_restrict
from .io import (dump_functions, dumps_functions, load_functions,
                 loads_functions)
from .backends import (BACKENDS, DEFAULT_BACKEND, BACKEND_ENV,
                       default_bdd_for_backend, make_bdd,
                       normalize_backend, resolve_backend)
# The arena classes themselves live in repro.bdd.arena (importable
# without numpy; constructing an ArenaManager without numpy raises
# ArenaUnavailableError with a structured diagnostic).
from .arena import ArenaUnavailableError, arena_available

__all__ = [
    "Bdd",
    "CacheConfig",
    "DEFAULT_CACHE_CONFIG",
    "Function",
    "default_bdd",
    "BddManager",
    "FALSE",
    "TRUE",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "BACKEND_ENV",
    "normalize_backend",
    "resolve_backend",
    "make_bdd",
    "default_bdd_for_backend",
    "ArenaUnavailableError",
    "arena_available",
    "sift",
    "set_order",
    "swap_adjacent_levels",
    "to_dot",
    "dump_functions",
    "dumps_functions",
    "load_functions",
    "loads_functions",
    "constrain",
    "minimize_restrict",
]
