"""Graphviz DOT export for BDDs (debugging / documentation aid)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .function import Function
from .manager import FALSE, TRUE

__all__ = ["to_dot"]


def to_dot(functions: Union[Function, Sequence[Function]],
           labels: Optional[Sequence[str]] = None) -> str:
    """Render one or more BDDs sharing a manager as a DOT digraph.

    Solid edges are then-edges, dashed edges are else-edges; nodes are
    ranked by variable level as is conventional for BDD figures.
    """
    if isinstance(functions, Function):
        functions = [functions]
    if not functions:
        raise ValueError("nothing to render")
    bdd = functions[0].bdd
    mgr = bdd.manager
    if labels is None:
        labels = ["f%d" % i for i in range(len(functions))]
    if len(labels) != len(functions):
        raise ValueError("one label per function required")

    nodes: List[int] = []
    seen = set()
    stack = [f.node for f in functions]
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        nodes.append(u)
        if u > TRUE:
            stack.append(mgr.node_low(u))
            stack.append(mgr.node_high(u))

    by_level: Dict[int, List[int]] = {}
    for u in nodes:
        if u > TRUE:
            by_level.setdefault(mgr._node_level(u), []).append(u)

    out = ["digraph bdd {"]
    for i, (f, label) in enumerate(zip(functions, labels)):
        out.append('  root%d [shape=plaintext, label="%s"];' % (i, label))
        out.append("  root%d -> n%d;" % (i, f.node))
    out.append('  n%d [shape=box, label="0"];' % FALSE)
    out.append('  n%d [shape=box, label="1"];' % TRUE)
    for level in sorted(by_level):
        members = by_level[level]
        name = mgr.var_name(mgr._level2var[level])
        for u in members:
            out.append('  n%d [shape=circle, label="%s"];' % (u, name))
        out.append("  { rank=same; %s }"
                   % " ".join("n%d;" % u for u in members))
    for u in nodes:
        if u > TRUE:
            out.append("  n%d -> n%d [style=dashed];"
                       % (u, mgr.node_low(u)))
            out.append("  n%d -> n%d;" % (u, mgr.node_high(u)))
    out.append("}")
    return "\n".join(out)
