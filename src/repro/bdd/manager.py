"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This module provides a from-scratch BDD package playing the role CUDD
[Somenzi 1998] plays in the original paper.  Nodes live in parallel arrays
inside a :class:`BddManager`; user code handles opaque integer node ids
wrapped by :class:`repro.bdd.function.Function`.

Design notes
------------
* No complement edges: negation is a cached recursive operation.  This
  keeps the unique table, quantification and the sifting swap simple and
  easy to validate.
* Reference counting is *external only*: :class:`Function` wrappers hold
  references; garbage collection is a mark-and-sweep from externally
  referenced nodes.  Intermediate results of a running operation are safe
  because collection only happens between top-level operations.
* Dynamic variable reordering (Rudell's sifting) is implemented in
  :mod:`repro.bdd.reorder` and mutates nodes in place, so node ids held by
  the user stay valid across reordering.
"""

from __future__ import annotations

import os
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List,
                    Optional, Tuple, Union)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.budget import Budget

__all__ = ["BddManager", "FALSE", "TRUE", "debug_checks_enabled"]


def debug_checks_enabled() -> bool:
    """Whether ``REPRO_DEBUG`` asks for the opt-in BDD sanitizer."""
    return os.environ.get("REPRO_DEBUG", "").strip().lower() in (
        "1", "true", "yes", "on")

#: Node id of the constant-false terminal.
FALSE = 0
#: Node id of the constant-true terminal.
TRUE = 1

#: Pseudo variable id used for the two terminal nodes.  Terminals compare
#: *below* every real variable, so their level must be larger than any
#: real level.
_TERMINAL_VAR = -1
_TERMINAL_LEVEL = 1 << 60

# Opcodes for the computed table.
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2
_OP_NOT = 3
_OP_ITE = 4
_OP_EXISTS = 5
_OP_FORALL = 6
_OP_COMPOSE = 7
_OP_RESTRICT = 8
_OP_AND_EXISTS = 9


class BddManager:
    """Shared store for all BDD nodes of one variable order.

    Parameters
    ----------
    auto_reorder:
        Enable dynamic sifting when the live node count crosses the
        reordering threshold (mirrors ``CUDD_REORDER_SIFT`` +
        ``cudd_AutodynEnable`` used by the paper's experiments).
    initial_reorder_threshold:
        Live-node count at which the first automatic reordering fires.
        The threshold doubles after every automatic reordering.
    debug_checks:
        Opt-in sanitizer: verify all manager invariants after every
        garbage collection and reordering, raising
        :class:`repro.analysis.bddcheck.BddInvariantError` (with
        structured diagnostics) on corruption.  Defaults to the
        ``REPRO_DEBUG=1`` environment switch.

    Resource governance
    -------------------
    Attach a :class:`repro.resilience.budget.Budget` via
    :meth:`set_budget` to arm periodic checks in the hot loops (``mk``,
    ``_ite``, quantification, sifting).  The hot sites decrement a
    manager-local countdown — one integer test per event, whether or
    not a budget is attached — and all real accounting happens in the
    amortised :meth:`_budget_poll`; node-limit trips are still exact
    because the recharge is clamped against the remaining headroom.  An
    overrun raises
    :class:`~repro.resilience.budget.BudgetExceededError` at a point
    where the manager is consistent — already-built nodes stay valid
    and further operations are allowed.  During a level swap the budget
    is detached and re-checked only at swap boundaries, so reordering
    can never be interrupted mid-mutation.
    """

    def __init__(self, auto_reorder: bool = False,
                 initial_reorder_threshold: int = 50_000,
                 debug_checks: Optional[bool] = None) -> None:
        # Parallel node arrays; slots 0/1 are the terminals.
        self._var: List[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._ref: List[int] = [1, 1]      # external references
        self._pref: List[int] = [0, 0]     # parent (node-to-node) references
        self._free: List[int] = []
        # Node ids per variable, needed for level swaps during sifting.
        self._var_nodes: List[set] = []

        # (var, low, high) -> node id
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # (op, operands...) -> node id
        self._cache: Dict[Tuple, int] = {}

        self._var_names: List[str] = []
        self._name_to_var: Dict[str, int] = {}
        self._var2level: List[int] = []
        self._level2var: List[int] = []

        self.auto_reorder = auto_reorder
        self.reorder_threshold = initial_reorder_threshold
        #: 0 = sift every variable; N > 0 = only the N most populous
        #: (CUDD's siftMaxVar); trades order quality for reorder speed.
        self.sift_max_vars = 0
        self._reorder_lock = 0

        self._live_nodes = 2
        self.peak_live_nodes = 2
        self._gc_threshold = 100_000

        # Counters, for experiment reporting.
        self.n_gc_runs = 0
        self.n_reorderings = 0
        self.n_selfchecks = 0

        self.debug_checks = (debug_checks_enabled() if debug_checks is None
                             else bool(debug_checks))

        #: Optional resource envelope (see class docstring).
        self.budget: Optional["Budget"] = None
        # Governance countdown: None when no budget is attached, else
        # the number of hot-loop events left before the next
        # _budget_poll.  Hot sites pay one integer test per event; the
        # poll does all real accounting (see _budget_poll).
        self._budget_countdown: Optional[int] = None
        self._budget_recharge = 0

    def set_budget(self, budget: Optional["Budget"]) -> None:
        """Attach (or detach, with ``None``) a resource budget."""
        self.budget = budget
        self._budget_recharge = 0
        # 0 (not the interval) so the first hot event polls and the
        # recharge gets clamped against the node limit right away.
        self._budget_countdown = None if budget is None else 0

    def _budget_poll(self, where: str) -> None:
        """Cold half of the governance hot path.

        Charges the events since the last poll to the budget, checks
        every limit, and recharges the countdown.  The recharge is
        clamped to ``max_live_nodes - live``: each node creation both
        decrements the countdown and increments the live count, so the
        countdown exhausts no later than the creation that crosses the
        limit — node-limit trips are exact (and always report ``mk``)
        even though polls are amortised.
        """
        budget = self.budget
        budget.steps += self._budget_recharge + 1
        limit = budget.max_live_nodes
        if limit is not None and self._live_nodes > limit:
            budget.trip_nodes(self._live_nodes, where)
        budget.slow_check(where)
        recharge = budget.check_interval
        if limit is not None:
            remaining = limit - self._live_nodes
            if remaining < recharge:
                recharge = remaining if remaining > 0 else 0
        self._budget_recharge = recharge
        self._budget_countdown = recharge

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    def add_var(self, name: Optional[str] = None) -> int:
        """Declare a new variable at the bottom of the order.

        Returns the variable id (dense, starting at 0).  ``name`` defaults
        to ``"v<i>"`` and must be unique.
        """
        var = len(self._var_names)
        if name is None:
            name = "v%d" % var
        if name in self._name_to_var:
            raise ValueError("duplicate variable name: %r" % name)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        self._var_nodes.append(set())
        return var

    def var_id(self, name: Union[str, int]) -> int:
        """Resolve a variable name (or pass through an id) to its id."""
        if isinstance(name, int):
            if not 0 <= name < len(self._var_names):
                raise ValueError("unknown variable id: %d" % name)
            return name
        try:
            return self._name_to_var[name]
        except KeyError:
            raise ValueError("unknown variable name: %r" % name) from None

    def var_name(self, var: int) -> str:
        """Name of variable ``var``."""
        return self._var_names[var]

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    @property
    def var_order(self) -> List[str]:
        """Variable names from top level to bottom level."""
        return [self._var_names[v] for v in self._level2var]

    def level_of(self, var: int) -> int:
        """Current level (0 = top) of variable ``var``."""
        return self._var2level[var]

    def _node_level(self, u: int) -> int:
        var = self._var[u]
        if var == _TERMINAL_VAR:
            return _TERMINAL_LEVEL
        return self._var2level[var]

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the reduced node ``(var, low, high)``.

        Both children must be rooted strictly below ``var`` in the current
        order; this is asserted in debug runs.
        """
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if self._free:
            node = self._free.pop()
            self._var[node] = var
            self._low[node] = low
            self._high[node] = high
            self._ref[node] = 0
            self._pref[node] = 0
        else:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._ref.append(0)
            self._pref.append(0)
        self._unique[key] = node
        self._var_nodes[var].add(node)
        self._pref[low] += 1
        self._pref[high] += 1
        self._live_nodes += 1
        if self._live_nodes > self.peak_live_nodes:
            self.peak_live_nodes = self._live_nodes
        n = self._budget_countdown
        if n is not None:
            if n > 0:
                self._budget_countdown = n - 1
            else:
                self._budget_poll("mk")
        return node

    def _free_node(self, u: int) -> None:
        """Free node ``u`` immediately; cascades into dead children.

        Only safe while parent counts are exact relative to live roots,
        i.e. right after garbage collection — used by level swaps.
        """
        stack = [u]
        while stack:
            n = stack.pop()
            var = self._var[n]
            del self._unique[(var, self._low[n], self._high[n])]
            self._var_nodes[var].discard(n)
            self._var[n] = _TERMINAL_VAR
            for child in (self._low[n], self._high[n]):
                self._pref[child] -= 1
                if (child > TRUE and self._pref[child] == 0
                        and self._ref[child] == 0):
                    stack.append(child)
            self._free.append(n)
            self._live_nodes -= 1

    def var_node(self, name: Union[str, int]) -> int:
        """Node for the projection function of a variable."""
        return self.mk(self.var_id(name), FALSE, TRUE)

    def nvar_node(self, name: Union[str, int]) -> int:
        """Node for the negated projection function of a variable."""
        return self.mk(self.var_id(name), TRUE, FALSE)

    # ------------------------------------------------------------------
    # Reference counting & garbage collection
    # ------------------------------------------------------------------

    def incref(self, u: int) -> int:
        """Protect node ``u`` (and its descendants) from collection."""
        self._ref[u] += 1
        return u

    def decref(self, u: int) -> None:
        """Release one external reference to node ``u``."""
        if self._ref[u] <= 0:
            raise RuntimeError("decref of unreferenced node %d" % u)
        self._ref[u] -= 1

    def collect_garbage(self) -> int:
        """Mark-and-sweep from externally referenced nodes.

        Returns the number of freed nodes.  All computed-table entries are
        dropped (they may point at dead nodes).
        """
        marked = bytearray(len(self._var))
        marked[FALSE] = marked[TRUE] = 1
        stack = [u for u in range(2, len(self._var)) if self._ref[u] > 0]
        while stack:
            u = stack.pop()
            if marked[u]:
                continue
            marked[u] = 1
            lo, hi = self._low[u], self._high[u]
            if not marked[lo]:
                stack.append(lo)
            if not marked[hi]:
                stack.append(hi)
        freed = 0
        in_free = bytearray(len(self._var))
        for u in self._free:
            in_free[u] = 1
        for u in range(2, len(self._var)):
            if not marked[u] and not in_free[u]:
                var = self._var[u]
                del self._unique[(var, self._low[u], self._high[u])]
                self._var_nodes[var].discard(u)
                self._var[u] = _TERMINAL_VAR
                self._free.append(u)
                freed += 1
        self._live_nodes -= freed
        # Parent counts are recomputed from scratch: cheaper and simpler
        # than decrementing along every freed edge.
        self._pref = [0] * len(self._var)
        for u in range(2, len(self._var)):
            if self._var[u] != _TERMINAL_VAR:
                self._pref[self._low[u]] += 1
                self._pref[self._high[u]] += 1
        self._cache.clear()
        self.n_gc_runs += 1
        if self.debug_checks:
            self._selfcheck("gc")
        return freed

    def __len__(self) -> int:
        """Number of live nodes, terminals included."""
        return self._live_nodes

    # ------------------------------------------------------------------
    # Automatic maintenance hook, called at top-level op boundaries.
    # ------------------------------------------------------------------

    def _maybe_maintain(self) -> None:
        if self._reorder_lock:
            return
        if self.auto_reorder and self._live_nodes >= self.reorder_threshold:
            from .reorder import sift

            self.collect_garbage()
            if self._live_nodes >= self.reorder_threshold:
                sift(self, max_vars=self.sift_max_vars)
                self.n_reorderings += 1
                self.reorder_threshold = max(self.reorder_threshold,
                                             2 * self._live_nodes)
        elif self._live_nodes >= self._gc_threshold:
            before = self._live_nodes
            self.collect_garbage()
            if self._live_nodes > before // 2:
                self._gc_threshold = 2 * self._live_nodes

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------

    def node_var(self, u: int) -> int:
        """Variable id at node ``u`` (raises on terminals)."""
        var = self._var[u]
        if var == _TERMINAL_VAR:
            raise ValueError("terminal node has no variable")
        return var

    def node_low(self, u: int) -> int:
        """Else-child of node ``u``."""
        return self._low[u]

    def node_high(self, u: int) -> int:
        """Then-child of node ``u``."""
        return self._high[u]

    def is_terminal(self, u: int) -> bool:
        """True for the two constant nodes."""
        return u <= TRUE

    def size(self, roots: Union[int, Iterable[int]]) -> int:
        """Number of distinct nodes reachable from ``roots``, terminals
        included (matching how CUDD's ``Cudd_DagSize`` counts)."""
        if isinstance(roots, int):
            roots = (roots,)
        seen = set()
        stack = list(roots)
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if u > TRUE:
                stack.append(self._low[u])
                stack.append(self._high[u])
        return len(seen)

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction of two nodes."""
        self._maybe_maintain()
        return self._and(f, g)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction of two nodes."""
        self._maybe_maintain()
        return self._or(f, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive-or of two nodes."""
        self._maybe_maintain()
        return self._xor(f, g)

    def apply_not(self, f: int) -> int:
        """Negation of a node."""
        self._maybe_maintain()
        return self._not(f)

    def apply_ite(self, f: int, g: int, h: int) -> int:
        """If-then-else operator ``f·g + ¬f·h``."""
        self._maybe_maintain()
        return self._ite(f, g, h)

    def apply_xnor(self, f: int, g: int) -> int:
        """Equivalence ``f ↔ g``."""
        self._maybe_maintain()
        return self._not(self._xor(f, g))

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f → g``."""
        self._maybe_maintain()
        return self._or(self._not(f), g)

    def _top_split(self, f: int, g: int) -> Tuple[int, int, int, int, int]:
        """Cofactor ``f`` and ``g`` against their topmost variable.

        Returns ``(var, f0, f1, g0, g1)``.
        """
        lf, lg = self._node_level(f), self._node_level(g)
        if lf <= lg:
            var = self._var[f]
            f0, f1 = self._low[f], self._high[f]
        else:
            var = self._var[g]
            f0 = f1 = f
        if lg <= lf:
            g0, g1 = self._low[g], self._high[g]
        else:
            g0 = g1 = g
        return var, f0, f1, g0, g1

    def _and(self, f: int, g: int) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE or f == g:
            return f
        if f > g:
            f, g = g, f
        key = (_OP_AND, f, g)
        res = self._cache.get(key)
        if res is not None:
            return res
        var, f0, f1, g0, g1 = self._top_split(f, g)
        res = self.mk(var, self._and(f0, g0), self._and(f1, g1))
        self._cache[key] = res
        return res

    def _or(self, f: int, g: int) -> int:
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE or f == g:
            return f
        if f > g:
            f, g = g, f
        key = (_OP_OR, f, g)
        res = self._cache.get(key)
        if res is not None:
            return res
        var, f0, f1, g0, g1 = self._top_split(f, g)
        res = self.mk(var, self._or(f0, g0), self._or(f1, g1))
        self._cache[key] = res
        return res

    def _xor(self, f: int, g: int) -> int:
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self._not(g)
        if g == TRUE:
            return self._not(f)
        if f > g:
            f, g = g, f
        key = (_OP_XOR, f, g)
        res = self._cache.get(key)
        if res is not None:
            return res
        var, f0, f1, g0, g1 = self._top_split(f, g)
        res = self.mk(var, self._xor(f0, g0), self._xor(f1, g1))
        self._cache[key] = res
        return res

    def _not(self, f: int) -> int:
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        key = (_OP_NOT, f)
        res = self._cache.get(key)
        if res is not None:
            return res
        res = self.mk(self._var[f], self._not(self._low[f]),
                      self._not(self._high[f]))
        self._cache[key] = res
        return res

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self._not(f)
        if g == TRUE:
            return self._or(f, h)
        if g == FALSE:
            return self._and(self._not(f), h)
        if h == FALSE:
            return self._and(f, g)
        if h == TRUE:
            return self._or(self._not(f), g)
        if f == g:
            return self._or(f, h)
        if f == h:
            return self._and(f, g)
        key = (_OP_ITE, f, g, h)
        res = self._cache.get(key)
        if res is not None:
            return res
        n = self._budget_countdown
        if n is not None:
            if n > 0:
                self._budget_countdown = n - 1
            else:
                self._budget_poll("ite")
        level = min(self._node_level(f), self._node_level(g),
                    self._node_level(h))
        var = self._level2var[level]
        f0, f1 = self._cofactors_at(f, level)
        g0, g1 = self._cofactors_at(g, level)
        h0, h1 = self._cofactors_at(h, level)
        res = self.mk(var, self._ite(f0, g0, h0), self._ite(f1, g1, h1))
        self._cache[key] = res
        return res

    def _cofactors_at(self, f: int, level: int) -> Tuple[int, int]:
        if self._node_level(f) == level:
            return self._low[f], self._high[f]
        return f, f

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def _levels_key(self, variables: Iterable[Union[str, int]]) -> frozenset:
        return frozenset(self.var_id(v) for v in variables)

    def exists(self, variables: Iterable[Union[str, int]], f: int) -> int:
        """Existential quantification ``∃ variables . f``."""
        self._maybe_maintain()
        vars_key = self._levels_key(variables)
        if not vars_key:
            return f
        return self._quantify(f, vars_key, _OP_EXISTS)

    def forall(self, variables: Iterable[Union[str, int]], f: int) -> int:
        """Universal quantification ``∀ variables . f``."""
        self._maybe_maintain()
        vars_key = self._levels_key(variables)
        if not vars_key:
            return f
        return self._quantify(f, vars_key, _OP_FORALL)

    def _quantify(self, f: int, var_set: frozenset, op: int) -> int:
        if f <= TRUE:
            return f
        max_level = max(self._var2level[v] for v in var_set)
        if self._node_level(f) > max_level:
            return f
        key = (op, f, var_set)
        res = self._cache.get(key)
        if res is not None:
            return res
        n = self._budget_countdown
        if n is not None:
            if n > 0:
                self._budget_countdown = n - 1
            else:
                self._budget_poll("quantify")
        var = self._var[f]
        lo = self._quantify(self._low[f], var_set, op)
        hi = self._quantify(self._high[f], var_set, op)
        if var in var_set:
            if op == _OP_EXISTS:
                res = self._or(lo, hi)
            else:
                res = self._and(lo, hi)
        else:
            res = self.mk(var, lo, hi)
        self._cache[key] = res
        return res

    def and_exists(self, variables: Iterable[Union[str, int]],
                   f: int, g: int) -> int:
        """Relational product ``∃ variables . f ∧ g`` in one pass.

        Avoids building the full conjunction when most of it is
        quantified away; the workhorse of the output- and input-exact
        checks.
        """
        self._maybe_maintain()
        vars_key = self._levels_key(variables)
        if not vars_key:
            return self._and(f, g)
        return self._and_exists(f, g, vars_key)

    def _and_exists(self, f: int, g: int, var_set: frozenset) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE and g == TRUE:
            return TRUE
        if f == TRUE:
            return self._quantify(g, var_set, _OP_EXISTS)
        if g == TRUE or f == g:
            return self._quantify(f, var_set, _OP_EXISTS)
        if f > g:
            f, g = g, f
        key = (_OP_AND_EXISTS, f, g, var_set)
        res = self._cache.get(key)
        if res is not None:
            return res
        n = self._budget_countdown
        if n is not None:
            if n > 0:
                self._budget_countdown = n - 1
            else:
                self._budget_poll("and_exists")
        var, f0, f1, g0, g1 = self._top_split(f, g)
        if var in var_set:
            lo = self._and_exists(f0, g0, var_set)
            if lo == TRUE:
                res = TRUE
            else:
                res = self._or(lo, self._and_exists(f1, g1, var_set))
        else:
            res = self.mk(var, self._and_exists(f0, g0, var_set),
                          self._and_exists(f1, g1, var_set))
        self._cache[key] = res
        return res

    # ------------------------------------------------------------------
    # Cofactor / compose
    # ------------------------------------------------------------------

    def restrict(self, f: int,
                 assignment: Dict[Union[str, int], bool]) -> int:
        """Cofactor ``f`` with a partial variable assignment."""
        self._maybe_maintain()
        fixed = {self.var_id(v): bool(val) for v, val in assignment.items()}
        if not fixed:
            return f
        key = (_OP_RESTRICT, f, tuple(sorted(fixed.items())))
        res = self._cache.get(key)
        if res is not None:
            return res
        res = self._restrict(f, fixed)
        self._cache[key] = res
        return res

    def _restrict(self, f: int, fixed: Dict[int, bool]) -> int:
        if f <= TRUE:
            return f
        key = (_OP_RESTRICT, f, tuple(sorted(fixed.items())))
        res = self._cache.get(key)
        if res is not None:
            return res
        var = self._var[f]
        if var in fixed:
            res = self._restrict(self._high[f] if fixed[var]
                                 else self._low[f], fixed)
        else:
            res = self.mk(var, self._restrict(self._low[f], fixed),
                          self._restrict(self._high[f], fixed))
        self._cache[key] = res
        return res

    def compose(self, f: int,
                substitution: Dict[Union[str, int], int]) -> int:
        """Simultaneous functional composition ``f[var := g, ...]``."""
        self._maybe_maintain()
        subst = {self.var_id(v): g for v, g in substitution.items()}
        if not subst:
            return f
        subst_key = tuple(sorted(subst.items()))
        return self._compose(f, subst, subst_key)

    def _compose(self, f: int, subst: Dict[int, int], subst_key: Tuple)\
            -> int:
        if f <= TRUE:
            return f
        key = (_OP_COMPOSE, f, subst_key)
        res = self._cache.get(key)
        if res is not None:
            return res
        var = self._var[f]
        lo = self._compose(self._low[f], subst, subst_key)
        hi = self._compose(self._high[f], subst, subst_key)
        g = subst.get(var)
        if g is None:
            g = self.mk(var, FALSE, TRUE)
        res = self._ite(g, hi, lo)
        self._cache[key] = res
        return res

    # ------------------------------------------------------------------
    # Satisfiability helpers
    # ------------------------------------------------------------------

    def evaluate(self, f: int,
                 assignment: Dict[Union[str, int], bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support."""
        fixed = {self.var_id(v): bool(val) for v, val in assignment.items()}
        u = f
        while u > TRUE:
            var = self._var[u]
            try:
                u = self._high[u] if fixed[var] else self._low[u]
            except KeyError:
                raise ValueError(
                    "assignment misses variable %r" % self._var_names[var]
                ) from None
        return u == TRUE

    def sat_one(self, f: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment over the support of ``f``.

        Returns ``None`` when ``f`` is unsatisfiable.  Variables absent
        from the result are don't-cares.
        """
        if f == FALSE:
            return None
        out: Dict[str, bool] = {}
        u = f
        while u > TRUE:
            name = self._var_names[self._var[u]]
            if self._low[u] != FALSE:
                out[name] = False
                u = self._low[u]
            else:
                out[name] = True
                u = self._high[u]
        return out

    def sat_count(self, f: int, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the total number of declared variables.
        """
        if nvars is None:
            nvars = self.num_vars
        if nvars < self.num_vars:
            raise ValueError("nvars smaller than the declared variable count")
        memo: Dict[int, int] = {}

        def count(u: int) -> int:
            # Models over the variables at levels strictly below u's level,
            # padded as if u sat at level -1 were the root; the caller
            # rescales by the level gap.
            if u == FALSE:
                return 0
            if u == TRUE:
                return 1
            base = memo.get(u)
            if base is not None:
                return base
            ulvl = self._node_level(u)
            lo, hi = self._low[u], self._high[u]
            lo_gap = (min(self._node_level(lo), nvars)) - ulvl - 1
            hi_gap = (min(self._node_level(hi), nvars)) - ulvl - 1
            base = (count(lo) << lo_gap) + (count(hi) << hi_gap)
            memo[u] = base
            return base

        top_gap = min(self._node_level(f), nvars)
        return count(f) << top_gap

    def sat_iter(self, f: int) -> Iterator[Dict[str, bool]]:
        """Iterate over all satisfying *cubes* (partial assignments)."""
        if f == FALSE:
            return
        stack: List[Tuple[int, Dict[str, bool]]] = [(f, {})]
        while stack:
            u, partial = stack.pop()
            if u == TRUE:
                yield dict(partial)
                continue
            if u == FALSE:
                continue
            name = self._var_names[self._var[u]]
            hi = dict(partial)
            hi[name] = True
            lo = partial
            lo[name] = False
            stack.append((self._high[u], hi))
            stack.append((self._low[u], lo))

    def support(self, f: int) -> List[str]:
        """Names of the variables ``f`` depends on, in order."""
        vars_seen = set()
        for u in self._topo_nodes(f):
            if u > TRUE:
                vars_seen.add(self._var[u])
        return [self._var_names[v]
                for v in sorted(vars_seen, key=lambda v: self._var2level[v])]

    def _topo_nodes(self, f: int) -> List[int]:
        seen = set()
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(f, False)]
        while stack:
            u, done = stack.pop()
            if done:
                order.append(u)
                continue
            if u in seen:
                continue
            seen.add(u)
            stack.append((u, True))
            if u > TRUE:
                stack.append((self._low[u], False))
                stack.append((self._high[u], False))
        return order

    # ------------------------------------------------------------------
    # Debug helpers
    # ------------------------------------------------------------------

    def invariant_violations(self) -> List[str]:
        """Collect every violated internal invariant (empty = healthy).

        The checks mirror what a corrupted unique table, stale parent
        counts or a broken variable order would look like; the sanitizer
        (:mod:`repro.analysis.bddcheck`) turns the returned strings into
        structured diagnostics.
        """
        out: List[str] = []
        live = 0
        free = set(self._free)
        pref = [0] * len(self._var)
        for u in range(len(self._var)):
            if u in free:
                continue
            live += 1
            if u <= TRUE:
                continue
            var = self._var[u]
            if var == _TERMINAL_VAR:
                out.append("free node leaked: %d" % u)
                continue
            lo, hi = self._low[u], self._high[u]
            if lo == hi:
                out.append("redundant node %d" % u)
            if lo in free or hi in free:
                out.append("node %d points at freed child" % u)
                continue
            pref[lo] += 1
            pref[hi] += 1
            if not 0 <= var < len(self._var2level):
                out.append("node %d has undeclared variable %d" % (u, var))
                continue
            lvl = self._var2level[var]
            if self._node_level(lo) <= lvl or self._node_level(hi) <= lvl:
                out.append("order violated at %d" % u)
            if self._unique.get((var, lo, hi)) != u:
                out.append("unique table inconsistent at %d" % u)
            if u not in self._var_nodes[var]:
                out.append("node %d missing from its variable set" % u)
        if live != self._live_nodes:
            out.append("live count wrong: counted %d, recorded %d"
                       % (live, self._live_nodes))
        if len(self._unique) != live - 2:
            out.append("unique table size %d != %d live non-terminals"
                       % (len(self._unique), live - 2))
        for u in range(2, len(self._var)):
            if u not in free and self._pref[u] != pref[u]:
                out.append("parent count wrong at %d: %d != %d"
                           % (u, self._pref[u], pref[u]))
        if sum(len(s) for s in self._var_nodes) != live - 2:
            out.append("per-variable node sets do not partition the "
                       "live nodes")
        if sorted(self._var2level) != list(range(self.num_vars)):
            out.append("var2level is not a permutation of the levels")
        else:
            for var, lvl in enumerate(self._var2level):
                if self._level2var[lvl] != var:
                    out.append("level2var inconsistent at level %d" % lvl)
        return out

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if internal structures are corrupt.

        Used by the test suite after garbage collection and reordering;
        the opt-in runtime sanitizer raises structured diagnostics
        instead (see :meth:`invariant_violations`).
        """
        violations = self.invariant_violations()
        assert not violations, "; ".join(violations)

    def _selfcheck(self, phase: str) -> None:
        """Debug-mode hook run after GC/reordering (``debug_checks``)."""
        self.n_selfchecks += 1
        violations = self.invariant_violations()
        if violations:
            # Imported lazily: analysis sits above the bdd layer.
            from ..analysis.bddcheck import invariant_error

            raise invariant_error(self, phase, violations)
