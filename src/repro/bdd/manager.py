"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This module provides a from-scratch BDD package playing the role CUDD
[Somenzi 1998] plays in the original paper.  Nodes live in parallel arrays
inside a :class:`BddManager`; user code handles opaque integer node ids
wrapped by :class:`repro.bdd.function.Function`.

Design notes
------------
* No complement edges: negation is a cached operation.  This keeps the
  unique table, quantification and the sifting swap simple and easy to
  validate.
* All Boolean kernels are *iterative*: they run an explicit-stack loop
  instead of Python recursion, so arbitrarily deep BDDs never trip the
  interpreter recursion limit and the hot loops can bind their state to
  locals.  The recursive reference implementations live in
  :mod:`repro.bdd._legacy` for differential testing and benchmarking.
* The computed table is *segmented*: one bounded dict per operation
  (see :mod:`repro.bdd.cache`).  Full segments evict their oldest entry
  on insert — a lossy cache in the spirit of CUDD's — and entries whose
  operands and result survive garbage collection are kept instead of
  wholesale clearing.  Per-segment hit/miss/eviction counters surface
  through :meth:`BddManager.cache_stats`.
* Reference counting is *external only*: :class:`Function` wrappers hold
  references; garbage collection is a mark-and-sweep from externally
  referenced nodes.  Intermediate results of a running operation are safe
  because collection only happens between top-level operations.
* Dynamic variable reordering (Rudell's sifting) is implemented in
  :mod:`repro.bdd.reorder` and mutates nodes in place, so node ids held by
  the user stay valid across reordering.
"""

from __future__ import annotations

import os
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List,
                    Optional, Tuple, Union)

from .cache import DEFAULT_CACHE_CONFIG, CacheConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.budget import Budget

__all__ = ["BddManager", "FALSE", "TRUE", "debug_checks_enabled"]


def debug_checks_enabled() -> bool:
    """Whether ``REPRO_DEBUG`` asks for the opt-in BDD sanitizer."""
    return os.environ.get("REPRO_DEBUG", "").strip().lower() in (
        "1", "true", "yes", "on")

#: Node id of the constant-false terminal.
FALSE = 0
#: Node id of the constant-true terminal.
TRUE = 1

#: Pseudo variable id used for the two terminal nodes.  Terminals compare
#: *below* every real variable, so their level must be larger than any
#: real level.
_TERMINAL_VAR = -1
_TERMINAL_LEVEL = 1 << 60

# Opcodes.  The segmented computed table no longer tags its keys with
# these (each op owns a segment), but quantification still dispatches on
# them and :mod:`repro.bdd._legacy` keys its historic single table with
# them.
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2
_OP_NOT = 3
_OP_ITE = 4
_OP_EXISTS = 5
_OP_FORALL = 6
_OP_COMPOSE = 7
_OP_RESTRICT = 8
_OP_AND_EXISTS = 9

#: Computed-table segments: (op name, cache attr, stats attr, sweep kind).
#: The sweep kind says which key positions hold node ids, so the GC sweep
#: can keep entries whose operands and result all survived:
#: ``bin`` (f, g) -> r; ``unary`` f -> r; ``tri`` (f, g, h) -> r;
#: ``ctx1`` (f, ctx) -> r; ``ctx2`` (f, g, ctx) -> r; ``volatile`` is
#: always cleared (compose contexts embed node ids, so recycled ids
#: would alias).
_SEGMENT_SPECS = (
    ("and", "_c_and", "_cs_and", "bin"),
    ("or", "_c_or", "_cs_or", "bin"),
    ("xor", "_c_xor", "_cs_xor", "bin"),
    ("not", "_c_not", "_cs_not", "unary"),
    ("ite", "_c_ite", "_cs_ite", "tri"),
    ("exists", "_c_exists", "_cs_exists", "ctx1"),
    ("forall", "_c_forall", "_cs_forall", "ctx1"),
    ("compose", "_c_compose", "_cs_compose", "volatile"),
    ("restrict", "_c_restrict", "_cs_restrict", "ctx1"),
    ("and_exists", "_c_andex", "_cs_andex", "ctx2"),
)


class BddManager:
    """Shared store for all BDD nodes of one variable order.

    Parameters
    ----------
    auto_reorder:
        Enable dynamic sifting when the live node count crosses the
        reordering threshold (mirrors ``CUDD_REORDER_SIFT`` +
        ``cudd_AutodynEnable`` used by the paper's experiments).
    initial_reorder_threshold:
        Live-node count at which the first automatic reordering fires.
        The threshold doubles after every automatic reordering.
    debug_checks:
        Opt-in sanitizer: verify all manager invariants after every
        garbage collection and reordering, raising
        :class:`repro.analysis.bddcheck.BddInvariantError` (with
        structured diagnostics) on corruption.  Defaults to the
        ``REPRO_DEBUG=1`` environment switch.
    cache_config:
        Sizing and retention policy of the segmented computed table
        (see :class:`repro.bdd.cache.CacheConfig`).  Defaults to
        bounded segments that are kept warm across garbage collection.

    Resource governance
    -------------------
    Attach a :class:`repro.resilience.budget.Budget` via
    :meth:`set_budget` to arm periodic checks in the hot loops (``mk``,
    ``_ite``, quantification, sifting).  The hot sites decrement a
    manager-local countdown — one integer test per event, whether or
    not a budget is attached — and all real accounting happens in the
    amortised :meth:`_budget_poll`; node-limit trips are still exact
    because the recharge is clamped against the remaining headroom.  An
    overrun raises
    :class:`~repro.resilience.budget.BudgetExceededError` at a point
    where the manager is consistent — already-built nodes stay valid
    and further operations are allowed.  During a level swap the budget
    is detached and re-checked only at swap boundaries, so reordering
    can never be interrupted mid-mutation.
    """

    def __init__(self, auto_reorder: bool = False,
                 initial_reorder_threshold: int = 50_000,
                 debug_checks: Optional[bool] = None,
                 cache_config: Optional[CacheConfig] = None) -> None:
        # Parallel node arrays; slots 0/1 are the terminals.
        self._var: List[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._ref: List[int] = [1, 1]      # external references
        self._pref: List[int] = [0, 0]     # parent (node-to-node) references
        self._free: List[int] = []
        # Node ids per variable, needed for level swaps during sifting.
        self._var_nodes: List[set] = []

        # (var, low, high) -> node id
        self._unique: Dict[Tuple[int, int, int], int] = {}

        # Segmented computed table: one bounded dict per operation (see
        # repro.bdd.cache).  Keys hold operand node ids — plus an
        # interned context id for quantify/restrict/compose — and values
        # are result node ids.  Stats lists: [hits, misses, evictions].
        if cache_config is None:
            cache_config = DEFAULT_CACHE_CONFIG
        elif not isinstance(cache_config, CacheConfig):
            raise TypeError("cache_config must be a CacheConfig")
        self.cache_config = cache_config
        self._cache_limit = cache_config.entry_limit
        for _name, cattr, sattr, _kind in _SEGMENT_SPECS:
            setattr(self, cattr, {})
            setattr(self, sattr, [0, 0, 0])
        # Interned operation contexts.  Quantified variable sets and
        # restrict assignments are immortal (their ids carry no node
        # references); compose substitutions embed node ids and are
        # cleared together with their segment.
        self._quant_ctx: Dict[frozenset, int] = {}
        self._restrict_ctx: Dict[Tuple, int] = {}
        self._compose_ctx: Dict[Tuple, int] = {}

        self._var_names: List[str] = []
        self._name_to_var: Dict[str, int] = {}
        self._var2level: List[int] = []
        self._level2var: List[int] = []

        self.auto_reorder = auto_reorder
        self.reorder_threshold = initial_reorder_threshold
        #: 0 = sift every variable; N > 0 = only the N most populous
        #: (CUDD's siftMaxVar); trades order quality for reorder speed.
        self.sift_max_vars = 0
        #: Per-variable sift walk span cut: abort a direction after
        #: this many consecutive non-improving swaps (0 = historic
        #: full-span walk).  12 cuts reorder work 1.5-2.5x on the
        #: paper's circuits for a few percent of order quality; see
        #: docs/performance.md for the measurements.
        self.sift_stall = 12
        self._reorder_lock = 0

        self._live_nodes = 2
        self.peak_live_nodes = 2
        self._gc_threshold = 100_000

        # Counters, for experiment reporting.
        self.n_gc_runs = 0
        self.n_reorderings = 0
        self.n_selfchecks = 0

        self.debug_checks = (debug_checks_enabled() if debug_checks is None
                             else bool(debug_checks))

        #: Optional resource envelope (see class docstring).
        self.budget: Optional["Budget"] = None
        # Governance countdown: None when no budget is attached, else
        # the number of hot-loop events left before the next
        # _budget_poll.  Hot sites pay one integer test per event; the
        # poll does all real accounting (see _budget_poll).
        self._budget_countdown: Optional[int] = None
        self._budget_recharge = 0

        # Optional observability sink (duck-typed repro.obs.Tracer,
        # injected via set_tracer — the bdd layer never imports obs).
        # Hooks fire only on cold paths (GC, reordering, budget polls)
        # and cost one ``is None`` test when tracing is disabled.
        self._tracer = None

    def set_budget(self, budget: Optional["Budget"]) -> None:
        """Attach (or detach, with ``None``) a resource budget."""
        self.budget = budget
        self._budget_recharge = 0
        # 0 (not the interval) so the first hot event polls and the
        # recharge gets clamped against the node limit right away.
        self._budget_countdown = None if budget is None else 0

    def set_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) an observability tracer.

        The manager emits instant events for garbage collections and
        budget polls and a span per reordering pass; callers (the
        ladder, the experiment runner) account node/cache traffic by
        snapshot deltas around their own spans.  Tracing never changes
        behaviour — only ``tracer.events`` grows.
        """
        self._tracer = tracer

    def _budget_poll(self, where: str) -> None:
        """Cold half of the governance hot path.

        Charges the events since the last poll to the budget, checks
        every limit, and recharges the countdown.  The recharge is
        clamped to ``max_live_nodes - live``: each node creation both
        decrements the countdown and increments the live count, so the
        countdown exhausts no later than the creation that crosses the
        limit — node-limit trips are exact (and always report ``mk``)
        even though polls are amortised.
        """
        budget = self.budget
        budget.steps += self._budget_recharge + 1
        limit = budget.max_live_nodes
        if limit is not None and self._live_nodes > limit:
            budget.trip_nodes(self._live_nodes, where)
        budget.slow_check(where)
        recharge = budget.check_interval
        if limit is not None:
            remaining = limit - self._live_nodes
            if remaining < recharge:
                recharge = remaining if remaining > 0 else 0
        self._budget_recharge = recharge
        self._budget_countdown = recharge
        tracer = self._tracer
        if tracer is not None:
            tracer.instant("budget_poll", where=where,
                           live_nodes=self._live_nodes,
                           steps=budget.steps)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    def add_var(self, name: Optional[str] = None) -> int:
        """Declare a new variable at the bottom of the order.

        Returns the variable id (dense, starting at 0).  ``name`` defaults
        to ``"v<i>"`` and must be unique.
        """
        var = len(self._var_names)
        if name is None:
            name = "v%d" % var
        if name in self._name_to_var:
            raise ValueError("duplicate variable name: %r" % name)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        self._var_nodes.append(set())
        return var

    def var_id(self, name: Union[str, int]) -> int:
        """Resolve a variable name (or pass through an id) to its id."""
        if isinstance(name, int):
            if not 0 <= name < len(self._var_names):
                raise ValueError("unknown variable id: %d" % name)
            return name
        try:
            return self._name_to_var[name]
        except KeyError:
            raise ValueError("unknown variable name: %r" % name) from None

    def var_name(self, var: int) -> str:
        """Name of variable ``var``."""
        return self._var_names[var]

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    @property
    def var_order(self) -> List[str]:
        """Variable names from top level to bottom level."""
        return [self._var_names[v] for v in self._level2var]

    def level_of(self, var: int) -> int:
        """Current level (0 = top) of variable ``var``."""
        return self._var2level[var]

    def var_node_counts(self) -> List[int]:
        """Live node count per variable id (reordering cost signal).

        Backends that do not maintain per-variable node sets (the
        arena) override this; :func:`repro.bdd.reorder.sift` goes
        through it instead of touching ``_var_nodes`` directly.
        """
        return [len(s) for s in self._var_nodes]

    def _node_level(self, u: int) -> int:
        var = self._var[u]
        if var == _TERMINAL_VAR:
            return _TERMINAL_LEVEL
        return self._var2level[var]

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the reduced node ``(var, low, high)``.

        Both children must be rooted strictly below ``var`` in the current
        order; this is asserted in debug runs.
        """
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if self._free:
            node = self._free.pop()
            self._var[node] = var
            self._low[node] = low
            self._high[node] = high
            self._ref[node] = 0
            self._pref[node] = 0
        else:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._ref.append(0)
            self._pref.append(0)
        self._unique[key] = node
        self._var_nodes[var].add(node)
        self._pref[low] += 1
        self._pref[high] += 1
        self._live_nodes += 1
        if self._live_nodes > self.peak_live_nodes:
            self.peak_live_nodes = self._live_nodes
        n = self._budget_countdown
        if n is not None:
            if n > 0:
                self._budget_countdown = n - 1
            else:
                self._budget_poll("mk")
        return node

    def _free_node(self, u: int) -> None:
        """Free node ``u`` immediately; cascades into dead children.

        Only safe while parent counts are exact relative to live roots,
        i.e. right after garbage collection — used by level swaps.
        """
        stack = [u]
        while stack:
            n = stack.pop()
            var = self._var[n]
            del self._unique[(var, self._low[n], self._high[n])]
            self._var_nodes[var].discard(n)
            self._var[n] = _TERMINAL_VAR
            for child in (self._low[n], self._high[n]):
                self._pref[child] -= 1
                if (child > TRUE and self._pref[child] == 0
                        and self._ref[child] == 0):
                    stack.append(child)
            self._free.append(n)
            self._live_nodes -= 1

    def var_node(self, name: Union[str, int]) -> int:
        """Node for the projection function of a variable."""
        return self.mk(self.var_id(name), FALSE, TRUE)

    def nvar_node(self, name: Union[str, int]) -> int:
        """Node for the negated projection function of a variable."""
        return self.mk(self.var_id(name), TRUE, FALSE)

    # ------------------------------------------------------------------
    # Reference counting & garbage collection
    # ------------------------------------------------------------------

    def incref(self, u: int) -> int:
        """Protect node ``u`` (and its descendants) from collection."""
        self._ref[u] += 1
        return u

    def decref(self, u: int) -> None:
        """Release one external reference to node ``u``."""
        if self._ref[u] <= 0:
            raise RuntimeError("decref of unreferenced node %d" % u)
        self._ref[u] -= 1

    def collect_garbage(self) -> int:
        """Mark-and-sweep from externally referenced nodes.

        Returns the number of freed nodes.  The computed-table segments
        are swept against the mark: entries whose operands and result
        all survived are kept when the cache policy allows
        (:attr:`CacheConfig.keep_across_gc`), everything else is
        dropped.
        """
        var_a = self._var
        low_a = self._low
        high_a = self._high
        ref = self._ref
        marked = bytearray(len(var_a))
        marked[FALSE] = marked[TRUE] = 1
        stack = [u for u in range(2, len(var_a)) if ref[u] > 0]
        push = stack.append
        pop = stack.pop
        while stack:
            u = pop()
            if marked[u]:
                continue
            marked[u] = 1
            lo = low_a[u]
            hi = high_a[u]
            if not marked[lo]:
                push(lo)
            if not marked[hi]:
                push(hi)
        freed = 0
        in_free = bytearray(len(var_a))
        for u in self._free:
            in_free[u] = 1
        unique = self._unique
        var_nodes = self._var_nodes
        free_append = self._free.append
        for u in range(2, len(var_a)):
            if not marked[u] and not in_free[u]:
                var = var_a[u]
                del unique[(var, low_a[u], high_a[u])]
                var_nodes[var].discard(u)
                var_a[u] = _TERMINAL_VAR
                free_append(u)
                freed += 1
        self._live_nodes -= freed
        # Parent counts are recomputed from scratch: cheaper and simpler
        # than decrementing along every freed edge.
        pref = [0] * len(var_a)
        for u in range(2, len(var_a)):
            if var_a[u] != _TERMINAL_VAR:
                pref[low_a[u]] += 1
                pref[high_a[u]] += 1
        self._pref = pref
        self._sweep_cache(marked)
        self.n_gc_runs += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.instant("gc", freed=freed,
                           live_nodes=self._live_nodes)
        if self.debug_checks:
            self._selfcheck("gc")
        return freed

    # ------------------------------------------------------------------
    # Computed-table plumbing
    # ------------------------------------------------------------------

    def _sweep_cache(self, marked: bytearray) -> None:
        """Filter the computed table against a GC mark vector.

        Freed node ids get recycled by ``mk``, so any entry touching an
        unmarked id must go.  Compose is special-cased: its interned
        contexts embed substitution node ids, so the segment and its
        context table are always cleared wholesale.
        """
        self._c_compose.clear()
        self._compose_ctx.clear()
        if not self.cache_config.keep_across_gc:
            for _name, cattr, _sattr, _kind in _SEGMENT_SPECS:
                getattr(self, cattr).clear()
            return
        for _name, cattr, _sattr, kind in _SEGMENT_SPECS:
            if kind == "volatile":
                continue
            cache = getattr(self, cattr)
            if not cache:
                continue
            # Dict comprehensions preserve insertion order, so surviving
            # entries keep their FIFO age for future evictions.
            if kind == "bin":
                kept = {k: v for k, v in cache.items()
                        if marked[k[0]] and marked[k[1]] and marked[v]}
            elif kind == "unary":
                kept = {k: v for k, v in cache.items()
                        if marked[k] and marked[v]}
            elif kind == "tri":
                kept = {k: v for k, v in cache.items()
                        if marked[k[0]] and marked[k[1]] and marked[k[2]]
                        and marked[v]}
            elif kind == "ctx1":
                kept = {k: v for k, v in cache.items()
                        if marked[k[0]] and marked[v]}
            else:  # ctx2
                kept = {k: v for k, v in cache.items()
                        if marked[k[0]] and marked[k[1]] and marked[v]}
            setattr(self, cattr, kept)

    def clear_cache(self) -> None:
        """Drop every computed-table entry.

        Required after reordering: a level swap rewrites what a node id
        *means*, so cached results would be wrong, not merely stale.
        The interned quantify/restrict contexts survive (they reference
        variable ids, which reordering never changes); compose contexts
        embed node ids and go with their segment.
        """
        for _name, cattr, _sattr, _kind in _SEGMENT_SPECS:
            getattr(self, cattr).clear()
        self._compose_ctx.clear()

    def cache_stats(self) -> Dict:
        """Computed-table traffic counters.

        Returns ``{"ops": {name: {hits, misses, evictions, entries}},
        "total": {hits, misses, evictions, entries, hit_rate}}``.
        ``hit_rate`` is hits over probes (0.0 before any probe).
        """
        ops = {}
        th = tm = te = tn = 0
        for name, cattr, sattr, _kind in _SEGMENT_SPECS:
            st = getattr(self, sattr)
            entries = len(getattr(self, cattr))
            ops[name] = {"hits": st[0], "misses": st[1],
                         "evictions": st[2], "entries": entries}
            th += st[0]
            tm += st[1]
            te += st[2]
            tn += entries
        probes = th + tm
        return {"ops": ops,
                "total": {"hits": th, "misses": tm, "evictions": te,
                          "entries": tn,
                          "hit_rate": (th / probes) if probes else 0.0}}

    def __len__(self) -> int:
        """Number of live nodes, terminals included."""
        return self._live_nodes

    # ------------------------------------------------------------------
    # Automatic maintenance hook, called at top-level op boundaries.
    # ------------------------------------------------------------------

    def _maybe_maintain(self) -> None:
        if self._reorder_lock:
            return
        if self.auto_reorder and self._live_nodes >= self.reorder_threshold:
            from .reorder import sift

            self.collect_garbage()
            if self._live_nodes >= self.reorder_threshold:
                sift(self, max_vars=self.sift_max_vars)
                self.n_reorderings += 1
                self.reorder_threshold = max(self.reorder_threshold,
                                             2 * self._live_nodes)
        elif self._live_nodes >= self._gc_threshold:
            before = self._live_nodes
            self.collect_garbage()
            if self._live_nodes > before // 2:
                self._gc_threshold = 2 * self._live_nodes

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------

    def node_var(self, u: int) -> int:
        """Variable id at node ``u`` (raises on terminals)."""
        var = self._var[u]
        if var == _TERMINAL_VAR:
            raise ValueError("terminal node has no variable")
        return var

    def node_low(self, u: int) -> int:
        """Else-child of node ``u``."""
        return self._low[u]

    def node_high(self, u: int) -> int:
        """Then-child of node ``u``."""
        return self._high[u]

    def is_terminal(self, u: int) -> bool:
        """True for the two constant nodes."""
        return u <= TRUE

    def size(self, roots: Union[int, Iterable[int]]) -> int:
        """Number of distinct nodes reachable from ``roots``, terminals
        included (matching how CUDD's ``Cudd_DagSize`` counts)."""
        if isinstance(roots, int):
            roots = (roots,)
        low_a = self._low
        high_a = self._high
        seen = set()
        seen_add = seen.add
        stack = list(roots)
        push = stack.append
        pop = stack.pop
        while stack:
            u = pop()
            if u in seen:
                continue
            seen_add(u)
            if u > TRUE:
                push(low_a[u])
                push(high_a[u])
        return len(seen)

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction of two nodes."""
        self._maybe_maintain()
        return self._and(f, g)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction of two nodes."""
        self._maybe_maintain()
        return self._or(f, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive-or of two nodes."""
        self._maybe_maintain()
        return self._xor(f, g)

    def apply_not(self, f: int) -> int:
        """Negation of a node."""
        self._maybe_maintain()
        return self._not(f)

    def apply_ite(self, f: int, g: int, h: int) -> int:
        """If-then-else operator ``f·g + ¬f·h``."""
        self._maybe_maintain()
        return self._ite(f, g, h)

    def apply_xnor(self, f: int, g: int) -> int:
        """Equivalence ``f ↔ g``."""
        self._maybe_maintain()
        return self._not(self._xor(f, g))

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f → g``."""
        self._maybe_maintain()
        return self._or(self._not(f), g)

    def _top_split(self, f: int, g: int) -> Tuple[int, int, int, int, int]:
        """Cofactor ``f`` and ``g`` against their topmost variable.

        Returns ``(var, f0, f1, g0, g1)``.
        """
        lf, lg = self._node_level(f), self._node_level(g)
        if lf <= lg:
            var = self._var[f]
            f0, f1 = self._low[f], self._high[f]
        else:
            var = self._var[g]
            f0 = f1 = f
        if lg <= lf:
            g0, g1 = self._low[g], self._high[g]
        else:
            g0 = g1 = g
        return var, f0, f1, g0, g1

    # Each kernel is split into a fast path (terminal rules, normalize,
    # one computed-table probe) and a ``*_slow`` explicit-stack loop.
    # The loops use *lookahead*: before pushing a frame for a child
    # pair, they try to resolve it inline via the terminal rules and a
    # cache probe, so frames exist only for true misses.  Stats are
    # accumulated in locals and flushed in ``finally`` (a budget trip
    # may abort the loop mid-flight).

    def _and(self, f: int, g: int) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE or f == g:
            return f
        if f > g:
            f, g = g, f
        res = self._c_and.get((f, g))
        if res is not None:
            self._cs_and[0] += 1
            return res
        return self._and_slow(f, g)

    def _and_slow(self, f: int, g: int) -> int:
        # (f, g) is normalized and just missed the computed table.
        cache = self._c_and
        cache_get = cache.get
        limit = self._cache_limit
        var_a = self._var
        low_a = self._low
        high_a = self._high
        v2l = self._var2level
        unique = self._unique
        unique_get = unique.get
        var_nodes = self._var_nodes
        pref = self._pref
        ref = self._ref
        free = self._free
        # The fault injector (resilience.faults) patches the public mk
        # as an instance attribute; route node creation through it so
        # injected allocator faults still fire inside the loop.
        mk_hooked = "mk" in self.__dict__
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        key = (f, g)
        try:
            while True:
                # EXPAND: (f, g) is a normalized computed-table miss.
                miss += 1
                vf = var_a[f]
                vg = var_a[g]
                lf = v2l[vf]
                lg = v2l[vg]
                if lf <= lg:
                    v = vf
                    f0 = low_a[f]
                    f1 = high_a[f]
                else:
                    v = vg
                    f0 = f1 = f
                if lg <= lf:
                    g0 = low_a[g]
                    g1 = high_a[g]
                else:
                    g0 = g1 = g
                # Quick-resolve the low pair.
                if f0 == FALSE or g0 == FALSE:
                    r0 = FALSE
                elif f0 == TRUE:
                    r0 = g0
                elif g0 == TRUE or f0 == g0:
                    r0 = f0
                else:
                    if f0 > g0:
                        f0, g0 = g0, f0
                    k0 = (f0, g0)
                    r0 = cache_get(k0)
                    if r0 is None:
                        push([key, v, f1, g1, -1])
                        f = f0
                        g = g0
                        key = k0
                        continue
                    hits += 1
                # Quick-resolve the high pair.
                if f1 == FALSE or g1 == FALSE:
                    r1 = FALSE
                elif f1 == TRUE:
                    r1 = g1
                elif g1 == TRUE or f1 == g1:
                    r1 = f1
                else:
                    if f1 > g1:
                        f1, g1 = g1, f1
                    k1 = (f1, g1)
                    r1 = cache_get(k1)
                    if r1 is None:
                        push([key, v, r0, 0, 0])
                        f = f1
                        g = g1
                        key = k1
                        continue
                    hits += 1
                # Inline mk(v, r0, r1).
                if mk_hooked:
                    res = self.mk(v, r0, r1)
                elif r0 == r1:
                    res = r0
                else:
                    ukey = (v, r0, r1)
                    res = unique_get(ukey)
                    if res is None:
                        if free:
                            res = free.pop()
                            var_a[res] = v
                            low_a[res] = r0
                            high_a[res] = r1
                            ref[res] = 0
                            pref[res] = 0
                        else:
                            res = len(var_a)
                            var_a.append(v)
                            low_a.append(r0)
                            high_a.append(r1)
                            ref.append(0)
                            pref.append(0)
                        unique[ukey] = res
                        var_nodes[v].add(res)
                        pref[r0] += 1
                        pref[r1] += 1
                        live = self._live_nodes + 1
                        self._live_nodes = live
                        if live > self.peak_live_nodes:
                            self.peak_live_nodes = live
                        n = self._budget_countdown
                        if n is not None:
                            if n > 0:
                                self._budget_countdown = n - 1
                            else:
                                self._budget_poll("mk")
                if len(cache) >= limit:
                    del cache[next(iter(cache))]
                    evt += 1
                cache[key] = res
                # UNWIND until a frame needs a subcomputation.
                while stack:
                    top = stack[-1]
                    if top[4] < 0:
                        # res is the low result; quick-resolve the high.
                        r0 = res
                        f1 = top[2]
                        g1 = top[3]
                        if f1 == FALSE or g1 == FALSE:
                            r1 = FALSE
                        elif f1 == TRUE:
                            r1 = g1
                        elif g1 == TRUE or f1 == g1:
                            r1 = f1
                        else:
                            if f1 > g1:
                                f1, g1 = g1, f1
                            k1 = (f1, g1)
                            r1 = cache_get(k1)
                            if r1 is None:
                                top[2] = r0
                                top[4] = 0
                                f = f1
                                g = g1
                                key = k1
                                break
                            hits += 1
                        pop()
                    else:
                        pop()
                        r0 = top[2]
                        r1 = res
                    v = top[1]
                    # Inline mk(v, r0, r1).
                    if mk_hooked:
                        res = self.mk(v, r0, r1)
                    elif r0 == r1:
                        res = r0
                    else:
                        ukey = (v, r0, r1)
                        res = unique_get(ukey)
                        if res is None:
                            if free:
                                res = free.pop()
                                var_a[res] = v
                                low_a[res] = r0
                                high_a[res] = r1
                                ref[res] = 0
                                pref[res] = 0
                            else:
                                res = len(var_a)
                                var_a.append(v)
                                low_a.append(r0)
                                high_a.append(r1)
                                ref.append(0)
                                pref.append(0)
                            unique[ukey] = res
                            var_nodes[v].add(res)
                            pref[r0] += 1
                            pref[r1] += 1
                            live = self._live_nodes + 1
                            self._live_nodes = live
                            if live > self.peak_live_nodes:
                                self.peak_live_nodes = live
                            n = self._budget_countdown
                            if n is not None:
                                if n > 0:
                                    self._budget_countdown = n - 1
                                else:
                                    self._budget_poll("mk")
                    if len(cache) >= limit:
                        del cache[next(iter(cache))]
                        evt += 1
                    cache[top[0]] = res
                else:
                    return res
        finally:
            st = self._cs_and
            st[0] += hits
            st[1] += miss
            st[2] += evt

    def _or(self, f: int, g: int) -> int:
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE or f == g:
            return f
        if f > g:
            f, g = g, f
        res = self._c_or.get((f, g))
        if res is not None:
            self._cs_or[0] += 1
            return res
        return self._or_slow(f, g)

    def _or_slow(self, f: int, g: int) -> int:
        cache = self._c_or
        cache_get = cache.get
        limit = self._cache_limit
        var_a = self._var
        low_a = self._low
        high_a = self._high
        v2l = self._var2level
        unique = self._unique
        unique_get = unique.get
        var_nodes = self._var_nodes
        pref = self._pref
        ref = self._ref
        free = self._free
        # The fault injector (resilience.faults) patches the public mk
        # as an instance attribute; route node creation through it so
        # injected allocator faults still fire inside the loop.
        mk_hooked = "mk" in self.__dict__
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        key = (f, g)
        try:
            while True:
                miss += 1
                vf = var_a[f]
                vg = var_a[g]
                lf = v2l[vf]
                lg = v2l[vg]
                if lf <= lg:
                    v = vf
                    f0 = low_a[f]
                    f1 = high_a[f]
                else:
                    v = vg
                    f0 = f1 = f
                if lg <= lf:
                    g0 = low_a[g]
                    g1 = high_a[g]
                else:
                    g0 = g1 = g
                if f0 == TRUE or g0 == TRUE:
                    r0 = TRUE
                elif f0 == FALSE:
                    r0 = g0
                elif g0 == FALSE or f0 == g0:
                    r0 = f0
                else:
                    if f0 > g0:
                        f0, g0 = g0, f0
                    k0 = (f0, g0)
                    r0 = cache_get(k0)
                    if r0 is None:
                        push([key, v, f1, g1, -1])
                        f = f0
                        g = g0
                        key = k0
                        continue
                    hits += 1
                if f1 == TRUE or g1 == TRUE:
                    r1 = TRUE
                elif f1 == FALSE:
                    r1 = g1
                elif g1 == FALSE or f1 == g1:
                    r1 = f1
                else:
                    if f1 > g1:
                        f1, g1 = g1, f1
                    k1 = (f1, g1)
                    r1 = cache_get(k1)
                    if r1 is None:
                        push([key, v, r0, 0, 0])
                        f = f1
                        g = g1
                        key = k1
                        continue
                    hits += 1
                if mk_hooked:
                    res = self.mk(v, r0, r1)
                elif r0 == r1:
                    res = r0
                else:
                    ukey = (v, r0, r1)
                    res = unique_get(ukey)
                    if res is None:
                        if free:
                            res = free.pop()
                            var_a[res] = v
                            low_a[res] = r0
                            high_a[res] = r1
                            ref[res] = 0
                            pref[res] = 0
                        else:
                            res = len(var_a)
                            var_a.append(v)
                            low_a.append(r0)
                            high_a.append(r1)
                            ref.append(0)
                            pref.append(0)
                        unique[ukey] = res
                        var_nodes[v].add(res)
                        pref[r0] += 1
                        pref[r1] += 1
                        live = self._live_nodes + 1
                        self._live_nodes = live
                        if live > self.peak_live_nodes:
                            self.peak_live_nodes = live
                        n = self._budget_countdown
                        if n is not None:
                            if n > 0:
                                self._budget_countdown = n - 1
                            else:
                                self._budget_poll("mk")
                if len(cache) >= limit:
                    del cache[next(iter(cache))]
                    evt += 1
                cache[key] = res
                while stack:
                    top = stack[-1]
                    if top[4] < 0:
                        r0 = res
                        f1 = top[2]
                        g1 = top[3]
                        if f1 == TRUE or g1 == TRUE:
                            r1 = TRUE
                        elif f1 == FALSE:
                            r1 = g1
                        elif g1 == FALSE or f1 == g1:
                            r1 = f1
                        else:
                            if f1 > g1:
                                f1, g1 = g1, f1
                            k1 = (f1, g1)
                            r1 = cache_get(k1)
                            if r1 is None:
                                top[2] = r0
                                top[4] = 0
                                f = f1
                                g = g1
                                key = k1
                                break
                            hits += 1
                        pop()
                    else:
                        pop()
                        r0 = top[2]
                        r1 = res
                    v = top[1]
                    if mk_hooked:
                        res = self.mk(v, r0, r1)
                    elif r0 == r1:
                        res = r0
                    else:
                        ukey = (v, r0, r1)
                        res = unique_get(ukey)
                        if res is None:
                            if free:
                                res = free.pop()
                                var_a[res] = v
                                low_a[res] = r0
                                high_a[res] = r1
                                ref[res] = 0
                                pref[res] = 0
                            else:
                                res = len(var_a)
                                var_a.append(v)
                                low_a.append(r0)
                                high_a.append(r1)
                                ref.append(0)
                                pref.append(0)
                            unique[ukey] = res
                            var_nodes[v].add(res)
                            pref[r0] += 1
                            pref[r1] += 1
                            live = self._live_nodes + 1
                            self._live_nodes = live
                            if live > self.peak_live_nodes:
                                self.peak_live_nodes = live
                            n = self._budget_countdown
                            if n is not None:
                                if n > 0:
                                    self._budget_countdown = n - 1
                                else:
                                    self._budget_poll("mk")
                    if len(cache) >= limit:
                        del cache[next(iter(cache))]
                        evt += 1
                    cache[top[0]] = res
                else:
                    return res
        finally:
            st = self._cs_or
            st[0] += hits
            st[1] += miss
            st[2] += evt

    def _xor(self, f: int, g: int) -> int:
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self._not(g)
        if g == TRUE:
            return self._not(f)
        if f > g:
            f, g = g, f
        res = self._c_xor.get((f, g))
        if res is not None:
            self._cs_xor[0] += 1
            return res
        return self._xor_slow(f, g)

    def _xor_slow(self, f: int, g: int) -> int:
        cache = self._c_xor
        cache_get = cache.get
        limit = self._cache_limit
        _not = self._not
        var_a = self._var
        low_a = self._low
        high_a = self._high
        v2l = self._var2level
        unique = self._unique
        unique_get = unique.get
        var_nodes = self._var_nodes
        pref = self._pref
        ref = self._ref
        free = self._free
        # The fault injector (resilience.faults) patches the public mk
        # as an instance attribute; route node creation through it so
        # injected allocator faults still fire inside the loop.
        mk_hooked = "mk" in self.__dict__
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        key = (f, g)
        try:
            while True:
                miss += 1
                vf = var_a[f]
                vg = var_a[g]
                lf = v2l[vf]
                lg = v2l[vg]
                if lf <= lg:
                    v = vf
                    f0 = low_a[f]
                    f1 = high_a[f]
                else:
                    v = vg
                    f0 = f1 = f
                if lg <= lf:
                    g0 = low_a[g]
                    g1 = high_a[g]
                else:
                    g0 = g1 = g
                if f0 == g0:
                    r0 = FALSE
                elif f0 == FALSE:
                    r0 = g0
                elif g0 == FALSE:
                    r0 = f0
                elif f0 == TRUE:
                    r0 = _not(g0)
                elif g0 == TRUE:
                    r0 = _not(f0)
                else:
                    if f0 > g0:
                        f0, g0 = g0, f0
                    k0 = (f0, g0)
                    r0 = cache_get(k0)
                    if r0 is None:
                        push([key, v, f1, g1, -1])
                        f = f0
                        g = g0
                        key = k0
                        continue
                    hits += 1
                if f1 == g1:
                    r1 = FALSE
                elif f1 == FALSE:
                    r1 = g1
                elif g1 == FALSE:
                    r1 = f1
                elif f1 == TRUE:
                    r1 = _not(g1)
                elif g1 == TRUE:
                    r1 = _not(f1)
                else:
                    if f1 > g1:
                        f1, g1 = g1, f1
                    k1 = (f1, g1)
                    r1 = cache_get(k1)
                    if r1 is None:
                        push([key, v, r0, 0, 0])
                        f = f1
                        g = g1
                        key = k1
                        continue
                    hits += 1
                if mk_hooked:
                    res = self.mk(v, r0, r1)
                elif r0 == r1:
                    res = r0
                else:
                    ukey = (v, r0, r1)
                    res = unique_get(ukey)
                    if res is None:
                        if free:
                            res = free.pop()
                            var_a[res] = v
                            low_a[res] = r0
                            high_a[res] = r1
                            ref[res] = 0
                            pref[res] = 0
                        else:
                            res = len(var_a)
                            var_a.append(v)
                            low_a.append(r0)
                            high_a.append(r1)
                            ref.append(0)
                            pref.append(0)
                        unique[ukey] = res
                        var_nodes[v].add(res)
                        pref[r0] += 1
                        pref[r1] += 1
                        live = self._live_nodes + 1
                        self._live_nodes = live
                        if live > self.peak_live_nodes:
                            self.peak_live_nodes = live
                        n = self._budget_countdown
                        if n is not None:
                            if n > 0:
                                self._budget_countdown = n - 1
                            else:
                                self._budget_poll("mk")
                if len(cache) >= limit:
                    del cache[next(iter(cache))]
                    evt += 1
                cache[key] = res
                while stack:
                    top = stack[-1]
                    if top[4] < 0:
                        r0 = res
                        f1 = top[2]
                        g1 = top[3]
                        if f1 == g1:
                            r1 = FALSE
                        elif f1 == FALSE:
                            r1 = g1
                        elif g1 == FALSE:
                            r1 = f1
                        elif f1 == TRUE:
                            r1 = _not(g1)
                        elif g1 == TRUE:
                            r1 = _not(f1)
                        else:
                            if f1 > g1:
                                f1, g1 = g1, f1
                            k1 = (f1, g1)
                            r1 = cache_get(k1)
                            if r1 is None:
                                top[2] = r0
                                top[4] = 0
                                f = f1
                                g = g1
                                key = k1
                                break
                            hits += 1
                        pop()
                    else:
                        pop()
                        r0 = top[2]
                        r1 = res
                    v = top[1]
                    if mk_hooked:
                        res = self.mk(v, r0, r1)
                    elif r0 == r1:
                        res = r0
                    else:
                        ukey = (v, r0, r1)
                        res = unique_get(ukey)
                        if res is None:
                            if free:
                                res = free.pop()
                                var_a[res] = v
                                low_a[res] = r0
                                high_a[res] = r1
                                ref[res] = 0
                                pref[res] = 0
                            else:
                                res = len(var_a)
                                var_a.append(v)
                                low_a.append(r0)
                                high_a.append(r1)
                                ref.append(0)
                                pref.append(0)
                            unique[ukey] = res
                            var_nodes[v].add(res)
                            pref[r0] += 1
                            pref[r1] += 1
                            live = self._live_nodes + 1
                            self._live_nodes = live
                            if live > self.peak_live_nodes:
                                self.peak_live_nodes = live
                            n = self._budget_countdown
                            if n is not None:
                                if n > 0:
                                    self._budget_countdown = n - 1
                                else:
                                    self._budget_poll("mk")
                    if len(cache) >= limit:
                        del cache[next(iter(cache))]
                        evt += 1
                    cache[top[0]] = res
                else:
                    return res
        finally:
            st = self._cs_xor
            st[0] += hits
            st[1] += miss
            st[2] += evt

    def _not(self, f: int) -> int:
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        res = self._c_not.get(f)
        if res is not None:
            self._cs_not[0] += 1
            return res
        return self._not_slow(f)

    def _not_slow(self, f: int) -> int:
        cache = self._c_not
        cache_get = cache.get
        limit = self._cache_limit
        var_a = self._var
        low_a = self._low
        high_a = self._high
        unique = self._unique
        unique_get = unique.get
        var_nodes = self._var_nodes
        pref = self._pref
        ref = self._ref
        free = self._free
        # The fault injector (resilience.faults) patches the public mk
        # as an instance attribute; route node creation through it so
        # injected allocator faults still fire inside the loop.
        mk_hooked = "mk" in self.__dict__
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # EXPAND: f is a nonterminal computed-table miss.
                miss += 1
                v = var_a[f]
                c0 = low_a[f]
                c1 = high_a[f]
                if c0 == FALSE:
                    r0 = TRUE
                elif c0 == TRUE:
                    r0 = FALSE
                else:
                    r0 = cache_get(c0)
                    if r0 is None:
                        push([f, v, c1, -1])
                        f = c0
                        continue
                    hits += 1
                if c1 == FALSE:
                    r1 = TRUE
                elif c1 == TRUE:
                    r1 = FALSE
                else:
                    r1 = cache_get(c1)
                    if r1 is None:
                        push([f, v, r0, 0])
                        f = c1
                        continue
                    hits += 1
                # Inline mk(v, r0, r1); negation never merges children.
                ukey = (v, r0, r1)
                res = self.mk(v, r0, r1) if mk_hooked else unique_get(ukey)
                if res is None:
                    if free:
                        res = free.pop()
                        var_a[res] = v
                        low_a[res] = r0
                        high_a[res] = r1
                        ref[res] = 0
                        pref[res] = 0
                    else:
                        res = len(var_a)
                        var_a.append(v)
                        low_a.append(r0)
                        high_a.append(r1)
                        ref.append(0)
                        pref.append(0)
                    unique[ukey] = res
                    var_nodes[v].add(res)
                    pref[r0] += 1
                    pref[r1] += 1
                    live = self._live_nodes + 1
                    self._live_nodes = live
                    if live > self.peak_live_nodes:
                        self.peak_live_nodes = live
                    n = self._budget_countdown
                    if n is not None:
                        if n > 0:
                            self._budget_countdown = n - 1
                        else:
                            self._budget_poll("mk")
                if len(cache) >= limit:
                    del cache[next(iter(cache))]
                    evt += 1
                cache[f] = res
                while stack:
                    top = stack[-1]
                    if top[3] < 0:
                        r0 = res
                        c1 = top[2]
                        if c1 == FALSE:
                            r1 = TRUE
                        elif c1 == TRUE:
                            r1 = FALSE
                        else:
                            r1 = cache_get(c1)
                            if r1 is None:
                                top[2] = r0
                                top[3] = 0
                                f = c1
                                break
                            hits += 1
                        pop()
                    else:
                        pop()
                        r0 = top[2]
                        r1 = res
                    v = top[1]
                    ukey = (v, r0, r1)
                    res = self.mk(v, r0, r1) if mk_hooked else unique_get(ukey)
                    if res is None:
                        if free:
                            res = free.pop()
                            var_a[res] = v
                            low_a[res] = r0
                            high_a[res] = r1
                            ref[res] = 0
                            pref[res] = 0
                        else:
                            res = len(var_a)
                            var_a.append(v)
                            low_a.append(r0)
                            high_a.append(r1)
                            ref.append(0)
                            pref.append(0)
                        unique[ukey] = res
                        var_nodes[v].add(res)
                        pref[r0] += 1
                        pref[r1] += 1
                        live = self._live_nodes + 1
                        self._live_nodes = live
                        if live > self.peak_live_nodes:
                            self.peak_live_nodes = live
                        n = self._budget_countdown
                        if n is not None:
                            if n > 0:
                                self._budget_countdown = n - 1
                            else:
                                self._budget_poll("mk")
                    if len(cache) >= limit:
                        del cache[next(iter(cache))]
                        evt += 1
                    cache[top[0]] = res
                else:
                    return res
        finally:
            st = self._cs_not
            st[0] += hits
            st[1] += miss
            st[2] += evt

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self._not(f)
        if g == TRUE:
            return self._or(f, h)
        if g == FALSE:
            return self._and(self._not(f), h)
        if h == FALSE:
            return self._and(f, g)
        if h == TRUE:
            return self._or(self._not(f), g)
        if f == g:
            return self._or(f, h)
        if f == h:
            return self._and(f, g)
        res = self._c_ite.get((f, g, h))
        if res is not None:
            self._cs_ite[0] += 1
            return res
        return self._ite_slow(f, g, h)

    def _ite_slow(self, f: int, g: int, h: int) -> int:
        # Resolve-first loop: each (f, g, h) task either simplifies via
        # the terminal rules (which may run the — iterative — binary
        # kernels), hits the cache, or pushes one frame and descends.
        # Frame: [key, var, f1, g1, h1, state]; state is -1 while the
        # low cofactor is in flight, then the low *result* (always
        # >= 0) while the high cofactor is in flight.
        cache = self._c_ite
        cache_get = cache.get
        limit = self._cache_limit
        mk = self.mk
        var_a = self._var
        low_a = self._low
        high_a = self._high
        v2l = self._var2level
        l2v = self._level2var
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # RESOLVE the task (f, g, h).
                if f == TRUE:
                    res = g
                elif f == FALSE:
                    res = h
                elif g == h:
                    res = g
                elif g == TRUE and h == FALSE:
                    res = f
                elif g == FALSE and h == TRUE:
                    res = self._not(f)
                elif g == TRUE:
                    res = self._or(f, h)
                elif g == FALSE:
                    res = self._and(self._not(f), h)
                elif h == FALSE:
                    res = self._and(f, g)
                elif h == TRUE:
                    res = self._or(self._not(f), g)
                elif f == g:
                    res = self._or(f, h)
                elif f == h:
                    res = self._and(f, g)
                else:
                    key = (f, g, h)
                    res = cache_get(key)
                    if res is None:
                        miss += 1
                        n = self._budget_countdown
                        if n is not None:
                            if n > 0:
                                self._budget_countdown = n - 1
                            else:
                                self._budget_poll("ite")
                        # All three operands are nonterminal here.
                        level = v2l[var_a[f]]
                        lg = v2l[var_a[g]]
                        if lg < level:
                            level = lg
                        lh = v2l[var_a[h]]
                        if lh < level:
                            level = lh
                        if v2l[var_a[f]] == level:
                            f0 = low_a[f]
                            f1 = high_a[f]
                        else:
                            f0 = f1 = f
                        if lg == level:
                            g0 = low_a[g]
                            g1 = high_a[g]
                        else:
                            g0 = g1 = g
                        if lh == level:
                            h0 = low_a[h]
                            h1 = high_a[h]
                        else:
                            h0 = h1 = h
                        push([key, l2v[level], f1, g1, h1, -1])
                        f = f0
                        g = g0
                        h = h0
                        continue
                    hits += 1
                # UNWIND.
                while stack:
                    top = stack[-1]
                    state = top[5]
                    if state < 0:
                        top[5] = res
                        f = top[2]
                        g = top[3]
                        h = top[4]
                        break
                    pop()
                    res = mk(top[1], state, res)
                    if len(cache) >= limit:
                        del cache[next(iter(cache))]
                        evt += 1
                    cache[top[0]] = res
                else:
                    return res
        finally:
            st = self._cs_ite
            st[0] += hits
            st[1] += miss
            st[2] += evt

    def _cofactors_at(self, f: int, level: int) -> Tuple[int, int]:
        if self._node_level(f) == level:
            return self._low[f], self._high[f]
        return f, f

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def _levels_key(self, variables: Iterable[Union[str, int]]) -> frozenset:
        return frozenset(self.var_id(v) for v in variables)

    def _quant_ctx_id(self, var_set: frozenset) -> int:
        qc = self._quant_ctx
        ctx = qc.get(var_set)
        if ctx is None:
            ctx = len(qc)
            qc[var_set] = ctx
        return ctx

    def exists(self, variables: Iterable[Union[str, int]], f: int) -> int:
        """Existential quantification ``∃ variables . f``."""
        self._maybe_maintain()
        vars_key = self._levels_key(variables)
        if not vars_key:
            return f
        return self._quantify(f, vars_key, _OP_EXISTS)

    def forall(self, variables: Iterable[Union[str, int]], f: int) -> int:
        """Universal quantification ``∀ variables . f``."""
        self._maybe_maintain()
        vars_key = self._levels_key(variables)
        if not vars_key:
            return f
        return self._quantify(f, vars_key, _OP_FORALL)

    def _quantify(self, f: int, var_set: frozenset, op: int) -> int:
        if f <= TRUE:
            return f
        v2l = self._var2level
        # Hoisted once per top-level call; the historic recursion paid
        # this O(|var_set|) max at *every* visited node.
        max_level = max(v2l[v] for v in var_set)
        var_a = self._var
        if v2l[var_a[f]] > max_level:
            return f
        if op == _OP_EXISTS:
            cache = self._c_exists
            stats = self._cs_exists
            combine = self._or
        else:
            cache = self._c_forall
            stats = self._cs_forall
            combine = self._and
        ctx = self._quant_ctx_id(var_set)
        res = cache.get((f, ctx))
        if res is not None:
            stats[0] += 1
            return res
        cache_get = cache.get
        limit = self._cache_limit
        mk = self.mk
        low_a = self._low
        high_a = self._high
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # RESOLVE the task f.
                if f <= TRUE or v2l[var_a[f]] > max_level:
                    res = f
                else:
                    key = (f, ctx)
                    res = cache_get(key)
                    if res is None:
                        miss += 1
                        n = self._budget_countdown
                        if n is not None:
                            if n > 0:
                                self._budget_countdown = n - 1
                            else:
                                self._budget_poll("quantify")
                        push([key, var_a[f], high_a[f], -1])
                        f = low_a[f]
                        continue
                    hits += 1
                # UNWIND.
                while stack:
                    top = stack[-1]
                    if top[3] < 0:
                        f = top[2]
                        top[2] = res
                        top[3] = 0
                        break
                    pop()
                    var = top[1]
                    if var in var_set:
                        res = combine(top[2], res)
                    else:
                        res = mk(var, top[2], res)
                    if len(cache) >= limit:
                        del cache[next(iter(cache))]
                        evt += 1
                    cache[top[0]] = res
                else:
                    return res
        finally:
            stats[0] += hits
            stats[1] += miss
            stats[2] += evt

    def and_exists(self, variables: Iterable[Union[str, int]],
                   f: int, g: int) -> int:
        """Relational product ``∃ variables . f ∧ g`` in one pass.

        Avoids building the full conjunction when most of it is
        quantified away; the workhorse of the output- and input-exact
        checks.
        """
        self._maybe_maintain()
        vars_key = self._levels_key(variables)
        if not vars_key:
            return self._and(f, g)
        return self._and_exists(f, g, vars_key)

    def _and_exists(self, f: int, g: int, var_set: frozenset) -> int:
        # Resolve-first loop.  Frame: [key, var, a, b, state] with
        # state -2/-1 while the low pair (a=f1, b=g1 pending) is in
        # flight — -2 when var is quantified, enabling the lo == TRUE
        # short-circuit — then 1 (quantified, a=low result) or 0
        # (unquantified, a=low result) while the high pair runs.
        ctx = self._quant_ctx_id(var_set)
        cache = self._c_andex
        cache_get = cache.get
        limit = self._cache_limit
        mk = self.mk
        _or = self._or
        var_a = self._var
        low_a = self._low
        high_a = self._high
        v2l = self._var2level
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # RESOLVE the task (f, g).
                if f == FALSE or g == FALSE:
                    res = FALSE
                elif f == TRUE and g == TRUE:
                    res = TRUE
                elif f == TRUE:
                    res = self._quantify(g, var_set, _OP_EXISTS)
                elif g == TRUE or f == g:
                    res = self._quantify(f, var_set, _OP_EXISTS)
                else:
                    if f > g:
                        f, g = g, f
                    key = (f, g, ctx)
                    res = cache_get(key)
                    if res is None:
                        miss += 1
                        n = self._budget_countdown
                        if n is not None:
                            if n > 0:
                                self._budget_countdown = n - 1
                            else:
                                self._budget_poll("and_exists")
                        lf = v2l[var_a[f]]
                        lg = v2l[var_a[g]]
                        if lf <= lg:
                            var = var_a[f]
                            f0 = low_a[f]
                            f1 = high_a[f]
                        else:
                            var = var_a[g]
                            f0 = f1 = f
                        if lg <= lf:
                            g0 = low_a[g]
                            g1 = high_a[g]
                        else:
                            g0 = g1 = g
                        push([key, var, f1, g1,
                              -2 if var in var_set else -1])
                        f = f0
                        g = g0
                        continue
                    hits += 1
                # UNWIND.
                while stack:
                    top = stack[-1]
                    state = top[4]
                    if state < 0:
                        if state == -2 and res == TRUE:
                            # ∃-short-circuit: TRUE ∨ anything is TRUE.
                            pop()
                            if len(cache) >= limit:
                                del cache[next(iter(cache))]
                                evt += 1
                            cache[top[0]] = TRUE
                            continue
                        f = top[2]
                        g = top[3]
                        top[2] = res
                        top[4] = 1 if state == -2 else 0
                        break
                    pop()
                    if state == 1:
                        res = _or(top[2], res)
                    else:
                        res = mk(top[1], top[2], res)
                    if len(cache) >= limit:
                        del cache[next(iter(cache))]
                        evt += 1
                    cache[top[0]] = res
                else:
                    return res
        finally:
            st = self._cs_andex
            st[0] += hits
            st[1] += miss
            st[2] += evt

    # ------------------------------------------------------------------
    # Cofactor / compose
    # ------------------------------------------------------------------

    def restrict(self, f: int,
                 assignment: Dict[Union[str, int], bool]) -> int:
        """Cofactor ``f`` with a partial variable assignment."""
        self._maybe_maintain()
        fixed = {self.var_id(v): bool(val) for v, val in assignment.items()}
        if not fixed:
            return f
        # The assignment is interned once per top-level call; the
        # historic recursion rebuilt tuple(sorted(fixed.items())) at
        # every visited node just to key the computed table.
        rc = self._restrict_ctx
        items = tuple(sorted(fixed.items()))
        rid = rc.get(items)
        if rid is None:
            rid = len(rc)
            rc[items] = rid
        return self._restrict(f, fixed, rid)

    def _restrict(self, f: int, fixed: Dict[int, bool], rid: int) -> int:
        if f <= TRUE:
            return f
        # Resolve-first loop.  Frame: [key, var, hi, state]; state -1
        # while the low child is in flight (hi pending), 0 while the
        # high child runs (slot 2 now holds the low result), 2 for a
        # fixed-variable pass-through (cache and propagate unchanged).
        cache = self._c_restrict
        cache_get = cache.get
        limit = self._cache_limit
        mk = self.mk
        fixed_get = fixed.get
        var_a = self._var
        low_a = self._low
        high_a = self._high
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # RESOLVE the task f.
                if f <= TRUE:
                    res = f
                else:
                    key = (f, rid)
                    res = cache_get(key)
                    if res is None:
                        miss += 1
                        var = var_a[f]
                        val = fixed_get(var)
                        if val is None:
                            push([key, var, high_a[f], -1])
                            f = low_a[f]
                        else:
                            push([key, 0, 0, 2])
                            f = high_a[f] if val else low_a[f]
                        continue
                    hits += 1
                # UNWIND.
                while stack:
                    top = stack[-1]
                    state = top[3]
                    if state < 0:
                        f = top[2]
                        top[2] = res
                        top[3] = 0
                        break
                    pop()
                    if state == 0:
                        res = mk(top[1], top[2], res)
                    if len(cache) >= limit:
                        del cache[next(iter(cache))]
                        evt += 1
                    cache[top[0]] = res
                else:
                    return res
        finally:
            st = self._cs_restrict
            st[0] += hits
            st[1] += miss
            st[2] += evt

    def compose(self, f: int,
                substitution: Dict[Union[str, int], int]) -> int:
        """Simultaneous functional composition ``f[var := g, ...]``."""
        self._maybe_maintain()
        subst = {self.var_id(v): g for v, g in substitution.items()}
        if not subst:
            return f
        cc = self._compose_ctx
        skey = tuple(sorted(subst.items()))
        cid = cc.get(skey)
        if cid is None:
            cid = len(cc)
            cc[skey] = cid
        return self._compose(f, subst, cid)

    def _compose(self, f: int, subst: Dict[int, int], cid: int) -> int:
        if f <= TRUE:
            return f
        # Resolve-first loop.  Frame: [key, var, hi, state]; state -1
        # while the low child is in flight, 0 while the high child runs
        # (slot 2 then holds the low result).
        cache = self._c_compose
        cache_get = cache.get
        limit = self._cache_limit
        subst_get = subst.get
        var_a = self._var
        low_a = self._low
        high_a = self._high
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # RESOLVE the task f.
                if f <= TRUE:
                    res = f
                else:
                    key = (f, cid)
                    res = cache_get(key)
                    if res is None:
                        miss += 1
                        push([key, var_a[f], high_a[f], -1])
                        f = low_a[f]
                        continue
                    hits += 1
                # UNWIND.
                while stack:
                    top = stack[-1]
                    if top[3] < 0:
                        f = top[2]
                        top[2] = res
                        top[3] = 0
                        break
                    pop()
                    var = top[1]
                    g = subst_get(var)
                    if g is None:
                        g = self.mk(var, FALSE, TRUE)
                    res = self._ite(g, res, top[2])
                    if len(cache) >= limit:
                        del cache[next(iter(cache))]
                        evt += 1
                    cache[top[0]] = res
                else:
                    return res
        finally:
            st = self._cs_compose
            st[0] += hits
            st[1] += miss
            st[2] += evt

    # ------------------------------------------------------------------
    # Satisfiability helpers
    # ------------------------------------------------------------------

    def evaluate(self, f: int,
                 assignment: Dict[Union[str, int], bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support."""
        fixed = {self.var_id(v): bool(val) for v, val in assignment.items()}
        u = f
        while u > TRUE:
            var = self._var[u]
            try:
                u = self._high[u] if fixed[var] else self._low[u]
            except KeyError:
                raise ValueError(
                    "assignment misses variable %r" % self._var_names[var]
                ) from None
        return u == TRUE

    def sat_one(self, f: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment over the support of ``f``.

        Returns ``None`` when ``f`` is unsatisfiable.  Variables absent
        from the result are don't-cares.
        """
        if f == FALSE:
            return None
        out: Dict[str, bool] = {}
        u = f
        while u > TRUE:
            name = self._var_names[self._var[u]]
            if self._low[u] != FALSE:
                out[name] = False
                u = self._low[u]
            else:
                out[name] = True
                u = self._high[u]
        return out

    def sat_count(self, f: int, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the total number of declared variables.
        """
        if nvars is None:
            nvars = self.num_vars
        if nvars < self.num_vars:
            raise ValueError("nvars smaller than the declared variable count")
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << nvars
        var_a = self._var
        low_a = self._low
        high_a = self._high
        v2l = self._var2level
        # memo[u]: models over the variables at levels strictly below
        # u's level, padded as if u sat at level -1 were the root; the
        # final shift rescales by the root's level gap.  Terminals are
        # not memoised — their count equals their node id (0 or 1).
        memo: Dict[int, int] = {}
        stack = [f]
        push = stack.append
        pop = stack.pop
        while stack:
            u = stack[-1]
            if u in memo:
                pop()
                continue
            lo = low_a[u]
            hi = high_a[u]
            ready = True
            if lo > TRUE and lo not in memo:
                push(lo)
                ready = False
            if hi > TRUE and hi not in memo:
                push(hi)
                ready = False
            if not ready:
                continue
            pop()
            ulvl = v2l[var_a[u]]
            lo_gap = (nvars if lo <= TRUE else v2l[var_a[lo]]) - ulvl - 1
            hi_gap = (nvars if hi <= TRUE else v2l[var_a[hi]]) - ulvl - 1
            clo = lo if lo <= TRUE else memo[lo]
            chi = hi if hi <= TRUE else memo[hi]
            memo[u] = (clo << lo_gap) + (chi << hi_gap)
        return memo[f] << v2l[var_a[f]]

    def sat_iter(self, f: int) -> Iterator[Dict[str, bool]]:
        """Iterate over all satisfying *cubes* (partial assignments)."""
        if f == FALSE:
            return
        stack: List[Tuple[int, Dict[str, bool]]] = [(f, {})]
        while stack:
            u, partial = stack.pop()
            if u == TRUE:
                yield dict(partial)
                continue
            if u == FALSE:
                continue
            name = self._var_names[self._var[u]]
            hi = dict(partial)
            hi[name] = True
            lo = partial
            lo[name] = False
            stack.append((self._high[u], hi))
            stack.append((self._low[u], lo))

    def support(self, f: int) -> List[str]:
        """Names of the variables ``f`` depends on, in order."""
        var_a = self._var
        low_a = self._low
        high_a = self._high
        vars_seen = set()
        vars_add = vars_seen.add
        seen = set()
        seen_add = seen.add
        stack = [f]
        push = stack.append
        pop = stack.pop
        while stack:
            u = pop()
            if u <= TRUE or u in seen:
                continue
            seen_add(u)
            vars_add(var_a[u])
            push(low_a[u])
            push(high_a[u])
        v2l = self._var2level
        return [self._var_names[v]
                for v in sorted(vars_seen, key=v2l.__getitem__)]

    def _topo_nodes(self, f: int) -> List[int]:
        seen = set()
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(f, False)]
        while stack:
            u, done = stack.pop()
            if done:
                order.append(u)
                continue
            if u in seen:
                continue
            seen.add(u)
            stack.append((u, True))
            if u > TRUE:
                stack.append((self._low[u], False))
                stack.append((self._high[u], False))
        return order

    # ------------------------------------------------------------------
    # Debug helpers
    # ------------------------------------------------------------------

    def invariant_violations(self) -> List[str]:
        """Collect every violated internal invariant (empty = healthy).

        The checks mirror what a corrupted unique table, stale parent
        counts or a broken variable order would look like; the sanitizer
        (:mod:`repro.analysis.bddcheck`) turns the returned strings into
        structured diagnostics.
        """
        out: List[str] = []
        live = 0
        free = set(self._free)
        pref = [0] * len(self._var)
        for u in range(len(self._var)):
            if u in free:
                continue
            live += 1
            if u <= TRUE:
                continue
            var = self._var[u]
            if var == _TERMINAL_VAR:
                out.append("free node leaked: %d" % u)
                continue
            lo, hi = self._low[u], self._high[u]
            if lo == hi:
                out.append("redundant node %d" % u)
            if lo in free or hi in free:
                out.append("node %d points at freed child" % u)
                continue
            pref[lo] += 1
            pref[hi] += 1
            if not 0 <= var < len(self._var2level):
                out.append("node %d has undeclared variable %d" % (u, var))
                continue
            lvl = self._var2level[var]
            if self._node_level(lo) <= lvl or self._node_level(hi) <= lvl:
                out.append("order violated at %d" % u)
            if self._unique.get((var, lo, hi)) != u:
                out.append("unique table inconsistent at %d" % u)
            if u not in self._var_nodes[var]:
                out.append("node %d missing from its variable set" % u)
        if live != self._live_nodes:
            out.append("live count wrong: counted %d, recorded %d"
                       % (live, self._live_nodes))
        if len(self._unique) != live - 2:
            out.append("unique table size %d != %d live non-terminals"
                       % (len(self._unique), live - 2))
        for u in range(2, len(self._var)):
            if u not in free and self._pref[u] != pref[u]:
                out.append("parent count wrong at %d: %d != %d"
                           % (u, self._pref[u], pref[u]))
        if sum(len(s) for s in self._var_nodes) != live - 2:
            out.append("per-variable node sets do not partition the "
                       "live nodes")
        if sorted(self._var2level) != list(range(self.num_vars)):
            out.append("var2level is not a permutation of the levels")
        else:
            for var, lvl in enumerate(self._var2level):
                if self._level2var[lvl] != var:
                    out.append("level2var inconsistent at level %d" % lvl)
        return out

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if internal structures are corrupt.

        Used by the test suite after garbage collection and reordering;
        the opt-in runtime sanitizer raises structured diagnostics
        instead (see :meth:`invariant_violations`).
        """
        violations = self.invariant_violations()
        assert not violations, "; ".join(violations)

    def _selfcheck(self, phase: str) -> None:
        """Debug-mode hook run after GC/reordering (``debug_checks``)."""
        self.n_selfchecks += 1
        violations = self.invariant_violations()
        if violations:
            # Imported lazily: analysis sits above the bdd layer.
            from ..analysis.bddcheck import invariant_error

            raise invariant_error(self, phase, violations)
