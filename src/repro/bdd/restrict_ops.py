"""Don't-care minimization operators: constrain and restrict.

The Coudert-Madre *constrain* (generalized cofactor) and Shiple-style
*restrict* operators: given a function ``f`` and a care set ``c``,
produce a function that agrees with ``f`` wherever ``c`` holds and is
chosen freely elsewhere to shrink the BDD.  Used by witness synthesis
to simplify the box functions against the set of box-input observations
that can actually occur.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .function import Function
from .manager import FALSE, TRUE, BddManager

__all__ = ["constrain", "minimize_restrict"]


def _constrain(mgr: BddManager, f: int, c: int,
               cache: Dict[Tuple[int, int], int]) -> int:
    if c == FALSE:
        # Degenerate by convention: caller guards against an empty care
        # set; returning f keeps the identity f|c=1 -> f.
        return f
    if c == TRUE or f <= TRUE:
        return f
    if f == c:
        return TRUE
    key = (f, c)
    cached = cache.get(key)
    if cached is not None:
        return cached
    level_f = mgr._node_level(f)
    level_c = mgr._node_level(c)
    level = min(level_f, level_c)
    var = mgr._level2var[level]
    f0, f1 = (mgr.node_low(f), mgr.node_high(f)) \
        if level_f == level else (f, f)
    c0, c1 = (mgr.node_low(c), mgr.node_high(c)) \
        if level_c == level else (c, c)
    if c0 == FALSE:
        result = _constrain(mgr, f1, c1, cache)
    elif c1 == FALSE:
        result = _constrain(mgr, f0, c0, cache)
    else:
        result = mgr.mk(var, _constrain(mgr, f0, c0, cache),
                        _constrain(mgr, f1, c1, cache))
    cache[key] = result
    return result


def constrain(f: Function, care: Function) -> Function:
    """Coudert-Madre generalized cofactor ``f ⇓ care``.

    Agrees with ``f`` on the care set; off the care set the value is
    whatever makes the result small (the image of the nearest care
    point).  ``constrain(f, c) & c == f & c`` always holds.
    """
    if f.bdd is not care.bdd:
        raise ValueError("mixing functions from different managers")
    if care.is_false:
        raise ValueError("empty care set")
    mgr = f.bdd.manager
    mgr._maybe_maintain()
    node = _constrain(mgr, f.node, care.node, {})
    return Function(f.bdd, node)


def _minimize(mgr: BddManager, f: int, c: int,
              cache: Dict[Tuple[int, int], int]) -> int:
    """Shiple's *restrict*: like constrain but skips care-set variables
    that ``f`` does not mention, avoiding support growth."""
    if c == TRUE or f <= TRUE:
        return f
    if c == FALSE:
        return f
    key = (f, c)
    cached = cache.get(key)
    if cached is not None:
        return cached
    level_f = mgr._node_level(f)
    level_c = mgr._node_level(c)
    if level_c < level_f:
        # f does not depend on c's top variable: existentially smooth it
        # out of the care set instead of introducing it into f.
        merged = mgr._or(mgr.node_low(c), mgr.node_high(c))
        result = _minimize(mgr, f, merged, cache)
    else:
        var = mgr._level2var[level_f]
        f0, f1 = mgr.node_low(f), mgr.node_high(f)
        c0, c1 = (mgr.node_low(c), mgr.node_high(c)) \
            if level_c == level_f else (c, c)
        if c0 == FALSE:
            result = _minimize(mgr, f1, c1, cache)
        elif c1 == FALSE:
            result = _minimize(mgr, f0, c0, cache)
        else:
            result = mgr.mk(var, _minimize(mgr, f0, c0, cache),
                            _minimize(mgr, f1, c1, cache))
    cache[key] = result
    return result


def minimize_restrict(f: Function, care: Function) -> Function:
    """Shiple restrict: don't-care minimization without support growth.

    Same care-set contract as :func:`constrain`
    (``result & care == f & care``) but never introduces variables that
    ``f`` does not already depend on.
    """
    if f.bdd is not care.bdd:
        raise ValueError("mixing functions from different managers")
    if care.is_false:
        raise ValueError("empty care set")
    mgr = f.bdd.manager
    mgr._maybe_maintain()
    node = _minimize(mgr, f.node, care.node, {})
    return Function(f.bdd, node)
