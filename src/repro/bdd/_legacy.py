"""Reference manager with the pre-iterative recursive kernels.

This module preserves, verbatim, the recursive Boolean kernels and the
single unbounded computed table the manager shipped with before the
iterative rewrite.  It exists for two reasons:

* ``benchmarks/run_bench.py`` measures the *before/after* speedup of
  the iterative kernels on the same interpreter and host, which is the
  only apples-to-apples way to track the perf trajectory in
  ``BENCH_*.json``.
* Differential tests drive both managers through the same operation
  sequences and assert identical node ids — the strongest equivalence
  oracle we have for the kernel rewrite.

Do not use it in production paths: it recurses (deep BDDs can hit the
interpreter recursion limit) and its computed table grows without
bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .function import Bdd
from .manager import (FALSE, TRUE, BddManager, _OP_AND, _OP_AND_EXISTS,
                      _OP_COMPOSE, _OP_EXISTS, _OP_FORALL, _OP_ITE,
                      _OP_NOT, _OP_OR, _OP_RESTRICT, _OP_XOR)

__all__ = ["LegacyBddManager", "LegacyBdd", "default_legacy_bdd"]


def _legacy_swap_unchecked(mgr: BddManager, level: int) -> int:
    """The pre-rewrite adjacent-level swap, verbatim.

    Every node creation goes through the public ``mgr.mk`` and every
    release through ``mgr._free_node``; this is the code path the
    before/after benchmark attributes to the seed.
    """
    u = mgr._level2var[level]
    v = mgr._level2var[level + 1]
    var_arr, low_arr, high_arr = mgr._var, mgr._low, mgr._high
    unodes = mgr._var_nodes[u]

    movers: List[int] = [n for n in unodes
                         if var_arr[low_arr[n]] == v
                         or var_arr[high_arr[n]] == v]
    for n in movers:
        del mgr._unique[(u, low_arr[n], high_arr[n])]
        unodes.discard(n)

    vnodes = mgr._var_nodes[v]
    pref = mgr._pref
    for n in movers:
        f0, f1 = low_arr[n], high_arr[n]
        if var_arr[f0] == v:
            f00, f01 = low_arr[f0], high_arr[f0]
        else:
            f00 = f01 = f0
        if var_arr[f1] == v:
            f10, f11 = low_arr[f1], high_arr[f1]
        else:
            f10 = f11 = f1
        g0 = mgr.mk(u, f00, f10)
        g1 = mgr.mk(u, f01, f11)
        key = (v, g0, g1)
        assert key not in mgr._unique, "swap produced duplicate node"
        var_arr[n] = v
        low_arr[n] = g0
        high_arr[n] = g1
        mgr._unique[key] = n
        vnodes.add(n)
        pref[g0] += 1
        pref[g1] += 1
        for child in (f0, f1):
            pref[child] -= 1
            if (child > TRUE and pref[child] == 0
                    and mgr._ref[child] == 0):
                mgr._free_node(child)

    mgr._level2var[level] = v
    mgr._level2var[level + 1] = u
    mgr._var2level[u] = level + 1
    mgr._var2level[v] = level
    return mgr._live_nodes


def _legacy_sift_one(mgr: BddManager, var: int, max_growth: float,
                     stall: int = 0) -> None:
    """The pre-rewrite per-variable sift walk, verbatim.

    Full span in both directions, abort only on the static
    ``max_growth`` blow-up bound — no stall cut (``stall`` is accepted
    for signature compatibility and ignored).
    """
    from .reorder import swap_adjacent_levels

    nvars = mgr.num_vars
    start = mgr._var2level[var]
    best_size = mgr._live_nodes
    best_level = start
    limit = int(best_size * max_growth) + 2

    def walk(level: int, stop: int, step: int) -> int:
        nonlocal best_size, best_level
        while level != stop:
            if step > 0:
                size = swap_adjacent_levels(mgr, level)
            else:
                size = swap_adjacent_levels(mgr, level - 1)
            level += step
            if size < best_size:
                best_size = size
                best_level = level
            if size > limit:
                break
        return level

    if start <= (nvars - 1) - start:
        level = walk(start, 0, -1)
        level = walk(level, nvars - 1, +1)
    else:
        level = walk(start, nvars - 1, +1)
        level = walk(level, 0, -1)
    while level < best_level:
        swap_adjacent_levels(mgr, level)
        level += 1
    while level > best_level:
        swap_adjacent_levels(mgr, level - 1)
        level -= 1


class LegacyBddManager(BddManager):
    """The historic recursive kernels on top of the current node store."""

    #: Pin the pre-rewrite sifting swap and per-variable walk (see
    #: module docstring).
    _swap_unchecked_impl = staticmethod(_legacy_swap_unchecked)
    _sift_one_impl = staticmethod(_legacy_sift_one)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # One unbounded computed table keyed by (op, operands...).
        self._cache: Dict[Tuple, int] = {}

    # -- computed-table plumbing (replaces the segmented table) --------

    def _sweep_cache(self, marked: bytearray) -> None:
        self._cache.clear()

    def clear_cache(self) -> None:
        self._cache.clear()

    def cache_stats(self) -> Dict:
        """Minimal stats: the legacy table never counted its traffic."""
        return {
            "ops": {},
            "total": {"hits": 0, "misses": 0, "evictions": 0,
                      "entries": len(self._cache), "hit_rate": 0.0},
        }

    # -- Boolean kernels (verbatim pre-rewrite implementations) --------

    def _and(self, f: int, g: int) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE or f == g:
            return f
        if f > g:
            f, g = g, f
        key = (_OP_AND, f, g)
        res = self._cache.get(key)
        if res is not None:
            return res
        var, f0, f1, g0, g1 = self._top_split(f, g)
        res = self.mk(var, self._and(f0, g0), self._and(f1, g1))
        self._cache[key] = res
        return res

    def _or(self, f: int, g: int) -> int:
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE or f == g:
            return f
        if f > g:
            f, g = g, f
        key = (_OP_OR, f, g)
        res = self._cache.get(key)
        if res is not None:
            return res
        var, f0, f1, g0, g1 = self._top_split(f, g)
        res = self.mk(var, self._or(f0, g0), self._or(f1, g1))
        self._cache[key] = res
        return res

    def _xor(self, f: int, g: int) -> int:
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self._not(g)
        if g == TRUE:
            return self._not(f)
        if f > g:
            f, g = g, f
        key = (_OP_XOR, f, g)
        res = self._cache.get(key)
        if res is not None:
            return res
        var, f0, f1, g0, g1 = self._top_split(f, g)
        res = self.mk(var, self._xor(f0, g0), self._xor(f1, g1))
        self._cache[key] = res
        return res

    def _not(self, f: int) -> int:
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        key = (_OP_NOT, f)
        res = self._cache.get(key)
        if res is not None:
            return res
        res = self.mk(self._var[f], self._not(self._low[f]),
                      self._not(self._high[f]))
        self._cache[key] = res
        return res

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self._not(f)
        if g == TRUE:
            return self._or(f, h)
        if g == FALSE:
            return self._and(self._not(f), h)
        if h == FALSE:
            return self._and(f, g)
        if h == TRUE:
            return self._or(self._not(f), g)
        if f == g:
            return self._or(f, h)
        if f == h:
            return self._and(f, g)
        key = (_OP_ITE, f, g, h)
        res = self._cache.get(key)
        if res is not None:
            return res
        n = self._budget_countdown
        if n is not None:
            if n > 0:
                self._budget_countdown = n - 1
            else:
                self._budget_poll("ite")
        level = min(self._node_level(f), self._node_level(g),
                    self._node_level(h))
        var = self._level2var[level]
        f0, f1 = self._cofactors_at(f, level)
        g0, g1 = self._cofactors_at(g, level)
        h0, h1 = self._cofactors_at(h, level)
        res = self.mk(var, self._ite(f0, g0, h0), self._ite(f1, g1, h1))
        self._cache[key] = res
        return res

    def _quantify(self, f: int, var_set: frozenset, op: int) -> int:
        if f <= TRUE:
            return f
        max_level = max(self._var2level[v] for v in var_set)
        if self._node_level(f) > max_level:
            return f
        key = (op, f, var_set)
        res = self._cache.get(key)
        if res is not None:
            return res
        n = self._budget_countdown
        if n is not None:
            if n > 0:
                self._budget_countdown = n - 1
            else:
                self._budget_poll("quantify")
        var = self._var[f]
        lo = self._quantify(self._low[f], var_set, op)
        hi = self._quantify(self._high[f], var_set, op)
        if var in var_set:
            if op == _OP_EXISTS:
                res = self._or(lo, hi)
            else:
                res = self._and(lo, hi)
        else:
            res = self.mk(var, lo, hi)
        self._cache[key] = res
        return res

    def _and_exists(self, f: int, g: int, var_set: frozenset) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE and g == TRUE:
            return TRUE
        if f == TRUE:
            return self._quantify(g, var_set, _OP_EXISTS)
        if g == TRUE or f == g:
            return self._quantify(f, var_set, _OP_EXISTS)
        if f > g:
            f, g = g, f
        key = (_OP_AND_EXISTS, f, g, var_set)
        res = self._cache.get(key)
        if res is not None:
            return res
        n = self._budget_countdown
        if n is not None:
            if n > 0:
                self._budget_countdown = n - 1
            else:
                self._budget_poll("and_exists")
        var, f0, f1, g0, g1 = self._top_split(f, g)
        if var in var_set:
            lo = self._and_exists(f0, g0, var_set)
            if lo == TRUE:
                res = TRUE
            else:
                res = self._or(lo, self._and_exists(f1, g1, var_set))
        else:
            res = self.mk(var, self._and_exists(f0, g0, var_set),
                          self._and_exists(f1, g1, var_set))
        self._cache[key] = res
        return res

    def restrict(self, f: int,
                 assignment: Dict[Union[str, int], bool]) -> int:
        self._maybe_maintain()
        fixed = {self.var_id(v): bool(val) for v, val in assignment.items()}
        if not fixed:
            return f
        key = (_OP_RESTRICT, f, tuple(sorted(fixed.items())))
        res = self._cache.get(key)
        if res is not None:
            return res
        res = self._restrict(f, fixed)
        self._cache[key] = res
        return res

    def _restrict(self, f: int, fixed: Dict[int, bool]) -> int:
        if f <= TRUE:
            return f
        key = (_OP_RESTRICT, f, tuple(sorted(fixed.items())))
        res = self._cache.get(key)
        if res is not None:
            return res
        var = self._var[f]
        if var in fixed:
            res = self._restrict(self._high[f] if fixed[var]
                                 else self._low[f], fixed)
        else:
            res = self.mk(var, self._restrict(self._low[f], fixed),
                          self._restrict(self._high[f], fixed))
        self._cache[key] = res
        return res

    def compose(self, f: int,
                substitution: Dict[Union[str, int], int]) -> int:
        self._maybe_maintain()
        subst = {self.var_id(v): g for v, g in substitution.items()}
        if not subst:
            return f
        subst_key = tuple(sorted(subst.items()))
        return self._compose(f, subst, subst_key)

    def _compose(self, f: int, subst: Dict[int, int], subst_key: Tuple)\
            -> int:
        if f <= TRUE:
            return f
        key = (_OP_COMPOSE, f, subst_key)
        res = self._cache.get(key)
        if res is not None:
            return res
        var = self._var[f]
        lo = self._compose(self._low[f], subst, subst_key)
        hi = self._compose(self._high[f], subst, subst_key)
        g = subst.get(var)
        if g is None:
            g = self.mk(var, FALSE, TRUE)
        res = self._ite(g, hi, lo)
        self._cache[key] = res
        return res

    def sat_count(self, f: int, nvars: Optional[int] = None) -> int:
        """The historic recursive model counter."""
        if nvars is None:
            nvars = self.num_vars
        if nvars < self.num_vars:
            raise ValueError("nvars smaller than the declared variable count")
        memo: Dict[int, int] = {}

        def count(u: int) -> int:
            if u == FALSE:
                return 0
            if u == TRUE:
                return 1
            base = memo.get(u)
            if base is not None:
                return base
            ulvl = self._node_level(u)
            lo, hi = self._low[u], self._high[u]
            lo_gap = (min(self._node_level(lo), nvars)) - ulvl - 1
            hi_gap = (min(self._node_level(hi), nvars)) - ulvl - 1
            base = (count(lo) << lo_gap) + (count(hi) << hi_gap)
            memo[u] = base
            return base

        top_gap = min(self._node_level(f), nvars)
        return count(f) << top_gap


class LegacyBdd(Bdd):
    """A :class:`Bdd` running on the recursive reference manager."""

    _manager_class = LegacyBddManager


def default_legacy_bdd() -> LegacyBdd:
    """Legacy twin of :func:`repro.bdd.function.default_bdd`."""
    return LegacyBdd(auto_reorder=True, initial_reorder_threshold=30_000)
