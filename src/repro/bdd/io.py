"""Serialization of BDDs to a simple text format.

The format stores the variable order, the shared node list in
topological order, and named roots.  Loading rebuilds the functions in
*any* manager via ITE, so the stored order is a hint, not a contract —
functions survive a round-trip into a manager with a different order.

Format::

    bdd 1
    vars a b c
    node 2 a 0 1        # id var low high   (0/1 are the terminals)
    node 3 b 2 1
    root f 3
"""

from __future__ import annotations

import io
from typing import Dict, List, TextIO, Union

from .function import Bdd, Function
from .manager import TRUE

__all__ = ["dump_functions", "dumps_functions", "load_functions",
           "loads_functions"]


def dumps_functions(functions: Dict[str, Function]) -> str:
    """Serialize a dict of named functions sharing one manager."""
    if not functions:
        raise ValueError("nothing to serialize")
    managers = {f.bdd for f in functions.values()}
    if len(managers) != 1:
        raise ValueError("functions must share one manager")
    bdd = next(iter(managers))
    mgr = bdd.manager

    for name in functions:
        if any(ch.isspace() for ch in name):
            raise ValueError("root name %r contains whitespace" % name)

    order: List[int] = []
    seen = set()
    stack = [(f.node, False) for f in functions.values()]
    while stack:
        node, done = stack.pop()
        if done:
            order.append(node)
            continue
        if node in seen or node <= TRUE:
            continue
        seen.add(node)
        stack.append((node, True))
        stack.append((mgr.node_high(node), False))
        stack.append((mgr.node_low(node), False))

    lines = ["bdd 1", "vars " + " ".join(bdd.var_order)]
    for node in order:
        lines.append("node %d %s %d %d" % (
            node, mgr.var_name(mgr.node_var(node)),
            mgr.node_low(node), mgr.node_high(node)))
    for name, function in functions.items():
        lines.append("root %s %d" % (name, function.node))
    return "\n".join(lines) + "\n"


def dump_functions(functions: Dict[str, Function], path: str) -> None:
    """Serialize to a file."""
    with open(path, "w") as handle:
        handle.write(dumps_functions(functions))


def loads_functions(bdd: Bdd, text: str) -> Dict[str, Function]:
    """Rebuild named functions from text into ``bdd``.

    Missing variables are declared (appended to the current order); the
    functions are semantically identical to the originals regardless of
    the target manager's variable order.
    """
    return load_functions(bdd, io.StringIO(text))


def load_functions(bdd: Bdd,
                   source: Union[str, TextIO]) -> Dict[str, Function]:
    """Load serialized functions from a path or open file."""
    if isinstance(source, str):
        with open(source) as handle:
            return load_functions(bdd, handle)

    built: Dict[int, Function] = {0: bdd.false, 1: bdd.true}
    roots: Dict[str, Function] = {}
    header_seen = False
    for raw in source:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        keyword = tokens[0]
        if keyword == "bdd":
            if tokens[1] != "1":
                raise ValueError("unsupported format version %s"
                                 % tokens[1])
            header_seen = True
        elif keyword == "vars":
            for name in tokens[1:]:
                if not bdd.has_var(name):
                    bdd.add_var(name)
        elif keyword == "node":
            if len(tokens) != 5:
                raise ValueError("malformed node line: %r" % line)
            node_id = int(tokens[1])
            var_name = tokens[2]
            low = int(tokens[3])
            high = int(tokens[4])
            if not bdd.has_var(var_name):
                bdd.add_var(var_name)
            try:
                low_f, high_f = built[low], built[high]
            except KeyError:
                raise ValueError("node %d references unknown child"
                                 % node_id) from None
            built[node_id] = bdd.var(var_name).ite(high_f, low_f)
        elif keyword == "root":
            try:
                roots[tokens[1]] = built[int(tokens[2])]
            except KeyError:
                raise ValueError("root %r references unknown node"
                                 % tokens[1]) from None
        else:
            raise ValueError("unknown keyword %r" % keyword)
    if not header_seen:
        raise ValueError("missing 'bdd 1' header")
    return roots
