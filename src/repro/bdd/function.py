"""User-facing BDD handle with operator overloading.

A :class:`Function` pins its node in the manager (external reference
count) for as long as the wrapper is alive, so manager garbage collection
never frees user-visible results.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Union

from .cache import CacheConfig
from .manager import FALSE, TRUE, BddManager

__all__ = ["Function", "Bdd", "default_bdd"]


def default_bdd() -> "Bdd":
    """Manager configured like the paper's experiments: dynamic sifting on.

    The checks create one of these when the caller does not supply a
    manager; the reorder threshold is tuned for pure-Python throughput.
    """
    return Bdd(auto_reorder=True, initial_reorder_threshold=30_000)


class Function:
    """A Boolean function handle bound to a :class:`BddManager`.

    Supports ``&``, ``|``, ``^``, ``~``, ``-`` (difference), comparison
    with ``==`` (semantic equality — same canonical node), and the
    quantifier / composition helpers used throughout the checker.
    """

    __slots__ = ("bdd", "node", "__weakref__")

    def __init__(self, bdd: "Bdd", node: int) -> None:
        self.bdd = bdd
        self.node = node
        bdd.manager.incref(node)

    def __del__(self) -> None:
        try:
            self.bdd.manager.decref(self.node)
        except Exception:  # interpreter shutdown; nothing to release
            pass

    # -- factory ------------------------------------------------------

    def _wrap(self, node: int) -> "Function":
        return Function(self.bdd, node)

    def _node_of(self, other: Union["Function", bool]) -> int:
        if isinstance(other, Function):
            if other.bdd is not self.bdd:
                raise ValueError("mixing functions from different managers")
            return other.node
        if other is True:
            return TRUE
        if other is False:
            return FALSE
        raise TypeError("expected Function or bool, got %r" % (other,))

    # -- boolean structure --------------------------------------------

    @property
    def is_true(self) -> bool:
        """True iff this is the constant-1 function."""
        return self.node == TRUE

    @property
    def is_false(self) -> bool:
        """True iff this is the constant-0 function."""
        return self.node == FALSE

    @property
    def is_constant(self) -> bool:
        """True for either constant function."""
        return self.node <= TRUE

    def __bool__(self) -> bool:
        raise TypeError(
            "Function truth value is ambiguous; use .is_true / .is_false"
        )

    # -- operators ------------------------------------------------------

    def __and__(self, other: Union["Function", bool]) -> "Function":
        m = self.bdd.manager
        return self._wrap(m.apply_and(self.node, self._node_of(other)))

    __rand__ = __and__

    def __or__(self, other: Union["Function", bool]) -> "Function":
        m = self.bdd.manager
        return self._wrap(m.apply_or(self.node, self._node_of(other)))

    __ror__ = __or__

    def __xor__(self, other: Union["Function", bool]) -> "Function":
        m = self.bdd.manager
        return self._wrap(m.apply_xor(self.node, self._node_of(other)))

    __rxor__ = __xor__

    def __invert__(self) -> "Function":
        return self._wrap(self.bdd.manager.apply_not(self.node))

    def __sub__(self, other: Union["Function", bool]) -> "Function":
        """Set difference ``self ∧ ¬other``."""
        m = self.bdd.manager
        return self._wrap(
            m.apply_and(self.node, m.apply_not(self._node_of(other))))

    def implies(self, other: Union["Function", bool]) -> "Function":
        """Implication ``self → other``."""
        m = self.bdd.manager
        return self._wrap(m.apply_implies(self.node, self._node_of(other)))

    def equiv(self, other: Union["Function", bool]) -> "Function":
        """Equivalence ``self ↔ other``."""
        m = self.bdd.manager
        return self._wrap(m.apply_xnor(self.node, self._node_of(other)))

    def ite(self, then_: "Function", else_: "Function") -> "Function":
        """``if self then then_ else else_``."""
        m = self.bdd.manager
        return self._wrap(m.apply_ite(self.node, self._node_of(then_),
                                      self._node_of(else_)))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, bool):
            return self.node == (TRUE if other else FALSE)
        if not isinstance(other, Function):
            return NotImplemented
        return self.bdd is other.bdd and self.node == other.node

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((id(self.bdd), self.node))

    # -- quantifiers / substitution -------------------------------------

    def exists(self, variables: Iterable[Union[str, int]]) -> "Function":
        """``∃ variables . self``."""
        return self._wrap(self.bdd.manager.exists(variables, self.node))

    def forall(self, variables: Iterable[Union[str, int]]) -> "Function":
        """``∀ variables . self``."""
        return self._wrap(self.bdd.manager.forall(variables, self.node))

    def and_exists(self, other: "Function",
                   variables: Iterable[Union[str, int]]) -> "Function":
        """``∃ variables . self ∧ other`` (relational product)."""
        return self._wrap(self.bdd.manager.and_exists(
            variables, self.node, self._node_of(other)))

    def restrict(self,
                 assignment: Dict[Union[str, int], bool]) -> "Function":
        """Cofactor under a partial assignment."""
        return self._wrap(self.bdd.manager.restrict(self.node, assignment))

    def compose(self, substitution: Dict[Union[str, int], "Function"])\
            -> "Function":
        """Simultaneous substitution of functions for variables."""
        subst = {v: self._node_of(g) for v, g in substitution.items()}
        return self._wrap(self.bdd.manager.compose(self.node, subst))

    # -- inspection ------------------------------------------------------

    def evaluate(self, assignment: Dict[Union[str, int], bool]) -> bool:
        """Value of the function under a (total-on-support) assignment."""
        return self.bdd.manager.evaluate(self.node, assignment)

    __call__ = evaluate

    def sat_one(self) -> Optional[Dict[str, bool]]:
        """One satisfying assignment (``None`` if unsatisfiable)."""
        return self.bdd.manager.sat_one(self.node)

    def sat_count(self, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments."""
        return self.bdd.manager.sat_count(self.node, nvars)

    def sat_iter(self) -> Iterator[Dict[str, bool]]:
        """All satisfying cubes as partial assignments."""
        return self.bdd.manager.sat_iter(self.node)

    def support(self) -> List[str]:
        """Variables the function depends on (top-down order)."""
        return self.bdd.manager.support(self.node)

    def size(self) -> int:
        """Node count of this BDD, terminals included."""
        return self.bdd.manager.size(self.node)

    def __repr__(self) -> str:
        if self.node == TRUE:
            return "<Function TRUE>"
        if self.node == FALSE:
            return "<Function FALSE>"
        return "<Function node=%d size=%d support=%s>" % (
            self.node, self.size(), ",".join(self.support()))


class Bdd:
    """High-level BDD interface: declares variables, hands out Functions.

    This is the object the rest of the library works with; the low-level
    :class:`BddManager` stays an implementation detail.
    """

    #: Manager implementation to instantiate; subclasses (e.g. the
    #: recursive reference manager in :mod:`repro.bdd._legacy`) override
    #: this to swap kernels without touching the Function layer.
    _manager_class = BddManager

    def __init__(self, auto_reorder: bool = False,
                 initial_reorder_threshold: int = 50_000,
                 debug_checks: "Optional[bool]" = None,
                 cache_config: "Optional[CacheConfig]" = None) -> None:
        self.manager = self._manager_class(
            auto_reorder=auto_reorder,
            initial_reorder_threshold=initial_reorder_threshold,
            debug_checks=debug_checks,
            cache_config=cache_config)

    # -- constants -----------------------------------------------------

    @property
    def true(self) -> Function:
        """Constant-1 function."""
        return Function(self, TRUE)

    @property
    def false(self) -> Function:
        """Constant-0 function."""
        return Function(self, FALSE)

    def constant(self, value: bool) -> Function:
        """Constant function from a Python bool."""
        return self.true if value else self.false

    # -- variables -----------------------------------------------------

    def add_var(self, name: Optional[str] = None) -> Function:
        """Declare a fresh variable and return its projection function."""
        var = self.manager.add_var(name)
        return Function(self, self.manager.var_node(var))

    def add_vars(self, names: Iterable[str]) -> List[Function]:
        """Declare several variables at once."""
        return [self.add_var(n) for n in names]

    def var(self, name: Union[str, int]) -> Function:
        """Projection function of an existing variable."""
        return Function(self, self.manager.var_node(name))

    def has_var(self, name: str) -> bool:
        """Whether a variable of this name was declared."""
        return name in self.manager._name_to_var

    @property
    def var_order(self) -> List[str]:
        """Current variable order, top to bottom."""
        return self.manager.var_order

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return self.manager.num_vars

    # -- bulk helpers ----------------------------------------------------

    def cube(self, assignment: Dict[Union[str, int], bool]) -> Function:
        """Conjunction of literals from a partial assignment."""
        acc = self.true
        for name, val in assignment.items():
            lit = self.var(name)
            acc = acc & (lit if val else ~lit)
        return acc

    def conj(self, functions: Iterable[Function]) -> Function:
        """Conjunction of many functions (balanced reduction)."""
        items = list(functions)
        if not items:
            return self.true
        while len(items) > 1:
            items = [items[i] & items[i + 1] if i + 1 < len(items)
                     else items[i] for i in range(0, len(items), 2)]
        return items[0]

    def disj(self, functions: Iterable[Function]) -> Function:
        """Disjunction of many functions (balanced reduction)."""
        items = list(functions)
        if not items:
            return self.false
        while len(items) > 1:
            items = [items[i] | items[i + 1] if i + 1 < len(items)
                     else items[i] for i in range(0, len(items), 2)]
        return items[0]

    # -- maintenance -----------------------------------------------------

    def set_budget(self, budget) -> None:
        """Attach a :class:`repro.resilience.budget.Budget` (or ``None``).

        Overruns raise ``BudgetExceededError`` from inside the symbolic
        operations; the manager stays consistent and usable.
        """
        self.manager.set_budget(budget)

    @property
    def budget(self):
        """The attached resource budget, if any."""
        return self.manager.budget

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer` (or ``None`` to detach).

        The manager then emits GC/budget-poll instants and one span per
        reordering pass into the tracer; see ``docs/observability.md``.
        """
        self.manager.set_tracer(tracer)

    @property
    def tracer(self):
        """The attached observability tracer, if any."""
        return self.manager._tracer

    def collect_garbage(self) -> int:
        """Free nodes not reachable from any live Function."""
        return self.manager.collect_garbage()

    def cache_stats(self) -> Dict:
        """Computed-table traffic (see :meth:`BddManager.cache_stats`)."""
        return self.manager.cache_stats()

    def clear_cache(self) -> None:
        """Drop every computed-table entry."""
        self.manager.clear_cache()

    def reorder(self) -> None:
        """Run one full sifting pass over all variables."""
        from .reorder import sift

        self.manager.collect_garbage()
        sift(self.manager)
        self.manager.n_reorderings += 1

    def __len__(self) -> int:
        """Live node count in the shared store."""
        return len(self.manager)

    @property
    def peak_live_nodes(self) -> int:
        """High-water mark of the live node count."""
        return self.manager.peak_live_nodes

    def __repr__(self) -> str:
        return "<Bdd vars=%d nodes=%d>" % (self.num_vars, len(self))
