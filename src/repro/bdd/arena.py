"""Array-backed (struct-of-arrays) BDD arena over numpy int arrays.

:class:`ArenaManager` stores nodes as ``(var, lo, hi)`` rows in
preallocated numpy ``int32`` arrays, replaces the dict unique table
with an open-addressing ``int64`` hash map (linear probing,
power-of-two capacity, tombstone deletes, tombstone-free vectorized
rebuild on resize), and replaces the per-op dict computed-table
segments with direct-mapped lossy ``int64``/``int32`` slot arrays in
the spirit of CUDD's computed table.  No per-node Python objects exist
anywhere on the hot path; user code still handles plain integer node
ids through the unchanged :class:`repro.bdd.function.Function` layer.

Why this layout wins
--------------------
Measured on CPython, per-element numpy indexing is ~3.5x *slower* than
list indexing, so a naive "numpy everywhere" port would regress.  The
arena therefore splits its accesses:

* Scalar hot loops (the apply kernels, ``mk``) read and write the node
  arrays through **memoryviews over the numpy buffers** — ~2x cheaper
  than numpy scalar indexing, write-through to the same memory.
* Bulk phases run **vectorized** over the whole arrays: garbage
  collection (mark via frontier sweeps, parent counts via
  ``np.bincount``, tombstone-free unique-table rebuild) and sifting
  level swaps (mover discovery by array compare, grandchild gathers
  with ``np.where``, batched parent-count updates with ``np.add.at``).
  Profiling the dict manager on the paper's ladder shows adjacent
  level swaps dominate (~70% of C499 wall time), which is exactly the
  per-level bulk work an array layout vectorizes well.

The dict-based :class:`repro.bdd.manager.BddManager` stays the
differential oracle — the hypothesis suite drives both managers
through identical op sequences and asserts verdict and node-count
equality (see ``tests/bdd/test_arena_differential.py``).

numpy is a hard dependency of *this backend only*: constructing an
:class:`ArenaManager` without numpy raises
:class:`ArenaUnavailableError` with a structured diagnostic instead of
an ImportError traceback; the dict backend never imports numpy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

try:  # numpy is optional at the package level (see ArenaUnavailableError)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from .cache import CacheConfig
from .function import Bdd
from .manager import (FALSE, TRUE, BddManager, _OP_EXISTS, _OP_FORALL,
                      _TERMINAL_VAR, _SEGMENT_SPECS)

__all__ = ["ArenaManager", "ArenaBdd", "ArenaUnavailableError",
           "ArenaCapacityError", "arena_available", "default_arena_bdd"]

# Fibonacci-style multiplicative hash constants (64-bit golden ratio /
# a second odd constant for two-word keys).
_MULT = 0x9E3779B97F4A7C15
_MULT2 = 0xC2B2AE3D27D4EB4F
_U64 = (1 << 64) - 1

#: Packed unique-table key layout: ``(var << 52) | (low << 26) | high``.
_NODE_BITS = 26
_VAR_SHIFT = 2 * _NODE_BITS
_NODE_MASK = (1 << _NODE_BITS) - 1
_MAX_NODES = 1 << _NODE_BITS
_MAX_VARS = 1 << 11

#: Unique-table sentinels (packed keys are always >= 0).
_EMPTY = -1
_TOMB = -2

_U_MIN_CAP = 1 << 10


def arena_available() -> bool:
    """Whether the arena backend can run (numpy importable)."""
    return _np is not None


class ArenaUnavailableError(RuntimeError):
    """Arena backend requested but numpy is not importable.

    Carries a machine-readable ``diagnostic`` dict so front-ends (the
    CLI, the service) can report the failure structurally instead of
    leaking an ImportError traceback.
    """

    def __init__(self) -> None:
        self.diagnostic = {
            "error": "arena-backend-unavailable",
            "reason": "numpy is not importable in this environment",
            "hint": ("install numpy, or select the pure-Python dict "
                     "backend (backend='dict' / REPRO_BDD_BACKEND=dict)"),
        }
        super().__init__(
            "arena backend unavailable: numpy is not importable "
            "(install numpy or use backend='dict')")


class ArenaCapacityError(RuntimeError):
    """A hard arena limit (node ids or variable ids) was exceeded."""


def _next_pow2(n: int) -> int:
    return 1 << max(1, (n - 1).bit_length())


def _sort_dedup_counts(arr: "_np.ndarray"):
    """``(unique values, multiplicities)`` of an int array, via one
    sort.  ``np.unique`` buys the same answer but through a hashing
    path whose fixed overhead dwarfs these sub-thousand-element swap
    batches — this helper is why a sifting pass stays in microseconds.
    """
    np = _np
    ks = np.sort(arr)
    flag = np.empty(ks.size, np.bool_)
    flag[0] = True
    np.not_equal(ks[1:], ks[:-1], out=flag[1:])
    idx = np.nonzero(flag)[0]
    counts = np.diff(idx, append=ks.size)
    return ks[idx], counts


def _arena_swap_unchecked(mgr: "ArenaManager", level: int) -> int:
    """Vectorized adjacent-level swap (``_swap_unchecked_impl`` hook).

    Semantically identical to :func:`repro.bdd.reorder._swap_unchecked`
    — every node id keeps its Boolean meaning — but the per-mover work
    is batched: movers are discovered by an array compare instead of a
    per-variable Python set, grandchild cofactors are gathered with
    ``np.where``, parent-count updates come from sort-based
    multiplicity counts (:func:`_sort_dedup_counts`), the dead-child
    cascade runs as vectorized rounds, and every unique-table
    find-or-create/insert/delete goes through the batch probe helpers
    (``_u_lookup_batch`` and friends), so the Python work per swap is
    a fixed number of numpy calls, not a loop over movers.

    The live-node count after the swap matches the scalar swap exactly;
    the transient peak may differ (creations are batched before
    releases) which only affects ``peak_live_nodes`` high-watermarks.
    """
    np = _np
    u = mgr._level2var[level]
    v = mgr._level2var[level + 1]
    n = mgr._n_nodes
    var_s = mgr._np_var[:n]
    low_s = mgr._np_low[:n]
    high_s = mgr._np_high[:n]

    u_idx = np.nonzero(var_s == u)[0]
    movers = u_idx[(var_s[low_s[u_idx]] == v) | (var_s[high_s[u_idx]] == v)] \
        if u_idx.size else u_idx
    if movers.size == 0:
        mgr._level2var[level] = v
        mgr._level2var[level + 1] = u
        mgr._var2level[u] = level + 1
        mgr._var2level[v] = level
        return mgr._live_nodes

    m = int(movers.size)
    f0 = low_s[movers].copy()
    f1 = high_s[movers].copy()
    f0_at_v = var_s[f0] == v
    f1_at_v = var_s[f1] == v
    f00 = np.where(f0_at_v, low_s[f0], f0)
    f01 = np.where(f0_at_v, high_s[f0], f0)
    f10 = np.where(f1_at_v, low_s[f1], f1)
    f11 = np.where(f1_at_v, high_s[f1], f1)

    # Growth may relocate the node arrays; reserve the worst case (two
    # fresh grandchildren per mover) up front, then rebind every view.
    mgr._reserve(mgr._n_nodes + 2 * m)
    var_np = mgr._np_var
    low_np = mgr._np_low
    high_np = mgr._np_high
    ref_np = mgr._np_ref
    pref_np = mgr._np_pref
    vcount = mgr._vcount
    free = mgr._free
    debug = mgr.debug_checks

    # Phase 1: take movers out of the unique table so find-or-create
    # below can only ever hit nodes that keep their identity
    # (non-movers of u; grandchild pairs sit strictly below v).
    base = u << _VAR_SHIFT
    mgr._u_delete_batch(base | (f0.astype(np.int64) << _NODE_BITS)
                        | f1.astype(np.int64))

    # Phase 2: find-or-create the grandchild pairs g0 = (u, f00, f10)
    # and g1 = (u, f01, f11), deduplicated across the whole batch.
    a = np.concatenate((f00, f01)).astype(np.int64)
    b = np.concatenate((f10, f11)).astype(np.int64)
    g = a.copy()
    need = np.nonzero(a != b)[0]
    created = 0
    if need.size:
        keys = base | (a[need] << _NODE_BITS) | b[need]
        # Sorted unique + inverse without np.unique's hashing overhead
        # (uniq_keys ascending, exactly as np.unique would order them,
        # so node-id allocation order is unchanged).
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        flag = np.empty(sk.size, np.bool_)
        flag[0] = True
        np.not_equal(sk[1:], sk[:-1], out=flag[1:])
        uniq_keys = sk[flag]
        inverse = np.empty(keys.size, np.int64)
        inverse[order] = np.cumsum(flag) - 1
        results = mgr._u_lookup_batch(uniq_keys)
        miss = np.nonzero(results < 0)[0]
        if miss.size:
            created = int(miss.size)
            # Node ids exactly as sequential free.pop()-then-alloc
            # would have handed them out, so arena and dict managers
            # stay id-identical through reordering.
            take = min(len(free), created)
            ids = free[len(free) - take:][::-1]
            del free[len(free) - take:]
            if created > take:
                start = mgr._n_nodes
                ids.extend(range(start, start + created - take))
                mgr._n_nodes = start + created - take
            fresh = np.asarray(ids, np.int64)
            ka = (uniq_keys[miss] >> _NODE_BITS) & _NODE_MASK
            kb = uniq_keys[miss] & _NODE_MASK
            var_np[fresh] = u
            low_np[fresh] = ka
            high_np[fresh] = kb
            ref_np[fresh] = 0
            pref_np[fresh] = 0
            kid, cnt = _sort_dedup_counts(np.concatenate((ka, kb)))
            pref_np[kid] += cnt.astype(np.int32)
            mgr._u_insert_batch(uniq_keys[miss], fresh)
            vcount[u] += created
            results[miss] = fresh
        g[need] = results[inverse]
    g0 = g[:m]
    g1 = g[m:]

    live = mgr._live_nodes + created
    if live > mgr.peak_live_nodes:
        mgr.peak_live_nodes = live

    # Phase 3: rewire the movers in place — they now test v first.
    var_np[movers] = v
    low_np[movers] = g0
    high_np[movers] = g1
    vcount[u] -= m
    vcount[v] += m
    new_keys = (v << _VAR_SHIFT) | (g0 << _NODE_BITS) | g1
    if debug:
        assert (mgr._u_lookup_batch(new_keys) < 0).all(), \
            "swap produced duplicate node"
    mgr._u_insert_batch(new_keys, movers.astype(np.int64))
    grand, gcnt = _sort_dedup_counts(np.concatenate((g0, g1)))
    pref_np[grand] += gcnt.astype(np.int32)

    # Phase 4: release the old children and cascade into dead subgraphs.
    cand, ccnt = _sort_dedup_counts(np.concatenate((f0, f1)))
    pref_np[cand] -= ccnt.astype(np.int32)
    while cand.size:
        cand = cand[cand > TRUE]
        if not cand.size:
            break
        dead = cand[(pref_np[cand] == 0) & (ref_np[cand] == 0)
                    & (var_np[cand] >= 0)]
        if not dead.size:
            break
        dvar = var_np[dead].astype(np.int64)
        dlow = low_np[dead].astype(np.int64)
        dhigh = high_np[dead].astype(np.int64)
        mgr._u_delete_batch((dvar << _VAR_SHIFT)
                            | (dlow << _NODE_BITS) | dhigh)
        for w in dvar.tolist():
            vcount[w] -= 1
        var_np[dead] = _TERMINAL_VAR
        free.extend(dead.tolist())
        live -= int(dead.size)
        cand, ccnt = _sort_dedup_counts(np.concatenate((dlow, dhigh)))
        pref_np[cand] -= ccnt.astype(np.int32)

    mgr._live_nodes = live
    mgr._level2var[level] = v
    mgr._level2var[level + 1] = u
    mgr._var2level[u] = level + 1
    mgr._var2level[v] = level
    return live


class ArenaManager(BddManager):
    """BDD manager over preallocated numpy arrays (no per-node objects).

    Drop-in :class:`BddManager` subclass: the public API, budget
    governance, tracer hooks, fault-injection contract (kernels route
    node creation through ``self.mk`` so an instance-patched ``mk``
    still fires) and the ``REPRO_DEBUG`` invariant sanitizer all behave
    identically.  Differences are representation only:

    * nodes: ``int32`` struct-of-arrays rows accessed through
      memoryviews (``_var`` / ``_low`` / ``_high`` / ``_ref`` /
      ``_pref`` keep their names so cold inherited methods work
      unchanged);
    * unique table: open-addressing packed-``int64`` keys, linear
      probing, tombstones, vectorized tombstone-free rebuild on resize
      (and on every GC);
    * computed table: direct-mapped per-op slot arrays — a store
      overwrites whatever lived in the slot (lossy, like CUDD), so
      there is no dict churn and clearing is an array fill.

    Raises :class:`ArenaUnavailableError` if numpy is missing.
    """

    _swap_unchecked_impl = staticmethod(_arena_swap_unchecked)

    def __init__(self, auto_reorder: bool = False,
                 initial_reorder_threshold: int = 50_000,
                 debug_checks: Optional[bool] = None,
                 cache_config: Optional[CacheConfig] = None) -> None:
        if _np is None:
            raise ArenaUnavailableError()
        super().__init__(auto_reorder=auto_reorder,
                         initial_reorder_threshold=initial_reorder_threshold,
                         debug_checks=debug_checks,
                         cache_config=cache_config)
        # --- node arena -------------------------------------------------
        cap = 1 << 13
        self._node_cap = cap
        self._np_var = _np.full(cap, _TERMINAL_VAR, _np.int32)
        self._np_low = _np.zeros(cap, _np.int32)
        self._np_high = _np.zeros(cap, _np.int32)
        self._np_ref = _np.zeros(cap, _np.int32)
        self._np_pref = _np.zeros(cap, _np.int32)
        self._np_low[1] = 1
        self._np_high[1] = 1
        self._np_ref[0] = self._np_ref[1] = 1
        self._n_nodes = 2
        self._bind_node_views()
        # Per-variable live-node counts (replaces the dict manager's
        # _var_nodes sets, which cost one set.add/discard per mk/free).
        self._vcount: List[int] = []
        # The dict structures of the parent are dead here; poison them
        # so accidental use fails fast instead of corrupting silently.
        self._unique = None  # type: ignore[assignment]

        # --- unique table ----------------------------------------------
        self._u_resizes = 0
        self._u_rebuilds = 0
        self._build_unique(_np.empty(0, _np.int64),
                           _np.empty(0, _np.int64), _U_MIN_CAP)

        # --- computed tables (direct-mapped) ----------------------------
        limit = self.cache_config.entry_limit
        ccap = _next_pow2(min(limit, 1 << 16))
        self._c_cap = ccap
        self._cshift = 64 - ccap.bit_length() + 1
        self._seg_nps: Dict[str, Tuple] = {}
        for name, cattr, _sattr, kind in _SEGMENT_SPECS:
            setattr(self, cattr, None)  # poison the parent's dict segment
            k1 = _np.full(ccap, _EMPTY, _np.int64)
            k2 = _np.zeros(ccap, _np.int64) if kind in ("tri", "ctx2") \
                else None
            val = _np.zeros(ccap, _np.int32)
            self._seg_nps[name] = (k1, k2, val, kind)
        self._ck_and, _, self._cv_and = self._seg_views("and")
        self._ck_or, _, self._cv_or = self._seg_views("or")
        self._ck_xor, _, self._cv_xor = self._seg_views("xor")
        self._ck_not, _, self._cv_not = self._seg_views("not")
        self._ck1_ite, self._ck2_ite, self._cv_ite = self._seg_views("ite")
        self._ck_exists, _, self._cv_exists = self._seg_views("exists")
        self._ck_forall, _, self._cv_forall = self._seg_views("forall")
        self._ck_compose, _, self._cv_compose = self._seg_views("compose")
        self._ck_restrict, _, self._cv_restrict = self._seg_views("restrict")
        self._ck1_andex, self._ck2_andex, self._cv_andex = \
            self._seg_views("and_exists")

    # ------------------------------------------------------------------
    # Storage plumbing
    # ------------------------------------------------------------------

    def _seg_views(self, name: str):
        k1, k2, val, _kind = self._seg_nps[name]
        return k1.data, (None if k2 is None else k2.data), val.data

    def _bind_node_views(self) -> None:
        self._var = self._np_var.data
        self._low = self._np_low.data
        self._high = self._np_high.data
        self._ref = self._np_ref.data
        self._pref = self._np_pref.data

    def _reserve(self, need: int) -> None:
        """Grow the node arrays to hold at least ``need`` rows."""
        if need <= self._node_cap:
            return
        new_cap = _next_pow2(need)
        if new_cap > _MAX_NODES:
            raise ArenaCapacityError(
                "arena node limit exceeded (%d > %d); the packed "
                "unique-table key holds %d-bit node ids"
                % (need, _MAX_NODES, _NODE_BITS))
        n = self._n_nodes
        for attr, fill in (("_np_var", _TERMINAL_VAR), ("_np_low", 0),
                           ("_np_high", 0), ("_np_ref", 0),
                           ("_np_pref", 0)):
            old = getattr(self, attr)
            new = _np.full(new_cap, fill, _np.int32)
            new[:n] = old[:n]
            setattr(self, attr, new)
        self._node_cap = new_cap
        self._bind_node_views()

    def _alloc_node(self) -> int:
        """Fresh node id off the high-water mark (grows the arrays)."""
        node = self._n_nodes
        if node >= self._node_cap:
            self._reserve(node + 1)
        self._n_nodes = node + 1
        return node

    def add_var(self, name: Optional[str] = None) -> int:
        if len(self._var_names) >= _MAX_VARS:
            raise ArenaCapacityError(
                "arena variable limit exceeded (%d); the packed "
                "unique-table key holds %d variables"
                % (_MAX_VARS, _MAX_VARS))
        var = super().add_var(name)
        self._vcount.append(0)
        return var

    def var_node_counts(self) -> List[int]:
        return list(self._vcount)

    # ------------------------------------------------------------------
    # Open-addressing unique table
    # ------------------------------------------------------------------

    def _build_unique(self, keys, vals, cap: int) -> None:
        """Vectorized tombstone-free (re)build at capacity ``cap``."""
        np = _np
        uk = np.full(cap, _EMPTY, np.int64)
        uv = np.zeros(cap, np.int32)
        shift = 64 - cap.bit_length() + 1
        mask = cap - 1
        scratch = np.empty(cap, np.int64)
        if keys.size:
            h = ((keys.astype(np.uint64) * np.uint64(_MULT))
                 >> np.uint64(shift)).astype(np.int64)
            pending = np.arange(keys.size)
            while pending.size:
                slots = h[pending]
                # Reversed fancy-store: the lowest-index claimant of
                # each contested slot lands last and wins the round.
                scratch[slots[::-1]] = pending[::-1]
                cand = pending[scratch[slots] == pending]
                slot_c = h[cand]
                ok = uk[slot_c] == _EMPTY
                uk[slot_c[ok]] = keys[cand[ok]]
                uv[slot_c[ok]] = vals[cand[ok]]
                placed = uk[h[pending]] == keys[pending]
                pending = pending[~placed]
                h[pending] = (h[pending] + 1) & mask
        self._np_uk = uk
        self._np_uv = uv
        # Kept for batch-insert winner selection: written then read
        # within one round, so it never needs clearing.
        self._np_uscr = scratch
        self._ukm = uk.data
        self._uvm = uv.data
        self._u_cap = cap
        self._umask = mask
        self._ushift = shift
        self._u_used = int(keys.size)
        self._u_tombs = 0

    def _rehash_unique(self, extra: int = 0) -> None:
        """Tombstone-free rebuild; grows when genuinely full.

        ``extra`` reserves headroom for a batch insert about to land,
        so the rebuilt table cannot re-trip the load trigger mid-batch.
        """
        np = _np
        uk = self._np_uk
        slots = np.nonzero(uk >= 0)[0]
        live = int(slots.size)
        cap = max(_U_MIN_CAP, self._u_cap,
                  _next_pow2(3 * max(1, live + extra)))
        if cap != self._u_cap:
            self._u_resizes += 1
        self._u_rebuilds += 1
        self._build_unique(uk[slots], self._np_uv[slots].astype(np.int64),
                           cap)

    def _u_lookup(self, k: int) -> int:
        """Node id for packed key ``k``, or -1 when absent."""
        ukm = self._ukm
        mask = self._umask
        h = ((k * _MULT) & _U64) >> self._ushift
        while True:
            sk = ukm[h]
            if sk == k:
                return self._uvm[h]
            if sk == _EMPTY:
                return -1
            h = (h + 1) & mask

    def _u_insert(self, k: int, node: int) -> None:
        """Insert ``k -> node`` (key must be absent); may rehash."""
        ukm = self._ukm
        mask = self._umask
        h = ((k * _MULT) & _U64) >> self._ushift
        slot = -1
        while True:
            sk = ukm[h]
            if sk == _EMPTY:
                break
            if sk == _TOMB and slot < 0:
                slot = h
            h = (h + 1) & mask
        if slot >= 0:
            self._u_tombs -= 1
            h = slot
        else:
            self._u_used += 1
        ukm[h] = k
        self._uvm[h] = node
        if 3 * self._u_used >= 2 * self._u_cap:
            self._rehash_unique()

    def _u_delete(self, k: int) -> None:
        """Tombstone the slot holding packed key ``k`` (must exist)."""
        ukm = self._ukm
        mask = self._umask
        h = ((k * _MULT) & _U64) >> self._ushift
        while True:
            sk = ukm[h]
            if sk == k:
                ukm[h] = _TOMB
                self._u_tombs += 1
                return
            if sk == _EMPTY:
                raise RuntimeError(
                    "arena unique-table delete missed key %d" % k)
            h = (h + 1) & mask

    # -- vectorized batch probes (the swap/GC bulk phases) --------------
    #
    # All three run the probe loop as *rounds over index arrays*: every
    # still-unresolved key advances one slot per round, so the Python
    # iteration count is the longest probe chain (single digits), not
    # the batch size.  This is what keeps a sifting pass from paying
    # one Python call per moved node.

    def _u_find_slots(self, keys: "_np.ndarray") -> "_np.ndarray":
        """Slot index of every packed key; all keys MUST be present."""
        np = _np
        uk = self._np_uk
        mask = self._umask
        slot = ((keys.astype(np.uint64) * np.uint64(_MULT))
                >> np.uint64(self._ushift)).astype(np.int64)
        pending = np.nonzero(uk[slot] != keys)[0]
        while pending.size:
            slot[pending] = (slot[pending] + 1) & mask
            pending = pending[uk[slot[pending]] != keys[pending]]
        return slot

    def _u_delete_batch(self, keys: "_np.ndarray") -> None:
        """Tombstone every (distinct, present) packed key at once."""
        if not keys.size:
            return
        self._np_uk[self._u_find_slots(keys)] = _TOMB
        self._u_tombs += int(keys.size)

    def _u_lookup_batch(self, keys: "_np.ndarray") -> "_np.ndarray":
        """Node id per packed key, -1 where absent (distinct keys)."""
        np = _np
        uk = self._np_uk
        uv = self._np_uv
        mask = self._umask
        n = int(keys.size)
        res = np.full(n, -1, np.int64)
        slot = ((keys.astype(np.uint64) * np.uint64(_MULT))
                >> np.uint64(self._ushift)).astype(np.int64)
        active = np.arange(n)
        while active.size:
            cur = uk[slot[active]]
            hit = cur == keys[active]
            found = active[hit]
            res[found] = uv[slot[found]]
            active = active[~hit & (cur != _EMPTY)]
            slot[active] = (slot[active] + 1) & mask
        return res

    def _u_insert_batch(self, keys: "_np.ndarray",
                        nodes: "_np.ndarray") -> None:
        """Insert distinct, absent packed keys in one vectorized pass.

        Placement is identical to inserting the keys one by one in
        array order: each round, every unplaced key proposes its
        current slot; vacant-slot claims are granted to the
        lowest-index claimant and everyone else advances one slot.
        Winner selection is a reversed fancy-store into a scratch
        array — numpy applies fancy assignments in order, so writing
        claimants highest-index-first leaves the lowest index in each
        contested slot.  Rehashes up front when the batch would trip
        the scalar insert's load trigger.
        """
        np = _np
        n = int(keys.size)
        if not n:
            return
        if 3 * (self._u_used + n) >= 2 * self._u_cap:
            self._rehash_unique(extra=n)
        uk = self._np_uk
        uv = self._np_uv
        mask = self._umask
        slot = ((keys.astype(np.uint64) * np.uint64(_MULT))
                >> np.uint64(self._ushift)).astype(np.int64)
        active = np.arange(n)
        while active.size:
            cur = uk[slot[active]]
            vac = (cur == _EMPTY) | (cur == _TOMB)
            claim = active[vac]
            if claim.size:
                cs = slot[claim]
                scr = self._np_uscr
                scr[cs[::-1]] = claim[::-1]
                winners = claim[scr[cs] == claim]
                wslots = slot[winners]
                empties = int(np.count_nonzero(uk[wslots] == _EMPTY))
                uk[wslots] = keys[winners]
                uv[wslots] = nodes[winners]
                self._u_used += empties
                self._u_tombs -= int(winners.size) - empties
            placed = uk[slot[active]] == keys[active]
            active = active[~placed]
            slot[active] = (slot[active] + 1) & mask

    def unique_table_stats(self) -> Dict[str, Union[int, float]]:
        """Open-addressing health counters (satellite of ``--stats``).

        ``probe_p95``/``probe_max`` are computed on demand from the
        current slot displacements — nothing is tracked on the hot
        path.  ``resizes`` counts capacity growths; ``rebuilds`` also
        counts same-capacity tombstone purges and GC rebuilds.
        """
        np = _np
        uk = self._np_uk
        cap = self._u_cap
        slots = np.nonzero(uk >= 0)[0]
        entries = int(slots.size)
        stats: Dict[str, Union[int, float]] = {
            "capacity": cap,
            "entries": entries,
            "load_factor": entries / cap,
            "tombstones": self._u_tombs,
            "resizes": self._u_resizes,
            "rebuilds": self._u_rebuilds,
        }
        if entries:
            keys = uk[slots].astype(np.uint64)
            home = (keys * np.uint64(_MULT)) >> np.uint64(self._ushift)
            disp = (slots - home.astype(np.int64)) & self._umask
            stats["probe_p95"] = int(np.percentile(disp, 95)) + 1
            stats["probe_max"] = int(disp.max()) + 1
        else:
            stats["probe_p95"] = 0
            stats["probe_max"] = 0
        return stats

    # ------------------------------------------------------------------
    # Node construction / release
    # ------------------------------------------------------------------

    def mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        ukm = self._ukm
        mask = self._umask
        k = (var << _VAR_SHIFT) | (low << _NODE_BITS) | high
        h = ((k * _MULT) & _U64) >> self._ushift
        slot = -1
        while True:
            sk = ukm[h]
            if sk == k:
                return self._uvm[h]
            if sk == _EMPTY:
                break
            if sk == _TOMB and slot < 0:
                slot = h
            h = (h + 1) & mask
        free = self._free
        node = free.pop() if free else self._alloc_node()
        self._var[node] = var
        self._low[node] = low
        self._high[node] = high
        self._ref[node] = 0
        self._pref[node] = 0
        if slot >= 0:
            self._u_tombs -= 1
            h = slot
        else:
            self._u_used += 1
        ukm[h] = k
        self._uvm[h] = node
        self._vcount[var] += 1
        pref = self._pref
        pref[low] += 1
        pref[high] += 1
        self._live_nodes += 1
        if self._live_nodes > self.peak_live_nodes:
            self.peak_live_nodes = self._live_nodes
        if 3 * self._u_used >= 2 * self._u_cap:
            self._rehash_unique()
        n = self._budget_countdown
        if n is not None:
            if n > 0:
                self._budget_countdown = n - 1
            else:
                self._budget_poll("mk")
        return node

    def _free_node(self, u: int) -> None:
        var_a = self._var
        low_a = self._low
        high_a = self._high
        ref = self._ref
        pref = self._pref
        free_append = self._free.append
        vcount = self._vcount
        u_delete = self._u_delete
        stack = [u]
        while stack:
            n = stack.pop()
            var = var_a[n]
            u_delete((var << _VAR_SHIFT) | (low_a[n] << _NODE_BITS)
                     | high_a[n])
            vcount[var] -= 1
            var_a[n] = _TERMINAL_VAR
            for child in (low_a[n], high_a[n]):
                pref[child] -= 1
                if (child > TRUE and pref[child] == 0
                        and ref[child] == 0):
                    stack.append(child)
            free_append(n)
            self._live_nodes -= 1

    # ------------------------------------------------------------------
    # Garbage collection (vectorized mark-and-sweep)
    # ------------------------------------------------------------------

    def collect_garbage(self) -> int:
        np = _np
        n = self._n_nodes
        var = self._np_var[:n]
        low = self._np_low[:n]
        high = self._np_high[:n]
        ref = self._np_ref[:n]
        marked = np.zeros(n, np.bool_)
        marked[FALSE] = marked[TRUE] = True
        frontier = np.nonzero(ref[2:] > 0)[0] + 2
        marked[frontier] = True
        while frontier.size:
            kids = np.concatenate((low[frontier], high[frontier]))
            kids = kids[~marked[kids]]
            if kids.size:
                # Sort-based dedup (see _sort_dedup_counts): cheaper
                # than np.unique's hashing path at these sizes.
                kids = np.sort(kids)
                kids = kids[np.concatenate(
                    ([True], kids[1:] != kids[:-1]))]
                marked[kids] = True
            frontier = kids
        dead = np.nonzero((var >= 0) & ~marked)[0]
        freed = int(dead.size)
        if freed:
            var[dead] = _TERMINAL_VAR
            self._free.extend(dead.tolist())
            self._live_nodes -= freed
        alive = np.nonzero(var >= 0)[0]
        self._vcount = np.bincount(
            var[alive], minlength=self.num_vars).tolist()
        self._np_pref[:n] = (np.bincount(low[alive], minlength=n)
                             + np.bincount(high[alive], minlength=n))
        # Tombstone-free rebuild of the unique table from the survivors
        # (replaces per-entry dict deletes; never shrinks capacity).
        keys = ((var[alive].astype(np.int64) << _VAR_SHIFT)
                | (low[alive].astype(np.int64) << _NODE_BITS)
                | high[alive].astype(np.int64))
        self._u_rebuilds += 1
        self._build_unique(keys, alive.astype(np.int64), self._u_cap)
        self._sweep_cache(marked)
        self.n_gc_runs += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.instant("gc", freed=freed,
                           live_nodes=self._live_nodes)
        if self.debug_checks:
            self._selfcheck("gc")
        return freed

    def _sweep_cache(self, marked) -> None:
        """Vectorized GC filter of the direct-mapped segments.

        ``marked`` is the GC's bool mark vector (length ``_n_nodes``).
        Same policy as the dict manager: compose is volatile, the rest
        survive when operands and result are all marked (if the cache
        config keeps entries across GC).
        """
        np = _np
        compose_k1 = self._seg_nps["compose"][0]
        compose_k1.fill(_EMPTY)
        self._compose_ctx.clear()
        if not self.cache_config.keep_across_gc:
            for name, (k1, _k2, _val, _kind) in self._seg_nps.items():
                k1.fill(_EMPTY)
            return
        for name, (k1, k2, val, kind) in self._seg_nps.items():
            if kind == "volatile":
                continue
            used = np.nonzero(k1 != _EMPTY)[0]
            if not used.size:
                continue
            keys = k1[used]
            res_ok = marked[val[used]]
            if kind == "bin":
                keep = (marked[keys >> _NODE_BITS]
                        & marked[keys & _NODE_MASK] & res_ok)
            elif kind == "unary":
                keep = marked[keys] & res_ok
            elif kind == "tri":
                keep = (marked[keys >> _NODE_BITS]
                        & marked[keys & _NODE_MASK]
                        & marked[k2[used]] & res_ok)
            elif kind == "ctx1":
                keep = marked[keys >> 32] & res_ok
            else:  # ctx2
                keep = (marked[keys >> _NODE_BITS]
                        & marked[keys & _NODE_MASK] & res_ok)
            k1[used[~keep]] = _EMPTY

    def clear_cache(self) -> None:
        for name, (k1, _k2, _val, _kind) in self._seg_nps.items():
            k1.fill(_EMPTY)
        self._compose_ctx.clear()

    def cache_stats(self) -> Dict:
        np = _np
        ops = {}
        th = tm = te = tn = 0
        for name, _cattr, sattr, _kind in _SEGMENT_SPECS:
            st = getattr(self, sattr)
            entries = int(np.count_nonzero(
                self._seg_nps[name][0] != _EMPTY))
            ops[name] = {"hits": st[0], "misses": st[1],
                         "evictions": st[2], "entries": entries}
            th += st[0]
            tm += st[1]
            te += st[2]
            tn += entries
        probes = th + tm
        return {"ops": ops,
                "total": {"hits": th, "misses": tm, "evictions": te,
                          "entries": tn,
                          "hit_rate": (th / probes) if probes else 0.0}}

    # ------------------------------------------------------------------
    # Boolean kernels (explicit-stack loops over integer node ids)
    #
    # Resolve-first structure like the dict manager's _ite_slow: each
    # task either simplifies via the terminal rules, hits its
    # direct-mapped cache slot, or pushes one frame and descends.  Node
    # creation goes through self.mk — an instance-patched mk (the fault
    # injector) therefore still fires, and budget accounting lives in
    # one place.  Memoryview locals stay valid across array growth
    # because kernels only dereference pre-existing node ids (results
    # of subcomputations are combined, never cofactored).
    # ------------------------------------------------------------------

    def _and(self, f: int, g: int) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE or f == g:
            return f
        if f > g:
            f, g = g, f
        k = (f << _NODE_BITS) | g
        h = ((k * _MULT) & _U64) >> self._cshift
        if self._ck_and[h] == k:
            self._cs_and[0] += 1
            return self._cv_and[h]
        return self._and_slow(f, g)

    def _and_slow(self, f: int, g: int) -> int:
        ck = self._ck_and
        cv = self._cv_and
        cshift = self._cshift
        mk = self.mk
        var_a = self._var
        low_a = self._low
        high_a = self._high
        v2l = self._var2level
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # RESOLVE the task (f, g).
                if f == FALSE or g == FALSE:
                    res = FALSE
                elif f == TRUE:
                    res = g
                elif g == TRUE or f == g:
                    res = f
                else:
                    if f > g:
                        f, g = g, f
                    k = (f << _NODE_BITS) | g
                    h = ((k * _MULT) & _U64) >> cshift
                    if ck[h] == k:
                        hits += 1
                        res = cv[h]
                    else:
                        miss += 1
                        vf = var_a[f]
                        vg = var_a[g]
                        lf = v2l[vf]
                        lg = v2l[vg]
                        if lf <= lg:
                            v = vf
                            f0 = low_a[f]
                            f1 = high_a[f]
                        else:
                            v = vg
                            f0 = f1 = f
                        if lg <= lf:
                            g0 = low_a[g]
                            g1 = high_a[g]
                        else:
                            g0 = g1 = g
                        push([k, h, v, f1, g1, -1])
                        f = f0
                        g = g0
                        continue
                # UNWIND.
                while stack:
                    top = stack[-1]
                    state = top[5]
                    if state < 0:
                        top[5] = res
                        f = top[3]
                        g = top[4]
                        break
                    pop()
                    res = mk(top[2], state, res)
                    h = top[1]
                    old = ck[h]
                    if old != _EMPTY and old != top[0]:
                        evt += 1
                    ck[h] = top[0]
                    cv[h] = res
                else:
                    return res
        finally:
            st = self._cs_and
            st[0] += hits
            st[1] += miss
            st[2] += evt

    def _or(self, f: int, g: int) -> int:
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE or f == g:
            return f
        if f > g:
            f, g = g, f
        k = (f << _NODE_BITS) | g
        h = ((k * _MULT) & _U64) >> self._cshift
        if self._ck_or[h] == k:
            self._cs_or[0] += 1
            return self._cv_or[h]
        return self._or_slow(f, g)

    def _or_slow(self, f: int, g: int) -> int:
        ck = self._ck_or
        cv = self._cv_or
        cshift = self._cshift
        mk = self.mk
        var_a = self._var
        low_a = self._low
        high_a = self._high
        v2l = self._var2level
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                if f == TRUE or g == TRUE:
                    res = TRUE
                elif f == FALSE:
                    res = g
                elif g == FALSE or f == g:
                    res = f
                else:
                    if f > g:
                        f, g = g, f
                    k = (f << _NODE_BITS) | g
                    h = ((k * _MULT) & _U64) >> cshift
                    if ck[h] == k:
                        hits += 1
                        res = cv[h]
                    else:
                        miss += 1
                        vf = var_a[f]
                        vg = var_a[g]
                        lf = v2l[vf]
                        lg = v2l[vg]
                        if lf <= lg:
                            v = vf
                            f0 = low_a[f]
                            f1 = high_a[f]
                        else:
                            v = vg
                            f0 = f1 = f
                        if lg <= lf:
                            g0 = low_a[g]
                            g1 = high_a[g]
                        else:
                            g0 = g1 = g
                        push([k, h, v, f1, g1, -1])
                        f = f0
                        g = g0
                        continue
                while stack:
                    top = stack[-1]
                    state = top[5]
                    if state < 0:
                        top[5] = res
                        f = top[3]
                        g = top[4]
                        break
                    pop()
                    res = mk(top[2], state, res)
                    h = top[1]
                    old = ck[h]
                    if old != _EMPTY and old != top[0]:
                        evt += 1
                    ck[h] = top[0]
                    cv[h] = res
                else:
                    return res
        finally:
            st = self._cs_or
            st[0] += hits
            st[1] += miss
            st[2] += evt

    def _xor(self, f: int, g: int) -> int:
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self._not(g)
        if g == TRUE:
            return self._not(f)
        if f > g:
            f, g = g, f
        k = (f << _NODE_BITS) | g
        h = ((k * _MULT) & _U64) >> self._cshift
        if self._ck_xor[h] == k:
            self._cs_xor[0] += 1
            return self._cv_xor[h]
        return self._xor_slow(f, g)

    def _xor_slow(self, f: int, g: int) -> int:
        ck = self._ck_xor
        cv = self._cv_xor
        cshift = self._cshift
        mk = self.mk
        _not = self._not
        var_a = self._var
        low_a = self._low
        high_a = self._high
        v2l = self._var2level
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                if f == g:
                    res = FALSE
                elif f == FALSE:
                    res = g
                elif g == FALSE:
                    res = f
                elif f == TRUE:
                    res = _not(g)
                elif g == TRUE:
                    res = _not(f)
                else:
                    if f > g:
                        f, g = g, f
                    k = (f << _NODE_BITS) | g
                    h = ((k * _MULT) & _U64) >> cshift
                    if ck[h] == k:
                        hits += 1
                        res = cv[h]
                    else:
                        miss += 1
                        vf = var_a[f]
                        vg = var_a[g]
                        lf = v2l[vf]
                        lg = v2l[vg]
                        if lf <= lg:
                            v = vf
                            f0 = low_a[f]
                            f1 = high_a[f]
                        else:
                            v = vg
                            f0 = f1 = f
                        if lg <= lf:
                            g0 = low_a[g]
                            g1 = high_a[g]
                        else:
                            g0 = g1 = g
                        push([k, h, v, f1, g1, -1])
                        f = f0
                        g = g0
                        continue
                while stack:
                    top = stack[-1]
                    state = top[5]
                    if state < 0:
                        top[5] = res
                        f = top[3]
                        g = top[4]
                        break
                    pop()
                    res = mk(top[2], state, res)
                    h = top[1]
                    old = ck[h]
                    if old != _EMPTY and old != top[0]:
                        evt += 1
                    ck[h] = top[0]
                    cv[h] = res
                else:
                    return res
        finally:
            st = self._cs_xor
            st[0] += hits
            st[1] += miss
            st[2] += evt

    def _not(self, f: int) -> int:
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        h = ((f * _MULT) & _U64) >> self._cshift
        if self._ck_not[h] == f:
            self._cs_not[0] += 1
            return self._cv_not[h]
        return self._not_slow(f)

    def _not_slow(self, f: int) -> int:
        ck = self._ck_not
        cv = self._cv_not
        cshift = self._cshift
        mk = self.mk
        var_a = self._var
        low_a = self._low
        high_a = self._high
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                if f == FALSE:
                    res = TRUE
                elif f == TRUE:
                    res = FALSE
                else:
                    h = ((f * _MULT) & _U64) >> cshift
                    if ck[h] == f:
                        hits += 1
                        res = cv[h]
                    else:
                        miss += 1
                        push([f, h, var_a[f], high_a[f], -1])
                        f = low_a[f]
                        continue
                while stack:
                    top = stack[-1]
                    state = top[4]
                    if state < 0:
                        top[4] = res
                        f = top[3]
                        break
                    pop()
                    res = mk(top[2], state, res)
                    h = top[1]
                    old = ck[h]
                    if old != _EMPTY and old != top[0]:
                        evt += 1
                    ck[h] = top[0]
                    cv[h] = res
                else:
                    return res
        finally:
            st = self._cs_not
            st[0] += hits
            st[1] += miss
            st[2] += evt

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self._not(f)
        if g == TRUE:
            return self._or(f, h)
        if g == FALSE:
            return self._and(self._not(f), h)
        if h == FALSE:
            return self._and(f, g)
        if h == TRUE:
            return self._or(self._not(f), g)
        if f == g:
            return self._or(f, h)
        if f == h:
            return self._and(f, g)
        k1 = (f << _NODE_BITS) | g
        slot = ((k1 * _MULT + h * _MULT2) & _U64) >> self._cshift
        if self._ck1_ite[slot] == k1 and self._ck2_ite[slot] == h:
            self._cs_ite[0] += 1
            return self._cv_ite[slot]
        return self._ite_slow(f, g, h)

    def _ite_slow(self, f: int, g: int, h: int) -> int:
        ck1 = self._ck1_ite
        ck2 = self._ck2_ite
        cv = self._cv_ite
        cshift = self._cshift
        mk = self.mk
        var_a = self._var
        low_a = self._low
        high_a = self._high
        v2l = self._var2level
        l2v = self._level2var
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # RESOLVE the task (f, g, h).
                if f == TRUE:
                    res = g
                elif f == FALSE:
                    res = h
                elif g == h:
                    res = g
                elif g == TRUE and h == FALSE:
                    res = f
                elif g == FALSE and h == TRUE:
                    res = self._not(f)
                elif g == TRUE:
                    res = self._or(f, h)
                elif g == FALSE:
                    res = self._and(self._not(f), h)
                elif h == FALSE:
                    res = self._and(f, g)
                elif h == TRUE:
                    res = self._or(self._not(f), g)
                elif f == g:
                    res = self._or(f, h)
                elif f == h:
                    res = self._and(f, g)
                else:
                    k1 = (f << _NODE_BITS) | g
                    slot = ((k1 * _MULT + h * _MULT2) & _U64) >> cshift
                    if ck1[slot] == k1 and ck2[slot] == h:
                        hits += 1
                        res = cv[slot]
                    else:
                        miss += 1
                        n = self._budget_countdown
                        if n is not None:
                            if n > 0:
                                self._budget_countdown = n - 1
                            else:
                                self._budget_poll("ite")
                        level = v2l[var_a[f]]
                        lg = v2l[var_a[g]]
                        if lg < level:
                            level = lg
                        lh = v2l[var_a[h]]
                        if lh < level:
                            level = lh
                        if v2l[var_a[f]] == level:
                            f0 = low_a[f]
                            f1 = high_a[f]
                        else:
                            f0 = f1 = f
                        if lg == level:
                            g0 = low_a[g]
                            g1 = high_a[g]
                        else:
                            g0 = g1 = g
                        if lh == level:
                            h0 = low_a[h]
                            h1 = high_a[h]
                        else:
                            h0 = h1 = h
                        push([k1, h, slot, l2v[level], f1, g1, h1, -1])
                        f = f0
                        g = g0
                        h = h0
                        continue
                # UNWIND.
                while stack:
                    top = stack[-1]
                    state = top[7]
                    if state < 0:
                        top[7] = res
                        f = top[4]
                        g = top[5]
                        h = top[6]
                        break
                    pop()
                    res = mk(top[3], state, res)
                    slot = top[2]
                    o1 = ck1[slot]
                    if o1 != _EMPTY and (o1 != top[0]
                                         or ck2[slot] != top[1]):
                        evt += 1
                    ck1[slot] = top[0]
                    ck2[slot] = top[1]
                    cv[slot] = res
                else:
                    return res
        finally:
            st = self._cs_ite
            st[0] += hits
            st[1] += miss
            st[2] += evt

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def _quantify(self, f: int, var_set: frozenset, op: int) -> int:
        if f <= TRUE:
            return f
        v2l = self._var2level
        max_level = max(v2l[v] for v in var_set)
        var_a = self._var
        if v2l[var_a[f]] > max_level:
            return f
        if op == _OP_EXISTS:
            ck = self._ck_exists
            cv = self._cv_exists
            stats = self._cs_exists
            combine = self._or
        else:
            ck = self._ck_forall
            cv = self._cv_forall
            stats = self._cs_forall
            combine = self._and
        ctx = self._quant_ctx_id(var_set)
        cshift = self._cshift
        mk = self.mk
        low_a = self._low
        high_a = self._high
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # RESOLVE the task f.
                if f <= TRUE or v2l[var_a[f]] > max_level:
                    res = f
                else:
                    k = (f << 32) | ctx
                    slot = ((k * _MULT) & _U64) >> cshift
                    if ck[slot] == k:
                        hits += 1
                        res = cv[slot]
                    else:
                        miss += 1
                        n = self._budget_countdown
                        if n is not None:
                            if n > 0:
                                self._budget_countdown = n - 1
                            else:
                                self._budget_poll("quantify")
                        push([k, slot, var_a[f], high_a[f], -1])
                        f = low_a[f]
                        continue
                # UNWIND.
                while stack:
                    top = stack[-1]
                    if top[4] < 0:
                        f = top[3]
                        top[3] = res
                        top[4] = 0
                        break
                    pop()
                    var = top[2]
                    if var in var_set:
                        res = combine(top[3], res)
                    else:
                        res = mk(var, top[3], res)
                    slot = top[1]
                    old = ck[slot]
                    if old != _EMPTY and old != top[0]:
                        evt += 1
                    ck[slot] = top[0]
                    cv[slot] = res
                else:
                    return res
        finally:
            stats[0] += hits
            stats[1] += miss
            stats[2] += evt

    def _and_exists(self, f: int, g: int, var_set: frozenset) -> int:
        # Frame: [k1, k2, slot, var, a, b, state]; state -2/-1 while the
        # low pair is in flight (-2 when var is quantified, enabling the
        # lo == TRUE short-circuit), then 1/0 with slot 4 holding the
        # low result (see the dict manager's _and_exists).
        ctx = self._quant_ctx_id(var_set)
        ck1 = self._ck1_andex
        ck2 = self._ck2_andex
        cv = self._cv_andex
        cshift = self._cshift
        mk = self.mk
        _or = self._or
        var_a = self._var
        low_a = self._low
        high_a = self._high
        v2l = self._var2level
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # RESOLVE the task (f, g).
                if f == FALSE or g == FALSE:
                    res = FALSE
                elif f == TRUE and g == TRUE:
                    res = TRUE
                elif f == TRUE:
                    res = self._quantify(g, var_set, _OP_EXISTS)
                elif g == TRUE or f == g:
                    res = self._quantify(f, var_set, _OP_EXISTS)
                else:
                    if f > g:
                        f, g = g, f
                    k1 = (f << _NODE_BITS) | g
                    slot = ((k1 * _MULT + ctx * _MULT2) & _U64) >> cshift
                    if ck1[slot] == k1 and ck2[slot] == ctx:
                        hits += 1
                        res = cv[slot]
                    else:
                        miss += 1
                        n = self._budget_countdown
                        if n is not None:
                            if n > 0:
                                self._budget_countdown = n - 1
                            else:
                                self._budget_poll("and_exists")
                        lf = v2l[var_a[f]]
                        lg = v2l[var_a[g]]
                        if lf <= lg:
                            var = var_a[f]
                            f0 = low_a[f]
                            f1 = high_a[f]
                        else:
                            var = var_a[g]
                            f0 = f1 = f
                        if lg <= lf:
                            g0 = low_a[g]
                            g1 = high_a[g]
                        else:
                            g0 = g1 = g
                        push([k1, ctx, slot, var, f1, g1,
                              -2 if var in var_set else -1])
                        f = f0
                        g = g0
                        continue
                # UNWIND.
                while stack:
                    top = stack[-1]
                    state = top[6]
                    if state < 0:
                        if state == -2 and res == TRUE:
                            # ∃-short-circuit: TRUE ∨ anything is TRUE.
                            pop()
                            slot = top[2]
                            old = ck1[slot]
                            if old != _EMPTY and (old != top[0]
                                                  or ck2[slot] != top[1]):
                                evt += 1
                            ck1[slot] = top[0]
                            ck2[slot] = top[1]
                            cv[slot] = TRUE
                            continue
                        f = top[4]
                        g = top[5]
                        top[4] = res
                        top[6] = 1 if state == -2 else 0
                        break
                    pop()
                    if state == 1:
                        res = _or(top[4], res)
                    else:
                        res = mk(top[3], top[4], res)
                    slot = top[2]
                    old = ck1[slot]
                    if old != _EMPTY and (old != top[0]
                                          or ck2[slot] != top[1]):
                        evt += 1
                    ck1[slot] = top[0]
                    ck2[slot] = top[1]
                    cv[slot] = res
                else:
                    return res
        finally:
            st = self._cs_andex
            st[0] += hits
            st[1] += miss
            st[2] += evt

    # ------------------------------------------------------------------
    # Cofactor / compose
    # ------------------------------------------------------------------

    def _restrict(self, f: int, fixed: Dict[int, bool], rid: int) -> int:
        if f <= TRUE:
            return f
        # Frame: [k, slot, var, hi, state]; state -1 while the low child
        # is in flight, 0 while the high child runs (slot 3 then holds
        # the low result), 2 for a fixed-variable pass-through.
        ck = self._ck_restrict
        cv = self._cv_restrict
        cshift = self._cshift
        mk = self.mk
        fixed_get = fixed.get
        var_a = self._var
        low_a = self._low
        high_a = self._high
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # RESOLVE the task f.
                if f <= TRUE:
                    res = f
                else:
                    k = (f << 32) | rid
                    slot = ((k * _MULT) & _U64) >> cshift
                    if ck[slot] == k:
                        hits += 1
                        res = cv[slot]
                    else:
                        miss += 1
                        var = var_a[f]
                        val = fixed_get(var)
                        if val is None:
                            push([k, slot, var, high_a[f], -1])
                            f = low_a[f]
                        else:
                            push([k, slot, 0, 0, 2])
                            f = high_a[f] if val else low_a[f]
                        continue
                # UNWIND.
                while stack:
                    top = stack[-1]
                    state = top[4]
                    if state < 0:
                        f = top[3]
                        top[3] = res
                        top[4] = 0
                        break
                    pop()
                    if state == 0:
                        res = mk(top[2], top[3], res)
                    slot = top[1]
                    old = ck[slot]
                    if old != _EMPTY and old != top[0]:
                        evt += 1
                    ck[slot] = top[0]
                    cv[slot] = res
                else:
                    return res
        finally:
            st = self._cs_restrict
            st[0] += hits
            st[1] += miss
            st[2] += evt

    def _compose(self, f: int, subst: Dict[int, int], cid: int) -> int:
        if f <= TRUE:
            return f
        # Frame: [k, slot, var, hi, state]; states as in _restrict minus
        # the pass-through case.
        ck = self._ck_compose
        cv = self._cv_compose
        cshift = self._cshift
        subst_get = subst.get
        var_a = self._var
        low_a = self._low
        high_a = self._high
        stack: List[list] = []
        push = stack.append
        pop = stack.pop
        hits = 0
        miss = 0
        evt = 0
        try:
            while True:
                # RESOLVE the task f.
                if f <= TRUE:
                    res = f
                else:
                    k = (f << 32) | cid
                    slot = ((k * _MULT) & _U64) >> cshift
                    if ck[slot] == k:
                        hits += 1
                        res = cv[slot]
                    else:
                        miss += 1
                        push([k, slot, var_a[f], high_a[f], -1])
                        f = low_a[f]
                        continue
                # UNWIND.
                while stack:
                    top = stack[-1]
                    if top[4] < 0:
                        f = top[3]
                        top[3] = res
                        top[4] = 0
                        break
                    pop()
                    var = top[2]
                    g = subst_get(var)
                    if g is None:
                        g = self.mk(var, FALSE, TRUE)
                    res = self._ite(g, res, top[3])
                    slot = top[1]
                    old = ck[slot]
                    if old != _EMPTY and old != top[0]:
                        evt += 1
                    ck[slot] = top[0]
                    cv[slot] = res
                else:
                    return res
        finally:
            st = self._cs_compose
            st[0] += hits
            st[1] += miss
            st[2] += evt

    # ------------------------------------------------------------------
    # Invariants (vectorized port of the dict manager's checks)
    # ------------------------------------------------------------------

    def invariant_violations(self) -> List[str]:
        """Collect every violated internal invariant (empty = healthy).

        Same checks as :meth:`BddManager.invariant_violations` — free
        leaks, redundant nodes, freed children, parent-count recount,
        order, unique-table bijection, live count, per-variable counts,
        order permutation — run vectorized over the node arrays, plus
        arena-specific free-list and key-width checks.  Message order
        differs from the dict manager (grouped per check, not per
        node); the sanitizer treats the list as a set.
        """
        np = _np
        out: List[str] = []
        n = self._n_nodes
        var = self._np_var[:n]
        low = self._np_low[:n]
        high = self._np_high[:n]
        free = self._free
        if len(set(free)) != len(free):
            out.append("free list contains duplicates")
        free_mask = np.zeros(n, dtype=bool)
        if free:
            fa = np.asarray(free, dtype=np.int64)
            if fa.min() < 2 or fa.max() >= n:
                out.append("free list references out-of-range nodes")
                fa = fa[(fa >= 2) & (fa < n)]
            free_mask[fa] = True
        alive = ~free_mask
        live = int(alive.sum())
        interior = alive.copy()
        interior[:2] = False
        idx = np.nonzero(interior)[0]
        for u in idx[var[idx] == _TERMINAL_VAR].tolist():
            out.append("free node leaked: %d" % u)
        ok = idx[var[idx] != _TERMINAL_VAR]
        nv = self.num_vars
        undeclared = (var[ok] < 0) | (var[ok] >= nv)
        for u in ok[undeclared].tolist():
            out.append("node %d has undeclared variable %d"
                       % (u, var[u]))
        ok = ok[~undeclared]
        lo = low[ok]
        hi = high[ok]
        for u in ok[lo == hi].tolist():
            out.append("redundant node %d" % u)
        bad_child = free_mask[lo] | free_mask[hi]
        for u in ok[bad_child].tolist():
            out.append("node %d points at freed child" % u)
        good = ok[~bad_child]
        glo = low[good]
        ghi = high[good]
        # Parent-count recount (contributions only from checkable nodes,
        # matching the dict manager's continue on freed children).
        counted = (np.bincount(glo, minlength=n)
                   + np.bincount(ghi, minlength=n))
        pref = self._np_pref[:n]
        check = alive.copy()
        check[:2] = False
        for u in np.nonzero(check & (pref != counted))[0].tolist():
            out.append("parent count wrong at %d: %d != %d"
                       % (u, pref[u], counted[u]))
        # Order: every child sits strictly below its parent's level.
        v2l_list = self._var2level
        if sorted(v2l_list) != list(range(nv)):
            out.append("var2level is not a permutation of the levels")
        else:
            for vv, lvl in enumerate(v2l_list):
                if self._level2var[lvl] != vv:
                    out.append("level2var inconsistent at level %d" % lvl)
            v2l = np.asarray(v2l_list, dtype=np.int64)
            big = np.int64(1) << np.int64(60)
            lvl_of = np.full(n, big, dtype=np.int64)
            lvl_of[idx] = np.where(
                (var[idx] >= 0) & (var[idx] < nv), v2l[var[idx] % max(nv, 1)],
                np.int64(-1))
            mylvl = v2l[var[good]]
            viol = (lvl_of[glo] <= mylvl) | (lvl_of[ghi] <= mylvl)
            for u in good[viol].tolist():
                out.append("order violated at %d" % u)
        # Unique-table bijection: every occupied slot decodes to a live
        # node with matching fields, and every good node appears once.
        occ = np.nonzero(self._np_uk >= 0)[0]
        keys = self._np_uk[occ]
        vals = self._np_uv[occ]
        entries = len(occ)
        bad_vals = (vals < 2) | (vals >= n)
        for s in occ[bad_vals].tolist():
            out.append("unique table slot %d maps to out-of-range node %d"
                       % (s, self._np_uv[s]))
        keys = keys[~bad_vals]
        vals = vals[~bad_vals]
        kvar = keys >> _VAR_SHIFT
        klow = (keys >> _NODE_BITS) & _NODE_MASK
        khigh = keys & _NODE_MASK
        mism = ((var[vals] != kvar) | (low[vals] != klow)
                | (high[vals] != khigh) | free_mask[vals])
        seen = np.bincount(vals[~mism], minlength=n)
        bad = np.zeros(n, dtype=bool)
        bad[vals[mism]] = True
        bad[good] |= seen[good] != 1
        for u in np.nonzero(bad)[0].tolist():
            out.append("unique table inconsistent at %d" % u)
        if entries != live - 2:
            out.append("unique table size %d != %d live non-terminals"
                       % (entries, live - 2))
        tombs = int(np.count_nonzero(self._np_uk == _TOMB))
        if tombs != self._u_tombs:
            out.append("tombstone count wrong: counted %d, recorded %d"
                       % (tombs, self._u_tombs))
        if self._u_used != entries + tombs:
            out.append("unique used-slot count %d != %d occupied + "
                       "%d tombstones" % (self._u_used, entries, tombs))
        # Per-variable live counts.
        vc = np.bincount(var[good], minlength=nv)
        if len(good) != live - 2 or list(vc) != list(self._vcount):
            if int(vc.sum()) != live - 2:
                out.append("per-variable node sets do not partition the "
                           "live nodes")
            for vv in range(nv):
                if vc[vv] != self._vcount[vv]:
                    out.append("per-variable count wrong for var %d: "
                               "%d != %d" % (vv, self._vcount[vv], vc[vv]))
        if live != self._live_nodes:
            out.append("live count wrong: counted %d, recorded %d"
                       % (live, self._live_nodes))
        return out


class ArenaBdd(Bdd):
    """:class:`repro.bdd.function.Bdd` facade over the numpy arena."""

    _manager_class = ArenaManager


def default_arena_bdd() -> ArenaBdd:
    """Arena-backed BDD tuned like :func:`repro.bdd.default_bdd`."""
    return ArenaBdd(auto_reorder=True, initial_reorder_threshold=30_000)
