"""Bit-parallel (packed) three-valued simulation.

The scalar engine in :mod:`repro.sim.ternary` interprets the netlist
once per pattern — fine for one counterexample, ruinous for the
paper's 5000-pattern random-pattern baseline.  Here every net carries
*two bit-masks over a whole batch of patterns*:

* ``is1`` — bit ``p`` set iff the net is a definite 1 under pattern ``p``
* ``is0`` — bit ``p`` set iff the net is a definite 0 under pattern ``p``

A bit set in neither mask is ``X`` (a bit may never be set in both).
One gate evaluation then costs a handful of arbitrary-precision
integer operations covering the entire batch, so the per-pattern cost
collapses to a few *bit* operations per gate — in practice about two
orders of magnitude faster than the scalar interpreter.

The encoding is the classic dual-rail one from parallel-pattern fault
simulation; the semantics are exactly those of
:func:`repro.sim.logic3.eval_gate3` (pessimistic X propagation), which
the differential tests in ``tests/sim/test_bitparallel.py`` check
pattern by pattern.

Two mask representations share that encoding:

* **bigint** (the original): each rail is one arbitrary-precision
  Python int.  Always available, fastest for small batches.
* **uint64 lanes**: each rail is a numpy array of shape ``(n_words,)``
  with 64 patterns per word, little-endian — bit ``p`` lives at
  ``word p // 64, bit p % 64``, exactly where ``int.to_bytes(...,
  "little")`` puts it, so :func:`lanes_to_int` /
  :func:`int_to_lanes` convert between the two without reordering.
  Gate cost stays O(n_words) C-loop no matter how wide the batch, so
  lanes win once batches outgrow a few machine words.  Requires
  numpy (:func:`lanes_available`); the bigint engines never do.

The word-boundary contract both representations share: every bit at
index ``>= num_patterns`` in the top word is 0 on *both* rails.
``~`` on uint64 would happily set those tail bits (reading as definite
values for patterns that do not exist), so every lanes kernel masks
through the batch's ``full`` array — the pinned-seed regression in
``tests/sim/test_bitparallel.py`` holds the two paths bit-identical
across 63/64/65-style boundaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit, CircuitError
from .logic3 import ONE, X, ZERO, TernaryValue

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

__all__ = ["PackedValue", "pack_patterns", "simulate_packed",
           "unpack_value", "LanesValue", "lanes_available",
           "int_to_lanes", "lanes_to_int", "pack_patterns_lanes",
           "simulate_lanes", "unpack_lanes"]

#: ``(is1, is0)`` bit-masks of one net over a batch of patterns.
PackedValue = Tuple[int, int]

#: ``(is1, is0)`` uint64 lane arrays of one net, shape ``(n_words,)``.
LanesValue = Tuple["_np.ndarray", "_np.ndarray"]


def lanes_available() -> bool:
    """True when numpy is importable and the lanes engine can run."""
    return _np is not None


def _require_lanes() -> None:
    if _np is None:
        raise RuntimeError(
            "simulation engine 'lanes' needs numpy, which is not "
            "installed; engines 'packed' and 'scalar' run without it")


def _lane_words(num_patterns: int) -> int:
    return (num_patterns + 63) // 64


def int_to_lanes(mask: int, num_patterns: int) -> "_np.ndarray":
    """Widen one bigint rail into uint64 lanes (little-endian words)."""
    words = _lane_words(num_patterns)
    return _np.frombuffer(mask.to_bytes(words * 8, "little"),
                          dtype=_np.dtype("<u8")).copy()


def lanes_to_int(lanes: "_np.ndarray") -> int:
    """Collapse uint64 lanes back into the equivalent bigint rail."""
    return int.from_bytes(
        _np.ascontiguousarray(lanes, dtype=_np.dtype("<u8")).tobytes(),
        "little")


def _lanes_full(num_patterns: int) -> "_np.ndarray":
    """All-patterns-set mask: tail bits of the top word stay 0."""
    return int_to_lanes((1 << num_patterns) - 1, num_patterns)


def pack_patterns(input_names: Sequence[str],
                  assignments: Sequence[Dict[str, bool]])\
        -> Dict[str, PackedValue]:
    """Pack per-pattern boolean input assignments into mask pairs.

    ``assignments[p][name]`` becomes bit ``p`` of ``name``'s masks.
    Inputs are two-valued, so ``is0`` is just the complement of ``is1``
    within the batch.
    """
    full = (1 << len(assignments)) - 1
    packed: Dict[str, PackedValue] = {}
    for name in input_names:
        ones = 0
        for p, assignment in enumerate(assignments):
            if assignment[name]:
                ones |= 1 << p
        packed[name] = (ones, full & ~ones)
    return packed


def unpack_value(value: PackedValue, index: int) -> TernaryValue:
    """Extract pattern ``index`` of a packed net as a ternary scalar."""
    bit = 1 << index
    if value[0] & bit:
        return ONE
    if value[1] & bit:
        return ZERO
    return X


def _eval_packed(gtype: GateType, inputs: List[PackedValue],
                 full: int) -> PackedValue:
    """One gate over the whole batch; mirrors ``eval_gate3``."""
    if gtype is GateType.AND or gtype is GateType.NAND:
        one, zero = full, 0
        for a1, a0 in inputs:
            one &= a1
            zero |= a0
        return (zero, one) if gtype is GateType.NAND else (one, zero)
    if gtype is GateType.OR or gtype is GateType.NOR:
        one, zero = 0, full
        for a1, a0 in inputs:
            one |= a1
            zero &= a0
        return (zero, one) if gtype is GateType.NOR else (one, zero)
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        # Parity is only meaningful where every input is definite;
        # masking with ``definite`` keeps the rest X, which is exactly
        # the pessimistic propagation of the scalar engine.
        definite, parity = full, 0
        for a1, a0 in inputs:
            definite &= a1 | a0
            parity ^= a1
        one = definite & parity
        zero = definite & ~parity
        return (zero, one) if gtype is GateType.XNOR else (one, zero)
    if gtype is GateType.NOT:
        a1, a0 = inputs[0]
        return a0, a1
    if gtype is GateType.BUF:
        return inputs[0]
    if gtype is GateType.CONST0:
        return 0, full
    if gtype is GateType.CONST1:
        return full, 0
    raise ValueError("unknown gate type %r" % gtype)


def simulate_packed(circuit: Circuit,
                    packed_inputs: Dict[str, PackedValue],
                    num_patterns: int,
                    all_nets: bool = False) -> Dict[str, PackedValue]:
    """Ternary simulation of a whole pattern batch in one sweep.

    Same contract as :func:`repro.sim.ternary.simulate_ternary`, lifted
    to mask pairs: primary inputs must all be packed, free nets (Black
    Box outputs) default to all-``X`` unless a mask pair is supplied.
    """
    full = (1 << num_patterns) - 1
    values: Dict[str, PackedValue] = {}
    for net in circuit.inputs:
        try:
            values[net] = packed_inputs[net]
        except KeyError:
            raise CircuitError("missing input value %r" % net) from None
    for net in circuit.free_nets():
        values[net] = packed_inputs.get(net, (0, 0))
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        values[net] = _eval_packed(
            gate.gtype, [values[src] for src in gate.inputs], full)
    if all_nets:
        return values
    return {net: values[net] for net in circuit.outputs}


def pack_patterns_lanes(input_names: Sequence[str],
                        assignments: Sequence[Dict[str, bool]])\
        -> Dict[str, LanesValue]:
    """:func:`pack_patterns`, widened to uint64 lanes.

    Defined *as* the widening of the bigint packer so the two engines
    cannot drift: whatever bit layout ``pack_patterns`` produces is the
    layout the lanes carry.
    """
    _require_lanes()
    num = len(assignments)
    return {name: (int_to_lanes(one, num), int_to_lanes(zero, num))
            for name, (one, zero)
            in pack_patterns(input_names, assignments).items()}


def unpack_lanes(value: LanesValue, index: int) -> TernaryValue:
    """Extract pattern ``index`` of a lanes net as a ternary scalar."""
    word, bit = index >> 6, index & 63
    if int(value[0][word]) >> bit & 1:
        return ONE
    if int(value[1][word]) >> bit & 1:
        return ZERO
    return X


def _eval_lanes(gtype: GateType, inputs: List[LanesValue],
                full: "_np.ndarray") -> LanesValue:
    """One gate over the whole batch, one uint64 word at a time.

    Mirrors :func:`_eval_packed` with two lanes-specific obligations:
    accumulators are *copies* (in-place ``&=``/``|=`` on an alias of
    ``full`` would corrupt the batch mask for every later gate), and
    every ``~`` result is intersected with a ``full``-bounded rail so
    the dead tail bits of the top word stay 0 on both rails.
    """
    if gtype is GateType.AND or gtype is GateType.NAND:
        one = full.copy()
        zero = _np.zeros_like(full)
        for a1, a0 in inputs:
            one &= a1
            zero |= a0
        return (zero, one) if gtype is GateType.NAND else (one, zero)
    if gtype is GateType.OR or gtype is GateType.NOR:
        one = _np.zeros_like(full)
        zero = full.copy()
        for a1, a0 in inputs:
            one |= a1
            zero &= a0
        return (zero, one) if gtype is GateType.NOR else (one, zero)
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        definite = full.copy()
        parity = _np.zeros_like(full)
        for a1, a0 in inputs:
            definite &= a1 | a0
            parity ^= a1
        one = definite & parity
        zero = definite & ~parity
        return (zero, one) if gtype is GateType.XNOR else (one, zero)
    if gtype is GateType.NOT:
        a1, a0 = inputs[0]
        return a0, a1
    if gtype is GateType.BUF:
        return inputs[0]
    if gtype is GateType.CONST0:
        return _np.zeros_like(full), full.copy()
    if gtype is GateType.CONST1:
        return full.copy(), _np.zeros_like(full)
    raise ValueError("unknown gate type %r" % gtype)


def simulate_lanes(circuit: Circuit,
                   packed_inputs: Dict[str, LanesValue],
                   num_patterns: int,
                   all_nets: bool = False) -> Dict[str, LanesValue]:
    """:func:`simulate_packed` on uint64 lanes.

    Same contract, different rail representation; the differential
    tests hold the two bit-identical on shared pattern corpora.
    """
    _require_lanes()
    full = _lanes_full(num_patterns)
    all_x = _np.zeros_like(full)
    values: Dict[str, LanesValue] = {}
    for net in circuit.inputs:
        try:
            values[net] = packed_inputs[net]
        except KeyError:
            raise CircuitError("missing input value %r" % net) from None
    for net in circuit.free_nets():
        values[net] = packed_inputs.get(net, (all_x, all_x))
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        values[net] = _eval_lanes(
            gate.gtype, [values[src] for src in gate.inputs], full)
    if all_nets:
        return values
    return {net: values[net] for net in circuit.outputs}
