"""Bit-parallel (packed) three-valued simulation.

The scalar engine in :mod:`repro.sim.ternary` interprets the netlist
once per pattern — fine for one counterexample, ruinous for the
paper's 5000-pattern random-pattern baseline.  Here every net carries
*two bit-masks over a whole batch of patterns*:

* ``is1`` — bit ``p`` set iff the net is a definite 1 under pattern ``p``
* ``is0`` — bit ``p`` set iff the net is a definite 0 under pattern ``p``

A bit set in neither mask is ``X`` (a bit may never be set in both).
One gate evaluation then costs a handful of arbitrary-precision
integer operations covering the entire batch, so the per-pattern cost
collapses to a few *bit* operations per gate — in practice about two
orders of magnitude faster than the scalar interpreter.

The encoding is the classic dual-rail one from parallel-pattern fault
simulation; the semantics are exactly those of
:func:`repro.sim.logic3.eval_gate3` (pessimistic X propagation), which
the differential tests in ``tests/sim/test_bitparallel.py`` check
pattern by pattern.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit, CircuitError
from .logic3 import ONE, X, ZERO, TernaryValue

__all__ = ["PackedValue", "pack_patterns", "simulate_packed",
           "unpack_value"]

#: ``(is1, is0)`` bit-masks of one net over a batch of patterns.
PackedValue = Tuple[int, int]


def pack_patterns(input_names: Sequence[str],
                  assignments: Sequence[Dict[str, bool]])\
        -> Dict[str, PackedValue]:
    """Pack per-pattern boolean input assignments into mask pairs.

    ``assignments[p][name]`` becomes bit ``p`` of ``name``'s masks.
    Inputs are two-valued, so ``is0`` is just the complement of ``is1``
    within the batch.
    """
    full = (1 << len(assignments)) - 1
    packed: Dict[str, PackedValue] = {}
    for name in input_names:
        ones = 0
        for p, assignment in enumerate(assignments):
            if assignment[name]:
                ones |= 1 << p
        packed[name] = (ones, full & ~ones)
    return packed


def unpack_value(value: PackedValue, index: int) -> TernaryValue:
    """Extract pattern ``index`` of a packed net as a ternary scalar."""
    bit = 1 << index
    if value[0] & bit:
        return ONE
    if value[1] & bit:
        return ZERO
    return X


def _eval_packed(gtype: GateType, inputs: List[PackedValue],
                 full: int) -> PackedValue:
    """One gate over the whole batch; mirrors ``eval_gate3``."""
    if gtype is GateType.AND or gtype is GateType.NAND:
        one, zero = full, 0
        for a1, a0 in inputs:
            one &= a1
            zero |= a0
        return (zero, one) if gtype is GateType.NAND else (one, zero)
    if gtype is GateType.OR or gtype is GateType.NOR:
        one, zero = 0, full
        for a1, a0 in inputs:
            one |= a1
            zero &= a0
        return (zero, one) if gtype is GateType.NOR else (one, zero)
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        # Parity is only meaningful where every input is definite;
        # masking with ``definite`` keeps the rest X, which is exactly
        # the pessimistic propagation of the scalar engine.
        definite, parity = full, 0
        for a1, a0 in inputs:
            definite &= a1 | a0
            parity ^= a1
        one = definite & parity
        zero = definite & ~parity
        return (zero, one) if gtype is GateType.XNOR else (one, zero)
    if gtype is GateType.NOT:
        a1, a0 = inputs[0]
        return a0, a1
    if gtype is GateType.BUF:
        return inputs[0]
    if gtype is GateType.CONST0:
        return 0, full
    if gtype is GateType.CONST1:
        return full, 0
    raise ValueError("unknown gate type %r" % gtype)


def simulate_packed(circuit: Circuit,
                    packed_inputs: Dict[str, PackedValue],
                    num_patterns: int,
                    all_nets: bool = False) -> Dict[str, PackedValue]:
    """Ternary simulation of a whole pattern batch in one sweep.

    Same contract as :func:`repro.sim.ternary.simulate_ternary`, lifted
    to mask pairs: primary inputs must all be packed, free nets (Black
    Box outputs) default to all-``X`` unless a mask pair is supplied.
    """
    full = (1 << num_patterns) - 1
    values: Dict[str, PackedValue] = {}
    for net in circuit.inputs:
        try:
            values[net] = packed_inputs[net]
        except KeyError:
            raise CircuitError("missing input value %r" % net) from None
    for net in circuit.free_nets():
        values[net] = packed_inputs.get(net, (0, 0))
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        values[net] = _eval_packed(
            gate.gtype, [values[src] for src in gate.inputs], full)
    if all_nets:
        return values
    return {net: values[net] for net in circuit.outputs}
