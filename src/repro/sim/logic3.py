"""Three-valued (0, 1, X) logic, as used in testing [Abramovici et al.].

``X`` models the unknown value at Black Box outputs: a gate output is
``X`` exactly when two different 0/1 replacements of the ``X`` inputs can
produce different gate outputs.
"""

from __future__ import annotations

from typing import Sequence, Union

from ..circuit.gates import GateType

__all__ = ["ZERO", "ONE", "X", "TernaryValue", "eval_gate3", "from_bool",
           "to_char", "from_char"]

#: The three simulation values.  ``ZERO``/``ONE`` are compatible with
#: Python ints, so two-valued code can feed the ternary simulator.
ZERO = 0
ONE = 1
X = 2

TernaryValue = int


def from_bool(value: Union[bool, int]) -> TernaryValue:
    """Lift a Python bool (or 0/1) into ternary."""
    return ONE if value else ZERO


def to_char(value: TernaryValue) -> str:
    """Render as ``'0'``, ``'1'`` or ``'X'``."""
    return "01X"[value]


def from_char(char: str) -> TernaryValue:
    """Parse ``'0'``, ``'1'``, ``'X'`` (or ``'x'``, ``'-'``)."""
    if char == "0":
        return ZERO
    if char == "1":
        return ONE
    if char in ("X", "x", "-"):
        return X
    raise ValueError("not a ternary character: %r" % char)


def _and3(values: Sequence[TernaryValue]) -> TernaryValue:
    if any(v == ZERO for v in values):
        return ZERO
    if any(v == X for v in values):
        return X
    return ONE


def _or3(values: Sequence[TernaryValue]) -> TernaryValue:
    if any(v == ONE for v in values):
        return ONE
    if any(v == X for v in values):
        return X
    return ZERO


def _not3(value: TernaryValue) -> TernaryValue:
    if value == X:
        return X
    return ONE - value


def _xor3(values: Sequence[TernaryValue]) -> TernaryValue:
    if any(v == X for v in values):
        return X
    return sum(values) % 2


def eval_gate3(gtype: GateType, inputs: Sequence[TernaryValue])\
        -> TernaryValue:
    """Ternary gate evaluation with pessimistic X propagation."""
    if gtype is GateType.AND:
        return _and3(inputs)
    if gtype is GateType.OR:
        return _or3(inputs)
    if gtype is GateType.NAND:
        return _not3(_and3(inputs))
    if gtype is GateType.NOR:
        return _not3(_or3(inputs))
    if gtype is GateType.XOR:
        return _xor3(inputs)
    if gtype is GateType.XNOR:
        return _not3(_xor3(inputs))
    if gtype is GateType.NOT:
        return _not3(inputs[0])
    if gtype is GateType.BUF:
        return inputs[0]
    if gtype is GateType.CONST0:
        return ZERO
    if gtype is GateType.CONST1:
        return ONE
    raise ValueError("unknown gate type %r" % gtype)
