"""Symbolic (BDD) circuit simulation.

Computes one BDD per net as a function of the primary input variables —
plus, for partial implementations, the ``Z_i`` variables standing for
Black Box outputs (the paper's "symbolic Z_i simulation", Section 2.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..bdd import Bdd, Function
from ..circuit.gates import GateType
from ..circuit.netlist import Circuit, CircuitError

__all__ = ["declare_input_vars", "symbolic_simulate"]


def declare_input_vars(bdd: Bdd, circuit: Circuit) -> Dict[str, Function]:
    """Declare (or fetch) one BDD variable per primary input net."""
    out: Dict[str, Function] = {}
    for net in circuit.inputs:
        out[net] = bdd.var(net) if bdd.has_var(net) else bdd.add_var(net)
    return out


def _gate_bdd(bdd: Bdd, gtype: GateType, args: list) -> Function:
    if gtype is GateType.AND:
        return bdd.conj(args)
    if gtype is GateType.OR:
        return bdd.disj(args)
    if gtype is GateType.NAND:
        return ~bdd.conj(args)
    if gtype is GateType.NOR:
        return ~bdd.disj(args)
    if gtype is GateType.XOR:
        acc = bdd.false
        for f in args:
            acc = acc ^ f
        return acc
    if gtype is GateType.XNOR:
        # XNOR is NOT(parity); chaining equiv() would get 3+ inputs wrong.
        acc = bdd.false
        for f in args:
            acc = acc ^ f
        return ~acc
    if gtype is GateType.NOT:
        return ~args[0]
    if gtype is GateType.BUF:
        return args[0]
    if gtype is GateType.CONST0:
        return bdd.false
    if gtype is GateType.CONST1:
        return bdd.true
    raise ValueError("unknown gate type %r" % gtype)


def symbolic_simulate(circuit: Circuit, bdd: Bdd,
                      free_functions: Optional[Dict[str, Function]] = None,
                      nets: Optional[Iterable[str]] = None)\
        -> Dict[str, Function]:
    """BDDs for circuit nets as functions of the input variables.

    Parameters
    ----------
    free_functions:
        Function to use for each free net (Black Box output); typically a
        fresh ``Z_i`` variable per output.  Required if the circuit has
        free nets.
    nets:
        Restrict the result to these nets (their cones are still built).
        Defaults to the primary outputs; pass ``circuit.nets()`` for all.

    Returns a dict mapping each requested net to its :class:`Function`.
    """
    free_functions = dict(free_functions or {})
    values: Dict[str, Function] = declare_input_vars(bdd, circuit)
    for net, function in free_functions.items():
        values.setdefault(net, function)
    for net in circuit.free_nets():
        if net not in values:
            raise CircuitError(
                "no function supplied for free net %r" % net)
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        values[net] = _gate_bdd(
            bdd, gate.gtype, [values[src] for src in gate.inputs])
    wanted = list(nets) if nets is not None else circuit.outputs
    missing = [n for n in wanted if n not in values]
    if missing:
        raise CircuitError("unknown nets requested: %s"
                           % ", ".join(missing[:5]))
    return {net: values[net] for net in wanted}
