"""Input pattern sources for simulation-based checking."""

from __future__ import annotations

import random
from typing import Dict, Iterator, Optional, Sequence

__all__ = ["random_patterns", "exhaustive_patterns"]


def random_patterns(input_names: Sequence[str], count: int,
                    seed: Optional[int] = None)\
        -> Iterator[Dict[str, bool]]:
    """``count`` uniformly random input assignments (with replacement).

    The paper's baseline uses 5000 such patterns per check.
    """
    rng = random.Random(seed)
    names = list(input_names)
    width = len(names)
    for _ in range(count):
        bits = rng.getrandbits(width) if width else 0
        yield {name: bool((bits >> i) & 1) for i, name in enumerate(names)}


def exhaustive_patterns(input_names: Sequence[str])\
        -> Iterator[Dict[str, bool]]:
    """All ``2^n`` assignments — only sensible for small circuits."""
    names = list(input_names)
    width = len(names)
    if width > 24:
        raise ValueError("refusing to enumerate 2^%d patterns" % width)
    for bits in range(1 << width):
        yield {name: bool((bits >> i) & 1) for i, name in enumerate(names)}
