"""Simulation engines: scalar ternary, random patterns, symbolic BDDs."""

from .logic3 import ONE, X, ZERO, TernaryValue, eval_gate3, from_bool, \
    from_char, to_char
from .ternary import simulate_ternary, simulate_ternary_vector
from .patterns import exhaustive_patterns, random_patterns
from .symbolic import declare_input_vars, symbolic_simulate
from .dualrail import DualRail, dual_rail_simulate

__all__ = [
    "ZERO",
    "ONE",
    "X",
    "TernaryValue",
    "eval_gate3",
    "from_bool",
    "from_char",
    "to_char",
    "simulate_ternary",
    "simulate_ternary_vector",
    "random_patterns",
    "exhaustive_patterns",
    "declare_input_vars",
    "symbolic_simulate",
    "DualRail",
    "dual_rail_simulate",
]
