"""Scalar three-valued circuit simulation.

This is the engine behind the paper's baseline check: simulate the
partial implementation with ``X`` on every Black Box output and compare
definite (0/1) outputs against the specification.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..circuit.netlist import Circuit, CircuitError
from .logic3 import TernaryValue, X, eval_gate3

__all__ = ["simulate_ternary", "simulate_ternary_vector"]


def simulate_ternary(circuit: Circuit,
                     assignment: Dict[str, TernaryValue],
                     all_nets: bool = False) -> Dict[str, TernaryValue]:
    """Ternary simulation of ``circuit`` under an input assignment.

    Primary inputs default to nothing (they must all be assigned); free
    nets (Black Box outputs) default to ``X`` when unassigned, which is
    exactly the 0,1,X model of an unknown box.
    """
    values: Dict[str, TernaryValue] = {}
    for net in circuit.inputs:
        try:
            values[net] = assignment[net]
        except KeyError:
            raise CircuitError("missing input value %r" % net) from None
    for net in circuit.free_nets():
        values[net] = assignment.get(net, X)
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        values[net] = eval_gate3(
            gate.gtype, [values[src] for src in gate.inputs])
    if all_nets:
        return values
    return {net: values[net] for net in circuit.outputs}


def simulate_ternary_vector(circuit: Circuit,
                            bits: Sequence[TernaryValue])\
        -> List[TernaryValue]:
    """Positional variant: input values by declaration order."""
    if len(bits) != len(circuit.inputs):
        raise CircuitError("expected %d input values, got %d"
                           % (len(circuit.inputs), len(bits)))
    out = simulate_ternary(circuit, dict(zip(circuit.inputs, bits)))
    return [out[net] for net in circuit.outputs]
