"""Symbolic 0,1,X simulation via a dual-rail BDD encoding.

Each net ``s`` carries a pair of BDDs ``(hi, lo)``:

* ``hi(x)`` — characteristic function of the inputs for which ``s`` is
  definitely 1,
* ``lo(x)`` — inputs for which ``s`` is definitely 0,
* everywhere else ``s`` is ``X`` (unknown, Black-Box dependent).

This simulates the three-terminal MTBDD of the paper with an ordinary
BDD package, and has exactly the detection power of the signal-duplication
method of Jain et al. [10] (the paper makes the same claim for its
implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from ..bdd import Bdd, Function
from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from .logic3 import ONE, X, ZERO, TernaryValue
from .symbolic import declare_input_vars

__all__ = ["DualRail", "dual_rail_simulate"]


@dataclass(frozen=True)
class DualRail:
    """Ternary signal as a pair of characteristic functions."""

    hi: Function
    lo: Function

    def is_consistent(self) -> bool:
        """A signal can never be definitely-1 and definitely-0 at once."""
        return (self.hi & self.lo).is_false

    @property
    def unknown(self) -> Function:
        """Characteristic function of the inputs where the value is X."""
        return ~(self.hi | self.lo)

    def value_at(self, assignment: Dict[str, bool]) -> TernaryValue:
        """Ternary value under a concrete input assignment."""
        if self.hi.evaluate(assignment):
            return ONE
        if self.lo.evaluate(assignment):
            return ZERO
        return X

    def invert(self) -> "DualRail":
        """Ternary NOT: swap the rails."""
        return DualRail(self.lo, self.hi)


def _and2(a: DualRail, b: DualRail) -> DualRail:
    return DualRail(a.hi & b.hi, a.lo | b.lo)


def _or2(a: DualRail, b: DualRail) -> DualRail:
    return DualRail(a.hi | b.hi, a.lo & b.lo)


def _xor2(a: DualRail, b: DualRail) -> DualRail:
    return DualRail((a.hi & b.lo) | (a.lo & b.hi),
                    (a.hi & b.hi) | (a.lo & b.lo))


def _fold(op, args: Sequence[DualRail]) -> DualRail:
    acc = args[0]
    for nxt in args[1:]:
        acc = op(acc, nxt)
    return acc


def _gate_dual(bdd: Bdd, gtype: GateType,
               args: Sequence[DualRail]) -> DualRail:
    if gtype is GateType.AND:
        return _fold(_and2, args)
    if gtype is GateType.OR:
        return _fold(_or2, args)
    if gtype is GateType.NAND:
        return _fold(_and2, args).invert()
    if gtype is GateType.NOR:
        return _fold(_or2, args).invert()
    if gtype is GateType.XOR:
        return _fold(_xor2, args)
    if gtype is GateType.XNOR:
        return _fold(_xor2, args).invert()
    if gtype is GateType.NOT:
        return args[0].invert()
    if gtype is GateType.BUF:
        return args[0]
    if gtype is GateType.CONST0:
        return DualRail(bdd.false, bdd.true)
    if gtype is GateType.CONST1:
        return DualRail(bdd.true, bdd.false)
    raise ValueError("unknown gate type %r" % gtype)


def dual_rail_simulate(circuit: Circuit, bdd: Bdd,
                       nets: Optional[Iterable[str]] = None)\
        -> Dict[str, DualRail]:
    """Symbolic 0,1,X simulation of a (partial) implementation.

    Primary inputs are two-valued (``hi = x``, ``lo = ¬x``); free nets
    (Black Box outputs) are unknown everywhere (``hi = lo = 0``).
    Returns dual-rail pairs for the requested nets (default: outputs).
    """
    input_vars = declare_input_vars(bdd, circuit)
    values: Dict[str, DualRail] = {
        net: DualRail(var, ~var) for net, var in input_vars.items()}
    unknown = DualRail(bdd.false, bdd.false)
    for net in circuit.free_nets():
        values[net] = unknown
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        values[net] = _gate_dual(
            bdd, gate.gtype, [values[src] for src in gate.inputs])
    wanted = list(nets) if nets is not None else circuit.outputs
    return {net: values[net] for net in wanted}
