"""Magnitude comparator generator (MCNC *comp* stand-in).

The paper's *comp* is a 32-input, 3-output comparator; ours compares two
16-bit words and reports less-than / equal / greater-than, which gives
exactly the 32/3 interface.
"""

from __future__ import annotations

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Circuit

__all__ = ["magnitude_comparator", "comp_like"]


def magnitude_comparator(width: int, name: str = "comp") -> Circuit:
    """``width``-bit comparator with ``lt``/``eq``/``gt`` outputs.

    Built as the classic ripple structure from LSB to MSB, so the carved
    Black Boxes cut through a long combinational chain — the situation
    where the paper reports the biggest gap between the output exact and
    input exact checks (*comp*: 67% vs. 90%).
    """
    builder = CircuitBuilder(name)
    a, b = builder.interleaved_inputs(("a", "b"), width)

    lt = builder.const(False)
    eq = builder.const(True)
    for bit_a, bit_b in zip(a, b):  # LSB first
        bit_eq = builder.xnor_(bit_a, bit_b)
        bit_lt = builder.and_(builder.not_(bit_a), bit_b)
        lt = builder.or_(bit_lt, builder.and_(bit_eq, lt))
        eq = builder.and_(bit_eq, eq)
    gt = builder.nor_(lt, eq)

    builder.output(lt, "lt")
    builder.output(eq, "eq")
    builder.output(gt, "gt")
    return builder.build()


def comp_like(name: str = "comp") -> Circuit:
    """16-bit comparator: 32 inputs, 3 outputs, matching the paper row."""
    return magnitude_comparator(16, name=name)
