"""Error-correcting-code circuits (ISCAS C499 / C1355 / C1908 stand-ins).

The ISCAS-85 C499/C1355 pair computes single-error correction over a
32-bit word (C1355 being C499 with XORs expanded to 2-input gates);
C1908 is a 16-bit SEC/DED detector-corrector.  These generators build
Hamming-style circuits of the same family: XOR-tree syndrome computation
followed by a syndrome decoder and a correction plane.
"""

from __future__ import annotations

from typing import List

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Circuit
from ..circuit.transform import expand_to_two_input

__all__ = ["hamming_corrector", "c499_like", "c1355_like", "c1908_like"]


def _check_positions(data_bits: int, check_bits: int) -> List[List[int]]:
    """Hamming coverage: data bit ``d`` is covered by check ``c`` iff bit
    ``c`` of ``d+1`` is set (the classic power-of-two scheme, compacted
    to data-only words)."""
    cover: List[List[int]] = [[] for _ in range(check_bits)]
    for d in range(data_bits):
        code = d + 1
        for c in range(check_bits):
            if (code >> c) & 1:
                cover[c].append(d)
    return cover


def hamming_corrector(data_bits: int, check_bits: int,
                      with_detect: bool = False, flat_xor: bool = False,
                      name: str = "ecc") -> Circuit:
    """Single-error corrector over ``data_bits`` with ``check_bits``.

    Inputs: ``d0..`` (received data), ``c0..`` (received check bits), and
    ``en`` (correction enable).  Outputs: corrected data word, plus — with
    ``with_detect`` — the syndrome and an error flag (SEC/DED style).

    With ``flat_xor`` the syndrome uses single wide XOR/AND gates (like
    the original C499); otherwise balanced 2-input trees (like C1355).
    """
    if (1 << check_bits) - 1 < data_bits:
        raise ValueError("%d check bits cover at most %d data bits"
                         % (check_bits, (1 << check_bits) - 1))
    builder = CircuitBuilder(name)
    data = builder.inputs("d", data_bits)
    check = builder.inputs("c", check_bits)
    enable = builder.input("en")

    def wide_xor(nets: List[str]) -> str:
        if flat_xor and len(nets) > 2:
            return builder.xor_(*nets)
        return builder.xor_tree(nets)

    def wide_and(nets: List[str]) -> str:
        if flat_xor and len(nets) > 2:
            return builder.and_(*nets)
        return builder.and_tree(nets)

    cover = _check_positions(data_bits, check_bits)
    syndrome: List[str] = []
    for c in range(check_bits):
        recomputed = wide_xor([data[d] for d in cover[c]]) \
            if cover[c] else builder.const(False)
        syndrome.append(builder.xor_(recomputed, check[c]))

    corrected: List[str] = []
    for d in range(data_bits):
        code = d + 1
        literals = [syndrome[c] if (code >> c) & 1
                    else builder.not_(syndrome[c])
                    for c in range(check_bits)]
        hit = wide_and(literals)
        flip = builder.and_(hit, enable)
        corrected.append(builder.xor_(data[d], flip))

    builder.outputs(corrected, "q")
    if with_detect:
        builder.outputs(syndrome, "s")
        builder.circuit.add_output(
            builder.or_tree(syndrome, "err"))
    return builder.build()


def c499_like(name: str = "C499") -> Circuit:
    """32-bit single-error corrector (ISCAS *C499* stand-in).

    Interface: 32 data + 6 check + enable = 39 inputs, 32 outputs
    (the paper circuit: 41/32).  Uses wide XOR gates like the original.
    """
    return hamming_corrector(32, 6, with_detect=False, flat_xor=True,
                             name=name)


def c1355_like(name: str = "C1355") -> Circuit:
    """C499 with all gates expanded to fan-in 2 (ISCAS *C1355* relation).

    Functionally equivalent to :func:`c499_like` — the test suite proves
    it with the box-free equivalence checker, mirroring the classic
    C499 ≡ C1355 benchmark exercise.
    """
    return expand_to_two_input(c499_like(name="C499"), name=name)


def c1908_like(name: str = "C1908") -> Circuit:
    """16-bit SEC/DED corrector-detector (ISCAS *C1908* stand-in).

    Interface: 16 data + 5 check + enable = 22 inputs; 16 corrected bits
    + 5 syndrome bits + error flag = 22 outputs (paper circuit: 33/25).
    """
    return hamming_corrector(16, 5, with_detect=True, name=name)
