"""Benchmark circuit generators (stand-ins for the MCNC/ISCAS netlists)."""

from .alu import alu4_like, c880_like, make_alu
from .arithmetic import array_multiplier, parity_circuit, \
    ripple_adder_circuit
from .comparator import comp_like, magnitude_comparator
from .ecc import c1355_like, c1908_like, c499_like, hamming_corrector
from .random_logic import (apex3_like, random_logic, random_pla,
                           routing_logic, term1_like)
from .benchmarks import (BENCHMARK_FACTORIES, BENCHMARK_NAMES,
                         benchmark_circuit, benchmark_suite)
from .paper_examples import (ALL_FIGURES, figure1, figure2a, figure2b,
                             figure3a, figure3b)

__all__ = [
    "make_alu",
    "alu4_like",
    "c880_like",
    "ripple_adder_circuit",
    "array_multiplier",
    "parity_circuit",
    "magnitude_comparator",
    "comp_like",
    "hamming_corrector",
    "c499_like",
    "c1355_like",
    "c1908_like",
    "random_logic",
    "random_pla",
    "routing_logic",
    "apex3_like",
    "term1_like",
    "BENCHMARK_FACTORIES",
    "BENCHMARK_NAMES",
    "benchmark_circuit",
    "benchmark_suite",
    "ALL_FIGURES",
    "figure1",
    "figure2a",
    "figure2b",
    "figure3a",
    "figure3b",
]
