"""Seeded random multi-level logic (MCNC *apex3* / *term1* stand-ins).

The two MCNC circuits are irregular random-looking control logic; we
reproduce the *family* with a seeded generator: a layered DAG of random
gates whose fan-ins prefer recent nets (giving realistic reconvergence)
and whose outputs are guaranteed non-degenerate.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..circuit.builder import CircuitBuilder
from ..circuit.gates import GateType
from ..circuit.netlist import Circuit

__all__ = ["random_logic", "random_pla", "routing_logic",
           "apex3_like", "term1_like"]

_GATE_POOL = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
              GateType.XOR, GateType.XNOR, GateType.AND, GateType.OR]


def random_logic(num_inputs: int, num_outputs: int, num_gates: int,
                 seed: int, name: str = "rand",
                 locality: int = 12) -> Circuit:
    """Random multi-level netlist with the given interface and size.

    ``locality`` biases gate fan-ins toward recently created nets, which
    yields moderate depth and reconvergent fan-out rather than a shallow
    random bipartite mess.  Gates outside every output cone are pruned
    (and regrown), so every gate is at least structurally observable —
    matching real control logic, where dead gates would have been
    optimized away.  Deterministic in ``seed``.
    """
    if num_gates < num_outputs:
        raise ValueError("need at least one gate per output")
    rng = random.Random(seed)
    builder = CircuitBuilder(name)
    pool: List[str] = builder.inputs("x", num_inputs)
    gates_alive = 0

    # 256-pattern random-simulation signatures: new gates that are
    # constant or duplicate an existing signal (a strong indicator of
    # logical redundancy, which would make inserted errors untestable)
    # are rejected, like a synthesis tool would remove them.
    sig_bits = 256
    sig_mask = (1 << sig_bits) - 1
    signatures = {net: rng.getrandbits(sig_bits) for net in pool}
    seen_signatures = set(signatures.values())

    def gate_signature(gtype: GateType, sources: List[str]) -> int:
        sigs = [signatures[s] for s in sources]
        if gtype in (GateType.AND, GateType.NAND):
            value = sigs[0]
            for s in sigs[1:]:
                value &= s
        elif gtype in (GateType.OR, GateType.NOR):
            value = sigs[0]
            for s in sigs[1:]:
                value |= s
        else:
            value = 0
            for s in sigs:
                value ^= s
        if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR):
            value ^= sig_mask
        return value

    def add_gate() -> str:
        for _ in range(30):
            gtype = rng.choice(_GATE_POOL)
            if gtype in (GateType.XOR, GateType.XNOR):
                fanin = 2
            else:
                fanin = rng.choice((2, 2, 2, 3, 3, 4))
            window = pool[-locality:] if len(pool) > locality else pool
            extra = pool if rng.random() < 0.3 else window
            sources: List[str] = []
            while len(sources) < fanin:
                candidate = rng.choice(extra if rng.random() < 0.5
                                       else window)
                if candidate not in sources:
                    sources.append(candidate)
                elif len(set(window)) < fanin:
                    break
            signature = gate_signature(gtype, sources)
            if (signature in (0, sig_mask)
                    or signature in seen_signatures
                    or (signature ^ sig_mask) in seen_signatures):
                continue
            net = builder.gate(gtype, sources)
            signatures[net] = signature
            seen_signatures.add(signature)
            return net
        # Could not find a non-redundant gate; accept the last attempt.
        net = builder.gate(gtype, sources)
        signatures[net] = signature
        seen_signatures.add(signature)
        return net

    # Generate, measure the observable part, and regrow until the
    # pruned circuit reaches the requested gate count.
    while True:
        budget = num_gates - gates_alive
        if budget <= 0:
            break
        for _ in range(budget):
            pool.append(add_gate())
        # Outputs: the most recent nets are the least degenerate.
        circuit = builder.circuit
        outputs = pool[-num_outputs:]
        live = circuit.cone(outputs)
        gates_alive = sum(1 for g in circuit.gates if g.output in live)
        if gates_alive >= num_gates or len(pool) > 20 * num_gates:
            break

    circuit = builder.circuit
    outputs = pool[-num_outputs:]
    live = circuit.cone(outputs)
    pruned = Circuit(name)
    pruned.add_inputs(circuit.inputs)
    for gate in circuit.gates:
        if gate.output in live:
            pruned.add_gate(gate.output, gate.gtype, gate.inputs)
    out_builder = CircuitBuilder(name)
    out_builder.circuit = pruned
    out_builder.reserve(pruned.nets())
    out_builder.outputs(outputs, "f")
    pruned.validate()
    return pruned


def random_pla(num_inputs: int, num_outputs: int, num_products: int,
               seed: int, name: str = "pla",
               literals: Tuple[int, int] = (3, 7),
               products_per_output: Tuple[int, int] = (3, 6)) -> Circuit:
    """Seeded random two-level (PLA) logic with shared product terms.

    The structure of the MCNC PLA benchmarks (*apex3* among them): an
    AND plane of random cubes feeding an OR plane, with products shared
    between outputs.  Every product is kept observable: each one is
    wired into at least one output.
    """
    rng = random.Random(seed)
    builder = CircuitBuilder(name)
    inputs = builder.inputs("x", num_inputs)
    inverters = {}

    def literal(net: str, positive: bool) -> str:
        if positive:
            return net
        if net not in inverters:
            inverters[net] = builder.not_(net)
        return inverters[net]

    products: List[str] = []
    for _ in range(num_products):
        width = rng.randint(*literals)
        chosen = rng.sample(inputs, min(width, num_inputs))
        terms = [literal(net, rng.random() < 0.5) for net in chosen]
        products.append(builder.and_tree(terms))

    # OR plane: random selection per output, then make sure every
    # product is used somewhere.
    selections: List[List[str]] = []
    for _ in range(num_outputs):
        count = rng.randint(*products_per_output)
        selections.append(rng.sample(products, min(count,
                                                   len(products))))
    used = {p for sel in selections for p in sel}
    for orphan in (p for p in products if p not in used):
        selections[rng.randrange(num_outputs)].append(orphan)
    for index, chosen in enumerate(selections):
        builder.output(builder.or_tree(chosen), "f%d" % index)
    return builder.build()


def routing_logic(data_bits: int, num_outputs: int, extra_xor: int,
                  seed: int, name: str = "route") -> Circuit:
    """Seeded routing/steering logic (MCNC *term1* is channel routing).

    A shared one-hot decoder steers one of ``data_bits`` data lines to
    each output (each output sees a different fixed permutation of the
    select space), gated by a per-output mask, a global enable, and a
    polarity bit; ``extra_xor`` additional inputs are XOR-folded onto
    the first outputs.  Highly testable, mux-dominated logic.
    """
    select_bits = max(1, (data_bits - 1).bit_length())
    rng = random.Random(seed)
    builder = CircuitBuilder(name)
    data = builder.inputs("d", data_bits)
    select = builder.inputs("s", select_bits)
    mask = builder.inputs("m", num_outputs)
    enable = builder.input("en")
    invert = builder.input("inv")
    extra = builder.inputs("e", extra_xor)

    select_n = [builder.not_(s) for s in select]
    onehot = []
    for code in range(data_bits):
        terms = [select[b] if (code >> b) & 1 else select_n[b]
                 for b in range(select_bits)]
        onehot.append(builder.and_tree(terms))

    permutations = [rng.sample(range(data_bits), data_bits)
                    for _ in range(num_outputs)]
    for index in range(num_outputs):
        perm = permutations[index]
        steered = builder.or_tree(
            [builder.and_(onehot[perm[i]], data[i])
             for i in range(data_bits)])
        gated = builder.and_(steered, mask[index], enable)
        signal = builder.xor_(gated, invert)
        folded = [extra[k] for k in range(extra_xor)
                  if k % num_outputs == index]
        if folded:
            signal = builder.xor_(signal, *folded)
        builder.output(signal, "f%d" % index)
    return builder.build()


def apex3_like(name: str = "apex3") -> Circuit:
    """54-input / 50-output two-level PLA logic (MCNC *apex3* row)."""
    return random_pla(54, 50, 45, seed=0xA9E3, name=name,
                      literals=(3, 5), products_per_output=(2, 3))


def term1_like(name: str = "term1") -> Circuit:
    """34-input / 10-output routing logic (MCNC *term1* row).

    Interface: 8 data + 3 select + 10 mask + enable + invert + 11 extra
    = 34 inputs, 10 outputs.
    """
    return routing_logic(8, 10, 11, seed=0x7E21, name=name)
