"""ALU-family benchmark generators (stand-ins for MCNC alu4, ISCAS C880).

These are original designs, not copies of the benchmark netlists: the
experiments only need circuits of the same family and comparable
interface size (see DESIGN.md, "Benchmark substitutions").
"""

from __future__ import annotations

from typing import List, Tuple

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Circuit

__all__ = ["make_alu", "alu4_like", "c880_like"]


def _logic_unit(builder: CircuitBuilder, a: List[str], b: List[str])\
        -> Tuple[List[str], List[str], List[str], List[str]]:
    """Bitwise AND/OR/XOR/NOR rails for the function selector."""
    and_bits = [builder.and_(x, y) for x, y in zip(a, b)]
    or_bits = [builder.or_(x, y) for x, y in zip(a, b)]
    xor_bits = [builder.xor_(x, y) for x, y in zip(a, b)]
    nor_bits = [builder.nor_(x, y) for x, y in zip(a, b)]
    return and_bits, or_bits, xor_bits, nor_bits


def make_alu(width: int, name: str = "alu") -> Circuit:
    """``width``-bit ALU with add/and/or/xor, carry, zero and parity.

    Inputs: ``a0.. b0.. sel0 sel1 cin inv`` (2*width + 4).
    Outputs: ``r0..r<width-1> cout zero par neg`` (width + 4).

    ``sel`` chooses among ADD, AND, OR, XOR; ``inv`` complements operand
    ``b`` first (giving subtract-like behaviour for ADD with ``cin``).
    """
    builder = CircuitBuilder(name)
    a, b_raw = builder.interleaved_inputs(("a", "b"), width)
    sel0 = builder.input("sel0")
    sel1 = builder.input("sel1")
    cin = builder.input("cin")
    inv = builder.input("inv")

    b = [builder.mux(inv, bit, builder.not_(bit)) for bit in b_raw]

    sum_bits, cout = builder.ripple_adder(a, b, cin)
    and_bits, or_bits, xor_bits, _ = _logic_unit(builder, a, b)

    result: List[str] = []
    for i in range(width):
        lo = builder.mux(sel0, sum_bits[i], and_bits[i])
        hi = builder.mux(sel0, or_bits[i], xor_bits[i])
        result.append(builder.mux(sel1, lo, hi))

    builder.outputs(result, "r")
    builder.output(cout, "cout")
    zero = builder.nor_(*result, out="zero")
    builder.circuit.add_output(zero)
    par = builder.xor_tree(result, "par")
    builder.circuit.add_output(par)
    builder.output(result[-1], "neg")
    return builder.build()


def alu4_like(name: str = "alu4") -> Circuit:
    """14-input / 8-output 4-bit ALU slice (MCNC *alu4* stand-in).

    Interface matches the paper's table row: 14 inputs, 8 outputs.
    """
    # make_alu(4) has 2*4+4 = 12 inputs and 4+4 = 8 outputs; add a
    # two-bit output mask stage to reach the 14-input interface.
    builder = CircuitBuilder(name)
    a, b_raw = builder.interleaved_inputs(("a", "b"), 4)
    sel0 = builder.input("sel0")
    sel1 = builder.input("sel1")
    cin = builder.input("cin")
    inv = builder.input("inv")
    mask0 = builder.input("mask0")
    mask1 = builder.input("mask1")

    b = [builder.mux(inv, bit, builder.not_(bit)) for bit in b_raw]
    sum_bits, cout = builder.ripple_adder(a, b, cin)
    and_bits, or_bits, xor_bits, _ = _logic_unit(builder, a, b)

    result: List[str] = []
    for i in range(4):
        lo = builder.mux(sel0, sum_bits[i], and_bits[i])
        hi = builder.mux(sel0, or_bits[i], xor_bits[i])
        picked = builder.mux(sel1, lo, hi)
        # Masking: lower half gated by mask0, upper half by mask1.
        gate_bit = mask0 if i < 2 else mask1
        result.append(builder.and_(picked, builder.not_(gate_bit)))

    builder.outputs(result, "r")
    builder.output(cout, "cout")
    builder.circuit.add_output(builder.nor_(*result, out="zero"))
    builder.circuit.add_output(builder.xor_tree(result, "par"))
    builder.output(result[3], "neg")
    return builder.build()


def c880_like(name: str = "C880", width: int = 6) -> Circuit:
    """ALU with mask plane and group flags (ISCAS *C880* stand-in).

    Interface at the default width 6: 6+6+6+5 = 23 inputs; 6 result
    bits, 6 masked bits, 3 group-propagate bits and 6 flags = 21
    outputs.  The paper circuit is a 60-input/26-output 8-bit ALU; the
    family (ALU datapath + control + flag logic) is preserved at a size
    the exact checks handle in pure-Python minutes rather than hours —
    pass ``width=8`` for a closer but slower match.
    """
    if width % 2:
        raise ValueError("width must be even for the group flags")
    builder = CircuitBuilder(name)
    a, b_raw, m = builder.interleaved_inputs(("a", "b", "m"), width)
    sel0 = builder.input("sel0")
    sel1 = builder.input("sel1")
    inv = builder.input("inv")
    en = builder.input("en")
    cin = builder.input("cin")

    b = [builder.mux(inv, bit, builder.not_(bit)) for bit in b_raw]
    sum_bits, cout = builder.ripple_adder(a, b, cin)
    and_bits, or_bits, xor_bits, _ = _logic_unit(builder, a, b)

    result: List[str] = []
    for i in range(width):
        lo = builder.mux(sel0, sum_bits[i], and_bits[i])
        hi = builder.mux(sel0, or_bits[i], xor_bits[i])
        picked = builder.mux(sel1, lo, hi)
        result.append(builder.and_(picked, en))

    masked = [builder.and_(r, mm) for r, mm in zip(result, m)]
    # Carry-lookahead style group propagate signals.
    props = [builder.and_(builder.or_(a[2 * i], b[2 * i]),
                          builder.or_(a[2 * i + 1], b[2 * i + 1]))
             for i in range(width // 2)]

    builder.outputs(result, "r")
    builder.outputs(masked, "mr")
    builder.outputs(props, "p")
    builder.output(cout, "cout")
    builder.circuit.add_output(builder.nor_(*result, out="zero"))
    builder.circuit.add_output(builder.xor_tree(result, "par"))
    builder.output(result[-1], "neg")
    builder.circuit.add_output(
        builder.and_(*masked[:width // 2], out="lowall"))
    builder.circuit.add_output(
        builder.or_(*masked[width // 2:], out="highany"))
    return builder.build()
