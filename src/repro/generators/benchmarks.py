"""The benchmark suite mirroring the paper's Tables 1 and 2 rows."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..circuit.netlist import Circuit
from .alu import alu4_like, c880_like
from .comparator import comp_like
from .ecc import c1355_like, c1908_like, c499_like
from .random_logic import apex3_like, term1_like

__all__ = ["BENCHMARK_FACTORIES", "BENCHMARK_NAMES", "benchmark_circuit",
           "benchmark_suite"]

#: Factories in the row order of the paper's tables.
BENCHMARK_FACTORIES: Dict[str, Callable[[], Circuit]] = {
    "alu4": alu4_like,
    "apex3": apex3_like,
    "C499": c499_like,
    "C880": c880_like,
    "C1355": c1355_like,
    "C1908": c1908_like,
    "comp": comp_like,
    "term1": term1_like,
}

BENCHMARK_NAMES: List[str] = list(BENCHMARK_FACTORIES)


def benchmark_circuit(name: str) -> Circuit:
    """Build one benchmark circuit by its paper-table name."""
    try:
        factory = BENCHMARK_FACTORIES[name]
    except KeyError:
        raise ValueError("unknown benchmark %r (choose from %s)"
                         % (name, ", ".join(BENCHMARK_NAMES))) from None
    return factory()


def benchmark_suite() -> Dict[str, Circuit]:
    """All eight benchmark circuits, keyed by paper-table name."""
    return {name: factory() for name, factory in
            BENCHMARK_FACTORIES.items()}
