"""Reconstructions of the paper's worked examples (Figures 1-3).

The published figures are tiny 8-input, 2-output circuits engineered so
that each rung of the check ladder separates from the previous one.  The
exact gate lists are not fully recoverable from the paper scan, so these
are reconstructions exhibiting *the same documented behaviour*:

* :func:`figure1` — a correct partial implementation with two boxes;
  no check reports an error, and the exact check proves extendability.
* :func:`figure2a` — an error visible to plain 0,1,X simulation.
* :func:`figure2b` — invisible to 0,1,X (``Z ⊕ Z`` reconvergence), found
  by the Z_i local check.
* :func:`figure3a` — two outputs demanding contradictory box functions:
  invisible locally, found by the output exact check.
* :func:`figure3b` — a box that cannot see the input it would need
  (paper: BB must compute ``x8(x6+x7)`` from ``x6, x7`` alone):
  invisible to the output exact check, found by the input exact check.

Each function returns ``(spec, partial)``.
"""

from __future__ import annotations

from typing import Tuple

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Circuit
from ..partial.blackbox import BlackBox, PartialImplementation

__all__ = ["figure1", "figure2a", "figure2b", "figure3a", "figure3b",
           "ALL_FIGURES"]

_INPUTS = ["x%d" % i for i in range(1, 9)]


def _spec_two_output() -> Circuit:
    """Shared specification: f1 = x2·x3 + x4·x5, f2 = x4·x5 + x6."""
    builder = CircuitBuilder("fig_spec")
    builder.circuit.add_inputs(_INPUTS)
    t23 = builder.and_("x2", "x3")
    t45 = builder.and_("x4", "x5")
    builder.output(builder.or_(t23, t45), "f1")
    builder.output(builder.or_(t45, "x6"), "f2")
    return builder.build()


def figure1() -> Tuple[Circuit, PartialImplementation]:
    """Correct two-box partial implementation (extendable).

    Box BB1 must become AND(x4, x5); BB2 must become OR(its inputs).
    """
    spec = _spec_two_output()
    builder = CircuitBuilder("fig1_impl")
    builder.circuit.add_inputs(_INPUTS)
    t23 = builder.and_("x2", "x3")
    builder.output(builder.or_(t23, "z1"), "g1")
    builder.output(builder.buf("z2"), "g2")
    impl = builder.build(validate=False)
    impl.validate(allow_free=True)
    partial = PartialImplementation(impl, [
        BlackBox("BB1", ("x4", "x5"), ("z1",)),
        BlackBox("BB2", ("z1", "x6"), ("z2",)),
    ])
    return spec, partial


def figure2a() -> Tuple[Circuit, PartialImplementation]:
    """Error found already by 0,1,X simulation.

    The kept OR of figure1's first output is replaced by a NOR: for
    x2 = x3 = 1 the implementation output is a definite 0 while the
    specification requires 1 — independent of both boxes.
    """
    spec = _spec_two_output()
    builder = CircuitBuilder("fig2a_impl")
    builder.circuit.add_inputs(_INPUTS)
    t23 = builder.and_("x2", "x3")
    builder.output(builder.nor_(t23, "z1"), "g1")
    builder.output(builder.buf("z2"), "g2")
    impl = builder.build(validate=False)
    impl.validate(allow_free=True)
    partial = PartialImplementation(impl, [
        BlackBox("BB1", ("x4", "x5"), ("z1",)),
        BlackBox("BB2", ("z1", "x6"), ("z2",)),
    ])
    return spec, partial


def figure2b() -> Tuple[Circuit, PartialImplementation]:
    """Error that 0,1,X misses but the Z_i local check finds.

    The first output XORs the box output with itself: ternary
    simulation computes ``X ⊕ X = X`` and sees nothing, while the Z_i
    simulation knows the XOR is constant 0, so for x4 = x5 = 1 (and
    x2·x3 = 0) the implementation is a definite 0 against spec 1.
    """
    spec = _spec_two_output()
    builder = CircuitBuilder("fig2b_impl")
    builder.circuit.add_inputs(_INPUTS)
    t23 = builder.and_("x2", "x3")
    zz = builder.xor_("z1", "z1")
    builder.output(builder.or_(t23, zz), "g1")
    builder.output(builder.or_("z1", "x6"), "g2")
    impl = builder.build(validate=False)
    impl.validate(allow_free=True)
    partial = PartialImplementation(impl, [
        BlackBox("BB1", ("x4", "x5"), ("z1",)),
    ])
    return spec, partial


def figure3a() -> Tuple[Circuit, PartialImplementation]:
    """Cross-output contradiction: output exact separates from local.

    Specification: f1 = x4·x5, f2 = ¬(x4·x5).  Implementation feeds the
    same box output to both primary outputs, so the box would have to be
    x4·x5 and its complement at once.  Each output alone is fine
    (the local check passes); together they are unsatisfiable.
    """
    builder = CircuitBuilder("fig3a_spec")
    builder.circuit.add_inputs(_INPUTS)
    t45 = builder.and_("x4", "x5")
    builder.output(builder.buf(t45), "f1")
    builder.output(builder.not_(t45), "f2")
    spec = builder.build()

    ibuilder = CircuitBuilder("fig3a_impl")
    ibuilder.circuit.add_inputs(_INPUTS)
    ibuilder.output(ibuilder.buf("z1"), "g1")
    ibuilder.output(ibuilder.buf("z1", out="g2"), "g2")
    impl = ibuilder.build(validate=False)
    impl.validate(allow_free=True)
    partial = PartialImplementation(impl, [
        BlackBox("BB1", ("x4", "x5"), ("z1",)),
    ])
    return spec, partial


def figure3b() -> Tuple[Circuit, PartialImplementation]:
    """Input-cone limitation: input exact separates from output exact.

    Specification: f1 = x8·(x6 + x7) (the function named in the paper).
    The box only reads x6 and x7, so no box function can reproduce the
    x8 dependence — but the output exact check, which implicitly lets Z
    depend on *all* inputs, accepts the design.
    """
    builder = CircuitBuilder("fig3b_spec")
    builder.circuit.add_inputs(_INPUTS)
    t67 = builder.or_("x6", "x7")
    builder.output(builder.and_("x8", t67), "f1")
    spec = builder.build()

    ibuilder = CircuitBuilder("fig3b_impl")
    ibuilder.circuit.add_inputs(_INPUTS)
    ibuilder.output(ibuilder.buf("z1"), "g1")
    impl = ibuilder.build(validate=False)
    impl.validate(allow_free=True)
    partial = PartialImplementation(impl, [
        BlackBox("BB1", ("x6", "x7"), ("z1",)),
    ])
    return spec, partial


#: All figures with the check expected to find the error first
#: (None = no error exists).
ALL_FIGURES = {
    "figure1": (figure1, None),
    "figure2a": (figure2a, "symbolic_01x"),
    "figure2b": (figure2b, "local"),
    "figure3a": (figure3a, "output_exact"),
    "figure3b": (figure3b, "input_exact"),
}
