"""Arithmetic generators used by examples and ablation benchmarks."""

from __future__ import annotations

from typing import List

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Circuit

__all__ = ["ripple_adder_circuit", "array_multiplier", "parity_circuit"]


def ripple_adder_circuit(width: int, name: str = "adder") -> Circuit:
    """``width``-bit ripple-carry adder: ``a + b + cin``."""
    builder = CircuitBuilder(name)
    a, b = builder.interleaved_inputs(("a", "b"), width)
    cin = builder.input("cin")
    sums, cout = builder.ripple_adder(a, b, cin)
    builder.outputs(sums, "s")
    builder.output(cout, "cout")
    return builder.build()


def array_multiplier(width: int, name: str = "mult") -> Circuit:
    """``width x width`` unsigned array multiplier.

    Deliberately BDD-hostile for larger widths — the abstraction example
    uses it as the "difficult part" the paper suggests boxing away.
    """
    builder = CircuitBuilder(name)
    a, b = builder.interleaved_inputs(("a", "b"), width)

    products: List[List[str]] = [
        [builder.and_(a[i], b[j]) for i in range(width)]
        for j in range(width)]

    # The accumulator holds bits j .. j+width of the running sum; its
    # top entry is the carry out of the previous row's ripple chain.
    row: List[str] = list(products[0]) + [builder.const(False)]
    outputs: List[str] = [row[0]]
    for j in range(1, width):
        next_row: List[str] = []
        carry = builder.const(False)
        for i in range(width):
            s, carry = builder.full_adder(
                row[i + 1], products[j][i], carry)
            next_row.append(s)
        next_row.append(carry)
        outputs.append(next_row[0])
        row = next_row
    outputs.extend(row[1:])

    builder.outputs(outputs, "p")
    return builder.build()


def parity_circuit(width: int, name: str = "parity") -> Circuit:
    """XOR-tree parity of ``width`` inputs."""
    builder = CircuitBuilder(name)
    xs = builder.inputs("x", width)
    builder.output(builder.xor_tree(xs), "p")
    return builder.build()
