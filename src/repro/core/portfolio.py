"""Deterministic BDD/SAT portfolio racing for the ladder's rungs.

Two engines can decide the symbolic rungs: the BDD implementations of
:mod:`repro.core` and the SAT encodings of :mod:`repro.sat` (dual-rail
miter for the 0,1,X check, CEGAR between two solvers for the output
exact check).  Neither dominates — XOR-heavy cones blow up the BDDs
while deep reconvergence can stall the SAT search — so the portfolio
runs both and keeps the first answer.

A wall-clock race would make the winner depend on machine load, and the
campaign layer promises byte-identical journals for serial, ``--jobs N``
and ``--shards N`` runs.  The race is therefore *iterative deepening
over deterministic step budgets*: each engine in turn gets a
:class:`~repro.resilience.budget.Budget` slice of ``max_steps`` steps
(SAT charges one step per propagated literal, the BDD manager one per
``mk``/``ite`` recursion); an engine that exhausts its slice is parked
and the quantum grows geometrically for the next round.  The winner is
a pure function of the case, not of the hardware, and both engines'
partial work persists between rounds (learned clauses in the solver's
database, memoized subresults in the manager's computed table), so the
race costs at most a small constant factor over the winning engine
alone.

The winning engine lands in ``CheckResult.stats["engine"]`` and is
journaled by the campaign worker (:class:`repro.jobs.CheckOutcome`).
An outer budget (node limit, soft deadline, step cap) is honoured: its
limits are carried into every slice, slice steps are charged back, and
any trip other than slice exhaustion re-raises for the ladder's normal
degradation path.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..circuit.netlist import Circuit
from ..obs import get_tracer
from ..partial.blackbox import PartialImplementation
from ..resilience.budget import Budget, BudgetExceededError
from ..sat.qbf import check_output_exact_sat, check_symbolic_01x_sat
from .common import prepare_context
from .output_exact import output_exact_from_context
from .result import CheckResult
from .symbolic01x import check_symbolic_01x

__all__ = ["STRATEGIES", "BASE_QUANTUM", "GROWTH", "normalize_strategy",
           "race", "race_symbolic_01x", "race_output_exact"]

#: Valid ``strategy=`` values (``None`` is accepted as ``"bdd"``).
STRATEGIES = ("bdd", "portfolio", "sat")

#: First-round step quantum.  Small enough that an easy case never pays
#: more than a trivial amount for the losing engine, large enough that
#: the textbook examples finish in round one.
BASE_QUANTUM = 2048

#: Geometric growth factor between rounds.  With growth g, total steps
#: burnt across all rounds are at most g/(g-1) times the winning slice.
GROWTH = 4

_Attempt = Callable[[Budget], CheckResult]


def normalize_strategy(value: Optional[str]) -> Optional[str]:
    """Map a strategy string to canonical form; validate it.

    Returns ``None`` for the default BDD-only ladder (``None``, ``""``
    or ``"bdd"``), else ``"portfolio"`` or ``"sat"``.
    """
    if value is None or value == "" or value == "bdd":
        return None
    if value not in STRATEGIES:
        raise ValueError("unknown strategy %r (choose from %s)"
                         % (value, ", ".join(STRATEGIES)))
    return value


def _slice_budget(outer: Optional[Budget], quantum: int) -> Budget:
    """A started step-limited slice honouring the outer budget's limits.

    Raises the *outer* budget's error when it is already exhausted, so
    a portfolio rung degrades exactly like a plain rung would.
    """
    wall = nodes = None
    max_steps = quantum
    if outer is not None:
        nodes = outer.max_live_nodes
        if outer.max_steps is not None:
            remaining = outer.max_steps - outer.steps
            if remaining <= 0:
                raise BudgetExceededError(
                    "steps", "portfolio", outer.steps, outer.max_steps,
                    steps=outer.steps, elapsed=outer.elapsed())
            max_steps = min(quantum, remaining)
        if outer.wall_seconds is not None:
            left = outer.wall_seconds - outer.elapsed()
            if left <= 0:
                raise BudgetExceededError(
                    "wall_clock", "portfolio", outer.elapsed(),
                    outer.wall_seconds, steps=outer.steps,
                    elapsed=outer.elapsed())
            wall = left
    return Budget(wall_seconds=wall, max_live_nodes=nodes,
                  max_steps=max_steps).start()


def _charge(outer: Optional[Budget], used: int) -> None:
    """Charge a finished slice's steps back to the outer budget."""
    if outer is None or used == 0:
        return
    outer.steps += used
    outer.next_check_at = outer.steps + outer.check_interval


def race(check_name: str, attempts: List[Tuple[str, _Attempt]],
         budget: Optional[Budget] = None,
         base_quantum: int = BASE_QUANTUM,
         growth: int = GROWTH) -> CheckResult:
    """Race engines round-robin under doubling step quanta.

    ``attempts`` is an ordered list of ``(engine_name, callable)``; each
    callable takes the slice :class:`Budget` and either returns a
    finished :class:`CheckResult` or raises
    :class:`BudgetExceededError`.  A ``"steps"`` trip parks the engine
    until the next (bigger) round; any other resource re-raises.  The
    round-robin order is part of the determinism contract: ties (both
    engines could finish in the same round) go to the earlier engine.
    """
    if not attempts:
        raise ValueError("race needs at least one engine")
    tracer = get_tracer()
    quantum = base_quantum
    rounds = 0
    burnt = 0
    while True:
        for engine, attempt in attempts:
            rounds += 1
            piece = _slice_budget(budget, quantum)
            try:
                result = attempt(piece)
            except BudgetExceededError as exc:
                burnt += piece.steps
                _charge(budget, piece.steps)
                if exc.resource != "steps":
                    raise
                continue
            burnt += piece.steps
            _charge(budget, piece.steps)
            result.check = check_name
            result.stats["engine"] = engine
            result.stats["race_rounds"] = rounds
            result.stats["race_steps"] = burnt
            if tracer is not None:
                tracer.instant("portfolio", check=check_name,
                               winner=engine, rounds=rounds,
                               quantum=quantum, steps=burnt)
            return result
        quantum *= growth


def race_symbolic_01x(spec: Circuit, partial: PartialImplementation,
                      bdd, budget: Optional[Budget] = None,
                      strategy: str = "portfolio") -> CheckResult:
    """The symbolic 0,1,X rung under a strategy.

    ``"portfolio"`` races :func:`check_symbolic_01x_sat` against
    :func:`check_symbolic_01x`; ``"sat"`` runs the SAT engine alone
    (under the outer budget).  The result's ``check`` is always the
    rung name ``"symbolic_01x"`` so caching, journaling and
    aggregation are strategy-agnostic.
    """
    if strategy == "sat":
        result = check_symbolic_01x_sat(spec, partial, budget=budget)
        result.check = "symbolic_01x"
        result.stats["engine"] = "sat"
        return result

    def sat_attempt(piece: Budget) -> CheckResult:
        return check_symbolic_01x_sat(spec, partial, budget=piece)

    def bdd_attempt(piece: Budget) -> CheckResult:
        previous = bdd.budget
        bdd.set_budget(piece)
        try:
            return check_symbolic_01x(spec, partial, bdd)
        finally:
            bdd.set_budget(previous)

    return race("symbolic_01x",
                [("sat", sat_attempt), ("bdd", bdd_attempt)],
                budget=budget)


def race_output_exact(spec: Circuit, partial: PartialImplementation,
                      bdd, ctx_ref: Optional[list] = None,
                      budget: Optional[Budget] = None,
                      strategy: str = "portfolio") -> CheckResult:
    """The output exact rung under a strategy.

    ``"portfolio"`` races the CEGAR 2QBF decision procedure
    (:func:`check_output_exact_sat`) against the BDD quantification of
    :func:`output_exact_from_context`.  The symbolic context is built
    lazily *inside* the BDD engine's slice (its construction is often
    the expensive part) and shared with the caller through ``ctx_ref``,
    a one-slot list: pass ``[ctx_or_None]`` and read the slot back so
    later rungs reuse whatever the race built.
    """
    if ctx_ref is None:
        ctx_ref = [None]
    if strategy == "sat":
        result = check_output_exact_sat(spec, partial, budget=budget)
        result.check = "output_exact"
        result.stats["engine"] = "sat"
        return result

    def sat_attempt(piece: Budget) -> CheckResult:
        return check_output_exact_sat(spec, partial, budget=piece)

    def bdd_attempt(piece: Budget) -> CheckResult:
        previous = bdd.budget
        bdd.set_budget(piece)
        try:
            if ctx_ref[0] is None:
                ctx_ref[0] = prepare_context(spec, partial, bdd)
            return output_exact_from_context(ctx_ref[0])
        finally:
            bdd.set_budget(previous)

    return race("output_exact",
                [("sat", sat_attempt), ("bdd", bdd_attempt)],
                budget=budget)
