"""Check 3: symbolic Z_i simulation with the local check (Lemma 2.1).

One fresh variable ``Z_i`` per Black Box output tracks *where* unknown
values come from, so reconvergence through a box is handled exactly
(unlike 0,1,X, where ``X ⊕ X = X`` loses the correlation — Figure 2(b)).

Lemma 2.1: output ``j`` of the partial implementation is erroneous iff

    ¬( (∀Z g_j) → f_j )  or  ¬( (∀Z ¬g_j) → ¬f_j )

i.e. some input forces ``g_j`` to a definite value that contradicts
``f_j`` regardless of the boxes.  The check runs per output ("local") and
misses errors that only show when outputs are considered together.
"""

from __future__ import annotations

from typing import Optional

from ..bdd import Bdd
from ..circuit.netlist import Circuit
from ..partial.blackbox import PartialImplementation
from .common import SymbolicContext, prepare_context
from .result import CheckResult, Stopwatch

__all__ = ["check_local", "local_check_from_context"]


def local_check_from_context(ctx: SymbolicContext) -> CheckResult:
    """Run the local check on prepared spec/impl output functions."""
    with Stopwatch() as clock:
        z_names = ctx.z_names
        cex = None
        failing = None
        for f, g, spec_net in zip(ctx.spec_outputs, ctx.impl_outputs,
                                  ctx.spec.outputs):
            forced_one = g.forall(z_names)      # g_j = 1 for all boxes
            bad = forced_one & ~f
            if bad.is_false:
                forced_zero = (~g).forall(z_names)
                bad = forced_zero & f
            if not bad.is_false:
                failing = spec_net
                cex = bad.sat_one()
                break
        impl_nodes = ctx.bdd.manager.size(
            [g.node for g in ctx.impl_outputs])
    return CheckResult(
        check="local",
        error_found=failing is not None,
        exact=False,
        counterexample={net: (cex or {}).get(net, False)
                        for net in ctx.spec.inputs}
        if cex is not None else None,
        failing_output=failing,
        seconds=clock.seconds,
        stats={
            "spec_nodes": ctx.bdd.manager.size(
                [f.node for f in ctx.spec_outputs]),
            "impl_nodes": impl_nodes,
            "peak_nodes": ctx.bdd.peak_live_nodes,
        },
    )


def check_local(spec: Circuit, partial: PartialImplementation,
                bdd: Optional[Bdd] = None) -> CheckResult:
    """Z_i simulation + local check (approximate; per-output)."""
    ctx = prepare_context(spec, partial, bdd)
    return local_check_from_context(ctx)
