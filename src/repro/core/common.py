"""Shared plumbing for the symbolic checks.

All symbolic checks need the same ingredients: a BDD with one variable
per primary input, the specification output functions ``f_j``, and — for
the Z_i-based checks — the implementation output functions ``g_j`` over
primary inputs and one fresh ``Z`` variable per Black Box output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bdd import Bdd, Function, default_bdd
from ..circuit.netlist import Circuit, CircuitError
from ..partial.blackbox import PartialImplementation
from ..sim.symbolic import symbolic_simulate

__all__ = ["z_var_name", "box_input_var_name", "SymbolicContext",
           "prepare_context"]


def z_var_name(net: str) -> str:
    """BDD variable standing for the Black Box output net ``net``."""
    return "Z:" + net


def box_input_var_name(box_name: str, position: int) -> str:
    """BDD variable for input pin ``position`` of box ``box_name``."""
    return "I:%s:%d" % (box_name, position)


@dataclass
class SymbolicContext:
    """Everything the Z_i-simulation checks work from.

    ``spec_outputs[j]`` and ``impl_outputs[j]`` correspond positionally;
    ``z_vars`` maps each Black Box output net to its ``Z`` variable name.
    """

    bdd: Bdd
    spec: Circuit
    partial: PartialImplementation
    spec_outputs: List[Function]
    impl_outputs: List[Function]
    z_vars: Dict[str, str]

    @property
    def input_names(self) -> List[str]:
        """Primary input variable names (shared by spec and impl)."""
        return self.spec.inputs

    @property
    def z_names(self) -> List[str]:
        """All Z variable names, in box order."""
        return [self.z_vars[net] for net in self.partial.box_outputs]

    def conditions(self) -> List[Function]:
        """The per-output legality conditions ``cond_j = g_j ↔ f_j``."""
        return [g.equiv(f) for g, f in
                zip(self.impl_outputs, self.spec_outputs)]


def prepare_context(spec: Circuit, partial: PartialImplementation,
                    bdd: Optional[Bdd] = None) -> SymbolicContext:
    """Build BDDs for spec and implementation outputs (Z_i simulation).

    Declares primary-input variables in circuit order, then one ``Z``
    variable per Black Box output in box-topological order.
    """
    if spec.free_nets():
        raise CircuitError("specification must be a complete circuit")
    partial.validate_against(spec)
    if bdd is None:
        bdd = default_bdd()

    spec_fns = symbolic_simulate(spec, bdd)
    spec_outputs = [spec_fns[net] for net in spec.outputs]

    z_vars: Dict[str, str] = {}
    free_functions: Dict[str, Function] = {}
    for net in partial.box_outputs:
        name = z_var_name(net)
        z_vars[net] = name
        free_functions[net] = (bdd.var(name) if bdd.has_var(name)
                               else bdd.add_var(name))
    impl_fns = symbolic_simulate(partial.circuit, bdd,
                                 free_functions=free_functions)
    impl_outputs = [impl_fns[net] for net in partial.circuit.outputs]
    return SymbolicContext(bdd, spec, partial, spec_outputs, impl_outputs,
                           z_vars)
