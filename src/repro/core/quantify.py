"""Quantification scheduling (early quantification / bucket elimination).

Building ``⋀_j f_j`` monolithically and only then quantifying is the
memory peak the paper observes during its exact checks.  Both exact
checks are relational products at heart, so we schedule them:

* :func:`exists_conj` computes ``∃ V . ⋀ f_j`` by eliminating one
  variable at a time, conjoining only the functions that mention it —
  textbook bucket elimination, the image-computation technique the
  paper's reference [14] ("to split or to conjoin") studies.
* The input exact check additionally uses the identity
  ``∀x (¬H ∨ ⋀_j c_j) = ⋀_j ∀x (¬H ∨ c_j)`` to avoid ever building the
  full legality relation (see :mod:`repro.core.input_exact`).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from ..bdd import Bdd, Function
from ..obs import get_tracer

__all__ = ["exists_conj", "forall_disj"]


def _supports(functions: Sequence[Function],
              variables: Set[str]) -> List[Set[str]]:
    return [set(f.support()) & variables for f in functions]


def exists_conj(bdd: Bdd, functions: Iterable[Function],
                variables: Iterable[str]) -> Function:
    """``∃ variables . ⋀ functions`` with early quantification.

    Repeatedly picks the variable whose *bucket* (the functions that
    mention it) is smallest, conjoins the bucket, quantifies out every
    target variable now confined to that product, and feeds the result
    back.  Equivalent to ``conj(functions).exists(variables)`` but with
    far smaller intermediates when each conjunct touches few variables.
    """
    funcs: List[Function] = list(functions)
    if not funcs:
        return bdd.true
    if any(f.is_false for f in funcs):
        return bdd.false
    funcs = [f for f in funcs if not f.is_true] or [bdd.true]
    target: Set[str] = set(variables)
    supports = _supports(funcs, target)
    live = target & set().union(*supports) if supports else set()

    sizes = [f.size() for f in funcs]
    tracer = get_tracer()
    while live:
        # Cheapest variable first: fewest functions, then smallest
        # total, then name — the name tie-break keeps the elimination
        # schedule (and hence the BDD peak) independent of set
        # iteration order, i.e. of interpreter hash randomisation.
        def cost(var: str) -> Tuple[int, int, str]:
            members = [i for i, sup in enumerate(supports) if var in sup]
            return (len(members),
                    sum(sizes[i] for i in members),
                    var)

        var = min(live, key=cost)
        members = [i for i, sup in enumerate(supports) if var in sup]
        if tracer is not None:
            # The elimination schedule is the memory-peak decision the
            # paper's exact checks hinge on; record each pick.
            tracer.instant("quant_pick", var=var,
                           bucket=len(members),
                           bucket_nodes=sum(sizes[i] for i in members),
                           remaining=len(live))
        rest_support: Set[str] = set()
        for i, sup in enumerate(supports):
            if i not in members:
                rest_support |= sup
        product = bdd.conj([funcs[i] for i in members])
        bucket_support = set().union(*(supports[i] for i in members))
        # Quantify out every target variable local to this bucket.
        local = (bucket_support - rest_support) & live
        reduced = product.exists(local)
        if reduced.is_false:
            return bdd.false
        member_set = set(members)
        funcs = [f for i, f in enumerate(funcs)
                 if i not in member_set] + [reduced]
        supports = [sup for i, sup in enumerate(supports)
                    if i not in member_set] \
            + [set(reduced.support()) & target]
        sizes = [s for i, s in enumerate(sizes)
                 if i not in member_set] + [reduced.size()]
        live = target & set().union(*supports)
    return bdd.conj(funcs)


def forall_disj(bdd: Bdd, functions: Iterable[Function],
                variables: Iterable[str]) -> Function:
    """``∀ variables . ⋁ functions`` — the dual of :func:`exists_conj`."""
    negated = [~f for f in functions]
    return ~exists_conj(bdd, negated, variables)
