"""Black Box Equivalence Checking: the paper's five-check ladder.

Public entry points:

* :func:`check_random_patterns` — 0,1,X simulation, random patterns.
* :func:`check_symbolic_01x` — symbolic 0,1,X simulation (Sec. 2.1).
* :func:`check_local` — Z_i simulation + local check (Lemma 2.1).
* :func:`check_output_exact` — output exact check (Lemma 2.2).
* :func:`check_input_exact` — input exact check (eq. (1), Thm. 2.2).
* :func:`run_ladder` / :func:`check_partial_equivalence` — the staged
  methodology the paper recommends.
* :func:`check_equivalence` — classic equivalence for complete circuits.
* :func:`synthesize_boxes` — construct witness box implementations.
* :func:`is_extendable` — brute-force ground truth for tiny instances.
"""

from .result import CheckResult
from .common import SymbolicContext, prepare_context
from .random_pattern import check_random_patterns, \
    ternary_distinguishes
from .symbolic01x import check_symbolic_01x
from .local_check import check_local, local_check_from_context
from .output_exact import (check_output_exact, feasible_inputs,
                           legal_z_relation, output_exact_from_context)
from .quantify import exists_conj, forall_disj
from .input_exact import (build_cond_prime, check_input_exact,
                          input_exact_from_context, prefix_check)
from .ladder import CHECK_ORDER, check_partial_equivalence, run_ladder
from .equivalence import EquivalenceResult, check_equivalence
from .oracle import (count_extensions, exact_two_box_check,
                     find_extension, is_extendable,
                     truth_table_circuit)
from .synthesis import (bdd_to_net, determinize, function_vector_circuit,
                        synthesize_boxes, synthesize_single_box)
from .diagnosis import (DiagnosisResult, locate_single_error,
                        verify_error_location)
from .explain import InputExactScenario, explain_input_exact_failure
from .replay import verify_counterexample

__all__ = [
    "CheckResult",
    "SymbolicContext",
    "prepare_context",
    "check_random_patterns",
    "ternary_distinguishes",
    "check_symbolic_01x",
    "check_local",
    "local_check_from_context",
    "check_output_exact",
    "output_exact_from_context",
    "legal_z_relation",
    "feasible_inputs",
    "exists_conj",
    "forall_disj",
    "check_input_exact",
    "input_exact_from_context",
    "build_cond_prime",
    "prefix_check",
    "CHECK_ORDER",
    "run_ladder",
    "check_partial_equivalence",
    "EquivalenceResult",
    "check_equivalence",
    "is_extendable",
    "find_extension",
    "count_extensions",
    "exact_two_box_check",
    "truth_table_circuit",
    "bdd_to_net",
    "determinize",
    "function_vector_circuit",
    "synthesize_boxes",
    "synthesize_single_box",
    "DiagnosisResult",
    "verify_error_location",
    "locate_single_error",
    "InputExactScenario",
    "explain_input_exact_failure",
    "verify_counterexample",
]
