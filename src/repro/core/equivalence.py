"""Classic combinational equivalence checking for *complete* circuits.

The degenerate, box-free case of the problem — and the subroutine that
validates synthesized Black Box witnesses.  BDD-based (build canonical
forms, compare); a SAT-based miter variant lives in
:mod:`repro.sat.equivalence`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..bdd import Bdd, default_bdd
from ..circuit.netlist import Circuit, CircuitError
from ..sim.symbolic import symbolic_simulate
from .result import Stopwatch

__all__ = ["EquivalenceResult", "check_equivalence"]


@dataclass
class EquivalenceResult:
    """Outcome of a complete-circuit equivalence check."""

    equivalent: bool
    counterexample: Optional[Dict[str, bool]] = None
    failing_output: Optional[str] = None
    seconds: float = 0.0

    def __repr__(self) -> str:
        if self.equivalent:
            return "<EquivalenceResult equivalent>"
        return "<EquivalenceResult differ at %s>" % self.failing_output


def check_equivalence(spec: Circuit, impl: Circuit,
                      bdd: Optional[Bdd] = None) -> EquivalenceResult:
    """BDD equivalence of two complete circuits, output by output.

    Inputs correspond by name (both circuits must declare the same input
    list); outputs correspond positionally.
    """
    if spec.free_nets() or impl.free_nets():
        raise CircuitError("equivalence check needs complete circuits; "
                           "use the Black Box checks for partial ones")
    if list(spec.inputs) != list(impl.inputs):
        raise CircuitError("input lists differ")
    if len(spec.outputs) != len(impl.outputs):
        raise CircuitError("output counts differ")
    if bdd is None:
        bdd = default_bdd()
    result = EquivalenceResult(equivalent=True)
    with Stopwatch() as clock:
        spec_fns = symbolic_simulate(spec, bdd)
        impl_fns = symbolic_simulate(impl, bdd)
        for spec_net, impl_net in zip(spec.outputs, impl.outputs):
            diff = spec_fns[spec_net] ^ impl_fns[impl_net]
            if not diff.is_false:
                cex = diff.sat_one() or {}
                result.equivalent = False
                result.counterexample = {net: cex.get(net, False)
                                         for net in spec.inputs}
                result.failing_output = spec_net
                break
    result.seconds = clock.seconds
    return result
