"""Check 5: the input exact check (Theorem 2.1 / equation (1)).

The output exact check implicitly lets every Black Box observe all
primary inputs.  Real boxes read fixed (often internal) signals; a box
whose inputs cannot distinguish two primary-input vectors must produce
the same output for both (Figure 3(b)).  The input exact check models
this precisely.

Construction (Section 2.2.3, notation as in the paper):

* ``cond(x, Z)`` — the legal-output relation of the output exact check.
* For each box ``BB_j`` (in topological order), ``H_j(x, O_1..O_{j-1},
  I_j) = ⋀_k (i_{j,k} ↔ h_{j,k})`` where ``h_{j,k}`` is the function the
  surrounding circuit computes at the box's k-th input pin — already
  available from the Z_i simulation.
* ``cond'(I, O) = ∀x (⋁_j ¬H_j ∨ cond)`` relates box-input observations
  to legal box outputs.
* The check reports **no error** iff

      ∀I₁ ∃O₁ ∀I₂ ∃O₂ … ∀I_b ∃O_b  cond' = 1           (1)

Theorem 2.2: for one Black Box this is exact — no error implies a
replacement exists (and :mod:`repro.core.synthesis` can build it).  For
b ≥ 2 exactness would need the NP-complete relation decomposition of
Theorem 2.1; equation (1) is a provably at-least-as-strong-as-output-
exact approximation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bdd import Bdd, Function
from ..circuit.netlist import Circuit
from ..partial.blackbox import PartialImplementation
from ..sim.symbolic import symbolic_simulate
from .common import (SymbolicContext, box_input_var_name, prepare_context,
                     z_var_name)
from .output_exact import feasible_inputs
from .quantify import exists_conj
from .result import CheckResult, Stopwatch

__all__ = ["check_input_exact", "input_exact_from_context",
           "build_cond_prime", "prefix_check"]


def _box_input_functions(ctx: SymbolicContext)\
        -> Dict[str, List[Function]]:
    """``h_{j,k}``: the net functions feeding each box, from Z_i sim."""
    free_functions = {net: ctx.bdd.var(ctx.z_vars[net])
                      for net in ctx.partial.box_outputs}
    needed = sorted({net for box in ctx.partial.boxes
                     for net in box.inputs})
    fns = symbolic_simulate(ctx.partial.circuit, ctx.bdd,
                            free_functions=free_functions, nets=needed)
    return {box.name: [fns[net] for net in box.inputs]
            for box in ctx.partial.boxes}


def build_cond_prime(ctx: SymbolicContext)\
        -> Tuple[Function, List[Tuple[List[str], List[str]]]]:
    """Build ``cond'(I, O)`` and the per-box quantifier groups.

    Returns ``(cond', groups)`` where ``groups[j] = (I_j names, O_j
    names)`` in box-topological order.

    The paper identifies the ``∀x`` quantification as the memory peak.
    We never build the monolithic legality relation: since
    ``¬H ∨ ⋀_j cond_j  =  ⋀_j (¬H ∨ cond_j)`` and ``∀`` distributes over
    conjunction,

        cond' = ⋀_j ∀x (¬H ∨ cond_j) = ⋀_j ¬ ∃x (H ∧ ¬cond_j),

    where each ``∃x`` is a scheduled relational product over the factored
    ``H`` (one ``i ↔ h`` equivalence per box input pin).
    """
    bdd = ctx.bdd
    h_fns = _box_input_functions(ctx)

    groups: List[Tuple[List[str], List[str]]] = []
    h_parts: List[Function] = []
    for box in ctx.partial.boxes:
        i_names: List[str] = []
        for position, h in enumerate(h_fns[box.name]):
            name = box_input_var_name(box.name, position)
            i_var = bdd.var(name) if bdd.has_var(name) else bdd.add_var(name)
            i_names.append(name)
            h_parts.append(i_var.equiv(h))
        o_names = [z_var_name(net) for net in box.outputs]
        groups.append((i_names, o_names))

    x_names = ctx.input_names
    cond_prime = bdd.true
    for cond_j in ctx.conditions():
        if cond_j.is_true:
            # Output j matches the spec for every box output — its term
            # ∀x (¬H ∨ 1) is a tautology.  This skip is what makes
            # many-output circuits cheap: only outputs actually touched
            # by a box or an error pay for a relational product.
            continue
        term = ~exists_conj(bdd, h_parts + [~cond_j], x_names)
        cond_prime = cond_prime & term
        if cond_prime.is_false:
            break
    return cond_prime, groups


def prefix_check(cond_prime: Function,
                 groups: List[Tuple[List[str], List[str]]])\
        -> Tuple[bool, int]:
    """Evaluate ``∀I₁∃O₁ … ∀I_b∃O_b cond'``.

    Processes the prefix innermost-first.  Returns ``(holds, stage)``
    where ``stage`` is the 1-based index of the box whose ``∀I_j`` level
    first collapsed to false (0 when the check holds).
    """
    current = cond_prime
    for j in range(len(groups) - 1, -1, -1):
        i_names, o_names = groups[j]
        current = current.exists(o_names)
        current = current.forall(i_names)
        if current.is_false:
            return False, j + 1
    return current.is_true, 0 if current.is_true else 1


def input_exact_from_context(ctx: SymbolicContext,
                             explain: bool = False) -> CheckResult:
    """Run the input exact check on a prepared context.

    With ``explain`` a failing single-box check additionally extracts a
    Figure-3(b)-style scenario (an unwinnable box observation with one
    refuting input vector per candidate output) into ``detail``.
    """
    with Stopwatch() as clock:
        cond_prime, groups = build_cond_prime(ctx)
        holds, stage = prefix_check(cond_prime, groups)
        error = not holds

        cex = None
        detail = "equation (1) %s" % ("holds" if holds else
                                      "violated at box %d" % stage)
        if error:
            # Reuse the output exact condition for a primary-input
            # counterexample when one exists at that level already.
            feasible = feasible_inputs(ctx)
            if not feasible.is_true:
                witness = (~feasible).sat_one() or {}
                cex = {net: witness.get(net, False)
                       for net in ctx.spec.inputs}
            else:
                detail += ("; no single-input witness — error only "
                           "visible through box input cones")
            if explain:
                from .explain import explain_input_exact_failure

                scenario = explain_input_exact_failure(ctx)
                if scenario is not None:
                    detail += "\n" + scenario.describe()
    return CheckResult(
        check="input_exact",
        error_found=error,
        exact=ctx.partial.num_boxes <= 1,
        counterexample=cex,
        failing_output=None,
        detail=detail,
        seconds=clock.seconds,
        stats={
            "spec_nodes": ctx.bdd.manager.size(
                [f.node for f in ctx.spec_outputs]),
            "impl_nodes": ctx.bdd.manager.size(
                [g.node for g in ctx.impl_outputs]),
            "cond_prime_nodes": cond_prime.size(),
            "peak_nodes": ctx.bdd.peak_live_nodes,
        },
    )


def check_input_exact(spec: Circuit, partial: PartialImplementation,
                      bdd: Optional[Bdd] = None,
                      explain: bool = False) -> CheckResult:
    """Z_i simulation + input exact check (equation (1)).

    Exact for a single Black Box (Theorem 2.2); strictly stronger than
    the output exact check for any number of topologically ordered
    boxes.  ``explain`` adds a human-readable failure scenario for
    single-box errors (see :mod:`repro.core.explain`).
    """
    ctx = prepare_context(spec, partial, bdd)
    return input_exact_from_context(ctx, explain=explain)
