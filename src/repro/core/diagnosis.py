"""Error-location verification and single-fault diagnosis.

The paper's third application (Section 1): given an implementation that
fails ordinary equivalence checking and a *hypothesis* about where the
bug is, cut the suspected region into a Black Box and re-run the check.

* If the Black Box check still finds an error, the hypothesis is wrong —
  there are bugs outside the suspected region.
* If it finds none (with the exact single-box check), the suspected
  region provably explains every misbehaviour: some replacement of just
  that region fixes the design.

:func:`locate_single_error` turns this into a diagnosis loop: box each
candidate gate alone and keep the ones whose boxing makes the design
repairable — for a single-fault design this pinpoints the faulty gate
(and its functionally equivalent repair sites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from ..circuit.netlist import Circuit, CircuitError
from ..partial.extraction import _convex_closure, carve
from .input_exact import check_input_exact
from .output_exact import check_output_exact
from .result import CheckResult

__all__ = ["DiagnosisResult", "verify_error_location",
           "locate_single_error"]


@dataclass
class DiagnosisResult:
    """Outcome of an error-location hypothesis check.

    ``confined`` is True when no error remains after boxing the
    suspected gates — i.e. the region explains all misbehaviour.  When
    ``exact`` is also True (single region, input exact check) this is a
    proof; otherwise it is only a failure to refute the hypothesis.
    """

    confined: bool
    exact: bool
    boxed_gates: List[str]
    check_result: CheckResult

    def __repr__(self) -> str:
        status = "confined" if self.confined else "errors elsewhere"
        proof = " (proven)" if self.confined and self.exact else ""
        return "<DiagnosisResult %s%s, %d gates boxed>" % (
            status, proof, len(self.boxed_gates))


def verify_error_location(spec: Circuit, impl: Circuit,
                          suspect_gates: Iterable[str],
                          use_input_exact: bool = True)\
        -> DiagnosisResult:
    """Test the hypothesis "all bugs lie within ``suspect_gates``".

    The suspected gates are convex-closed (a box must not feed back into
    itself through kept logic), carved into one Black Box, and the exact
    check is run.  Raises on gates that do not exist.
    """
    suspects: Set[str] = set(suspect_gates)
    if not suspects:
        raise CircuitError("empty suspect set")
    for net in suspects:
        if not impl.drives(net):
            raise CircuitError("no gate drives suspected net %r" % net)
    closed = _convex_closure(impl, suspects, impl.fanout_map())
    partial = carve(impl, [closed])
    checker = check_input_exact if use_input_exact else check_output_exact
    result = checker(spec, partial)
    return DiagnosisResult(
        confined=not result.error_found,
        exact=result.exact,
        boxed_gates=sorted(closed),
        check_result=result)


def locate_single_error(spec: Circuit, impl: Circuit,
                        candidates: Optional[Sequence[str]] = None)\
        -> List[str]:
    """Gates whose replacement alone could repair the implementation.

    Runs :func:`verify_error_location` for every candidate gate (all
    gates by default) and returns those for which the design becomes
    provably repairable.  For a genuinely single-fault design the true
    fault site is always included; additional hits are alternative
    repair locations.

    An empty result means no single-gate replacement fixes the design —
    the error spans multiple gates.
    """
    if candidates is None:
        candidates = [gate.output for gate in impl.gates]
    sites: List[str] = []
    for net in candidates:
        try:
            diagnosis = verify_error_location(spec, impl, [net])
        except CircuitError:
            # Dead logic cannot influence the outputs, so replacing it
            # cannot repair anything; skip such candidates.
            continue
        if diagnosis.confined:
            sites.append(net)
    return sites
