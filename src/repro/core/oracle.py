"""Brute-force extendability oracle for tiny partial implementations.

Enumerates *every* combination of Black Box truth tables and asks whether
any of them completes the partial implementation into a circuit
equivalent to the specification.  Exponential in everything — its sole
purpose is validating the polynomial-space checks (Theorem 2.2 says the
input exact check must agree with this oracle for one box) on small
instances, in tests and in the ablation benchmarks.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Circuit, CircuitError
from ..partial.blackbox import BlackBox, PartialImplementation

__all__ = ["is_extendable", "find_extension", "truth_table_circuit",
           "count_extensions"]


def truth_table_circuit(num_inputs: int, tables: Sequence[int],
                        name: str = "box_impl") -> Circuit:
    """Circuit for explicit truth tables (one bitmask per output).

    Bit ``r`` of ``tables[k]`` is output ``k``'s value for the input row
    with input ``i`` set to bit ``i`` of ``r``.  Inputs are named
    ``i0..``, outputs ``o0..``.
    """
    builder = CircuitBuilder(name)
    ins = [builder.input("i%d" % i) for i in range(num_inputs)]
    for k, table in enumerate(tables):
        if not 0 <= table < (1 << (1 << num_inputs)):
            raise CircuitError("table %d out of range" % k)
        minterms: List[str] = []
        for row in range(1 << num_inputs):
            if (table >> row) & 1:
                literals = [ins[i] if (row >> i) & 1
                            else builder.not_(ins[i])
                            for i in range(num_inputs)]
                if literals:
                    minterms.append(builder.and_tree(literals))
                else:
                    minterms.append(builder.const(True))
        out = "o%d" % k
        if not minterms:
            builder.const(False, out)
        elif num_inputs == 0:
            builder.buf(minterms[0], out)
        else:
            builder.or_tree(minterms, out)
        builder.circuit.add_output(out)
    return builder.build()


def _box_combinations(boxes: Sequence[BlackBox], limit: int)\
        -> Tuple[int, List[List[Tuple[int, ...]]]]:
    """All truth-table tuples per box; raises if the space exceeds limit."""
    total = 1
    per_box: List[List[Tuple[int, ...]]] = []
    for box in boxes:
        rows = 1 << len(box.inputs)
        per_output = 1 << rows
        combos = per_output ** len(box.outputs)
        total *= combos
        if total > limit:
            raise CircuitError(
                "oracle space %d exceeds limit %d — this oracle is for "
                "tiny boxes only" % (total, limit))
        per_box.append([tuple(tables) for tables in itertools.product(
            range(per_output), repeat=len(box.outputs))])
    return total, per_box


def _simulate_with_tables(partial: PartialImplementation,
                          assignment: Dict[str, bool],
                          tables: Dict[str, Tuple[int, ...]])\
        -> List[bool]:
    """Evaluate the partial implementation with concrete box tables."""
    circuit = partial.circuit
    values: Dict[str, bool] = {net: bool(assignment[net])
                               for net in circuit.inputs}
    owner: Dict[str, BlackBox] = {}
    for box in partial.boxes:
        for net in box.outputs:
            owner[net] = box

    def net_value(net: str) -> bool:
        if net in values:
            return values[net]
        box = owner.get(net)
        if box is not None:
            row = 0
            for i, src in enumerate(box.inputs):
                if net_value(src):
                    row |= 1 << i
            for k, out_net in enumerate(box.outputs):
                values[out_net] = bool(
                    (tables[box.name][k] >> row) & 1)
            return values[net]
        gate = circuit.gate(net)
        from ..circuit.gates import eval_gate
        values[net] = eval_gate(gate.gtype,
                                [net_value(src) for src in gate.inputs])
        return values[net]

    return [net_value(net) for net in circuit.outputs]


def find_extension(spec: Circuit, partial: PartialImplementation,
                   limit: int = 1 << 14)\
        -> Optional[Dict[str, Tuple[int, ...]]]:
    """Search for box truth tables completing the implementation.

    Returns ``{box name: per-output truth tables}`` for the first
    combination equivalent to ``spec``, or ``None`` if none exists.
    """
    partial.validate_against(spec)
    if len(spec.inputs) > 14:
        raise CircuitError("oracle needs <= 14 primary inputs")
    _, per_box = _box_combinations(partial.boxes, limit)
    names = [box.name for box in partial.boxes]
    patterns = []
    for bits in range(1 << len(spec.inputs)):
        patterns.append({net: bool((bits >> i) & 1)
                         for i, net in enumerate(spec.inputs)})
    spec_values = [[spec.evaluate(p)[net] for net in spec.outputs]
                   for p in patterns]
    for combo in itertools.product(*per_box):
        tables = dict(zip(names, combo))
        if all(_simulate_with_tables(partial, p, tables) == want
               for p, want in zip(patterns, spec_values)):
            return tables
    return None


def is_extendable(spec: Circuit, partial: PartialImplementation,
                  limit: int = 1 << 14) -> bool:
    """Ground truth: can the boxes be filled to match the spec?"""
    return find_extension(spec, partial, limit=limit) is not None


def exact_two_box_check(spec: Circuit, partial: PartialImplementation,
                        limit: int = 1 << 12) -> bool:
    """Exact extendability for exactly two boxes (Theorem 2.1, b = 2).

    Far cheaper than full table enumeration: enumerate the *first*
    box's truth tables only (bounded by ``limit``) and decide each
    residual single-box problem with the exact input exact check
    (Theorem 2.2).  Returns True iff an extension exists.

    This also exposes the strictness of equation (1): instances where
    :func:`repro.core.check_input_exact` reports no error while this
    procedure proves unextendability are exactly the paper's
    "approximation for b >= 2" gap.
    """
    from .input_exact import check_input_exact

    if partial.num_boxes != 2:
        raise CircuitError("exact_two_box_check needs exactly 2 boxes")
    first = partial.boxes[0]
    rows = 1 << len(first.inputs)
    per_output = 1 << rows
    combos = per_output ** len(first.outputs)
    if combos > limit:
        raise CircuitError(
            "first box has %d candidate tables > limit %d"
            % (combos, limit))
    for tables in itertools.product(range(per_output),
                                    repeat=len(first.outputs)):
        impl = truth_table_circuit(len(first.inputs), tables,
                                   name=first.name + "_cand")
        residual = partial.substitute_some({first.name: impl})
        verdict = check_input_exact(spec, residual)
        if not verdict.error_found:
            return True      # exact for the remaining single box
    return False


def count_extensions(spec: Circuit, partial: PartialImplementation,
                     limit: int = 1 << 14) -> int:
    """Number of distinct box-table combinations that work (ablations)."""
    partial.validate_against(spec)
    _, per_box = _box_combinations(partial.boxes, limit)
    names = [box.name for box in partial.boxes]
    patterns = [{net: bool((bits >> i) & 1)
                 for i, net in enumerate(spec.inputs)}
                for bits in range(1 << len(spec.inputs))]
    spec_values = [[spec.evaluate(p)[net] for net in spec.outputs]
                   for p in patterns]
    count = 0
    for combo in itertools.product(*per_box):
        tables = dict(zip(names, combo))
        if all(_simulate_with_tables(partial, p, tables) == want
               for p, want in zip(patterns, spec_values)):
            count += 1
    return count
