"""Counterexample replay and validation.

A Black Box counterexample claims: *on this primary input vector, the
implementation differs from the specification no matter what the boxes
output.*  :func:`verify_counterexample` proves the claim by enumerating
all box-output assignments (bounded), making every checker's
counterexamples independently auditable.
"""

from __future__ import annotations

from typing import Dict

from ..circuit.netlist import Circuit, CircuitError
from ..partial.blackbox import PartialImplementation

__all__ = ["verify_counterexample"]


def verify_counterexample(spec: Circuit,
                          partial: PartialImplementation,
                          counterexample: Dict[str, bool],
                          limit: int = 1 << 16) -> bool:
    """True iff the vector defeats every box-output assignment.

    Enumerates all ``2^l`` assignments to the box outputs (``l`` bounded
    by ``limit``); for the counterexample to be valid, each must yield
    at least one primary output differing from the specification.

    This validates counterexamples from *any* rung of the ladder: the
    weaker checks' witnesses are also ∀Z-refutations (soundness), they
    were just found with less work.
    """
    partial.validate_against(spec)
    vector = {net: bool(counterexample[net]) for net in spec.inputs}
    z_nets = partial.box_outputs
    if (1 << len(z_nets)) > limit:
        raise CircuitError(
            "too many box outputs (%d) to enumerate" % len(z_nets))
    spec_out = spec.evaluate(vector)
    want = [spec_out[net] for net in spec.outputs]
    for bits in range(1 << len(z_nets)):
        assignment = dict(vector)
        for index, net in enumerate(z_nets):
            assignment[net] = bool((bits >> index) & 1)
        impl_out = partial.circuit.evaluate(assignment)
        got = [impl_out[net] for net in partial.circuit.outputs]
        if got == want:
            return False
    return True
