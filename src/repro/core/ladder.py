"""The check ladder: run the algorithms in order of increasing accuracy.

The paper's concluding recommendation: "first use 0,1,X based simulation
with only a few random patterns, then symbolic 0,1,X simulation, Z_i
simulation with local check, with output exact check and finally with
input exact check."  Each rung is strictly more accurate and strictly
more expensive; the ladder stops at the first error found.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from ..circuit.netlist import Circuit
from ..obs import ManagerSnapshot, get_tracer, unique_table_summary
from ..partial.blackbox import PartialImplementation
from ..resilience.budget import BudgetExceededError
from .common import prepare_context
from .input_exact import input_exact_from_context
from .local_check import local_check_from_context
from .output_exact import output_exact_from_context
from .portfolio import (normalize_strategy, race_output_exact,
                        race_symbolic_01x)
from .random_pattern import check_random_patterns
from .result import OUTCOME_OK, CheckResult
from .symbolic01x import check_symbolic_01x

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.budget import Budget

__all__ = ["CHECK_ORDER", "run_ladder", "check_partial_equivalence"]

#: Check names from cheapest/least accurate to priciest/most accurate.
CHECK_ORDER = ("random_pattern", "symbolic_01x", "local", "output_exact",
               "input_exact")


def run_ladder(spec: Circuit, partial: PartialImplementation,
               checks: Sequence[str] = CHECK_ORDER,
               patterns: int = 1000,
               seed: Optional[int] = None,
               stop_at_first_error: bool = True,
               lint: bool = True,
               budget: "Optional[Budget]" = None,
               bdd=None,
               backend: Optional[str] = None,
               preflight: bool = False,
               cache=None,
               strategy: Optional[str] = None) -> List[CheckResult]:
    """Run the selected checks in ladder order; returns all results.

    The Z_i-based rungs share one symbolic context (spec and impl BDDs
    are built once).  With ``stop_at_first_error`` (default) the ladder
    short-circuits as the paper suggests.

    ``bdd`` injects the shared manager (default: a fresh
    :func:`~repro.bdd.function.default_bdd`) — callers tuning the
    computed table pass a ``Bdd(cache_config=...)`` here.  Because the
    rungs share it, each result's ``stats`` records that rung's *delta*
    of the computed-table counters (``cache_hits``, ``cache_misses``,
    ``cache_evictions``, ``cache_hit_rate``).

    ``backend`` selects the manager implementation when no explicit
    ``bdd`` is passed: ``"dict"`` (default), ``"arena"`` (the numpy
    struct-of-arrays manager) or ``"legacy"``; ``None`` consults
    ``$REPRO_BDD_BACKEND``.  Requesting the arena without numpy raises
    :class:`repro.bdd.ArenaUnavailableError` (structured diagnostic).
    Verdicts and counterexamples are backend-independent — the
    differential suite enforces this.

    Unless ``lint=False``, the partial implementation is linted first
    and the findings are attached to every result's ``diagnostics`` —
    most importantly ``box-cone-overlap``, which marks the input-exact
    verdict as approximate (Theorem 2.2 exactness needs b = 1).

    With a ``budget``, the symbolic operations are governed: when the
    budget trips mid-rung, the ladder degrades gracefully instead of
    raising — the final result has ``outcome == "inconclusive"`` and
    carries the strongest *completed* rung's verdict plus per-rung
    timings and the kill reason (see :mod:`repro.resilience`).

    With a tracer installed (:func:`repro.obs.set_tracer`), the run
    records one ``ladder`` span with a child span per rung, annotated
    at exit with the verdict and the rung's node/cache numbers; the
    shared manager contributes GC/reorder/budget events.  Tracing
    never changes verdicts, node ids or stats — see
    ``docs/observability.md``.

    ``preflight=True`` runs the static analysis of
    :mod:`repro.analysis.static` first (no BDD involved): a statically
    proven constant mismatch returns a single ``"preflight"`` result
    with a counterexample; a pair whose output cones are all
    discharged returns a single exact ``"preflight"`` OK without
    constructing any BDD; a partial discharge restricts the pair to
    the undecided outputs before the rungs run (verdicts are
    unchanged — discharged cones cannot disagree on any rung), and a
    statically box-free pair stops after the symbolic 0,1,X rung,
    whose miter verdict is then exact.

    ``cache`` (a :class:`repro.analysis.static.CheckCache` or a
    directory path) consults the content-addressed check cache as
    "rung 0": a rung whose (spec hash, impl hash, check, budget
    class) verdict is stored replays it exactly instead of running;
    completed authoritative rungs are stored back.  See
    ``docs/static-analysis.md``.

    ``strategy`` selects the engine for the symbolic 0,1,X and output
    exact rungs: ``None``/``"bdd"`` (default) runs the BDD algorithms,
    ``"sat"`` the SAT encodings of :mod:`repro.sat`, and
    ``"portfolio"`` races both under deterministic step quanta and
    keeps the first answer (:mod:`repro.core.portfolio`).  The winning
    engine is recorded in the rung's ``stats["engine"]``; verdicts are
    engine-independent, and the winner is a pure function of the case,
    so campaign journals stay byte-identical across job counts.  See
    ``docs/sat.md``.
    """
    strategy = normalize_strategy(strategy)
    unknown = set(checks) - set(CHECK_ORDER)
    if unknown:
        raise ValueError("unknown checks: %s" % ", ".join(sorted(unknown)))
    diagnostics: List = []
    if lint:
        from ..analysis.lint import lint_partial

        diagnostics = list(lint_partial(partial))
    ordered = [c for c in CHECK_ORDER if c in checks]
    results: List[CheckResult] = []
    ctx = None
    tracer = get_tracer()

    # --- rung 0: static analysis (hashes, preflight, check cache) ---
    report = None
    static_stats: dict = {}
    spec_digest = impl_digest = None
    run_spec, run_partial = spec, partial
    if cache is not None and not hasattr(cache, "key"):
        from ..analysis.static.cache import CheckCache

        cache = CheckCache(str(cache))
    if preflight or cache is not None:
        from ..analysis.static.hashing import cone_hashes

        spec_hashes = cone_hashes(spec)
        impl_hashes = cone_hashes(partial.circuit, partial.boxes)
        spec_digest = spec_hashes.digest
        impl_digest = impl_hashes.digest
    if preflight:
        from ..analysis.static.preflight import (preflight as
                                                 static_preflight,
                                                 restrict_to_outputs)

        span = None if tracer is None else tracer.span("preflight")
        report = static_preflight(spec, partial, spec_hashes,
                                  impl_hashes)
        if span is not None:
            span.done(**report.summary())
        static_stats = {"static_" + k: v
                        for k, v in report.summary().items()}
        mismatch = report.mismatch
        if mismatch is not None or report.all_discharged:
            if mismatch is not None:
                result = CheckResult(
                    check="preflight", error_found=True,
                    counterexample=report.counterexample,
                    failing_output=report.failing_output,
                    detail="static preflight: %s" % mismatch.reason,
                    seconds=report.seconds)
            else:
                result = CheckResult(
                    check="preflight", error_found=False, exact=True,
                    detail="static preflight: all %d output cones "
                           "discharged" % len(report.verdicts),
                    seconds=report.seconds)
            result.stats.update(static_stats)
            result.diagnostics = list(diagnostics)
            return [result]
        if report.discharged:
            run_spec, run_partial = restrict_to_outputs(
                spec, partial, report.open_indices)

    if bdd is None:
        from ..bdd.backends import default_bdd_for_backend

        bdd = default_bdd_for_backend(backend)()
    elif backend is not None:
        raise ValueError("pass either bdd= or backend=, not both")
    if budget is not None:
        budget.start()
        bdd.set_budget(budget)

    # Observability: with a tracer installed, the shared manager feeds
    # its GC/reorder/budget events into it, the whole ladder becomes
    # one span, and every rung a child span whose exit annotations
    # carry the verdict and this rung's node/cache numbers.  Per-rung
    # counter accounting is a snapshot delta taken inside the span
    # enter/exit — deltas stay exact however many rungs (or ladders)
    # share the manager.
    previous_tracer = None
    ladder_span = None
    if tracer is not None:
        previous_tracer = bdd.tracer
        bdd.set_tracer(tracer)
        ladder_span = tracer.span("ladder", checks=list(ordered),
                                  circuit=spec.name)
    try:
        for name in ordered:
            cache_key = None
            if cache is not None:
                cache_key = cache.key(
                    spec_digest, impl_digest, name,
                    budget=_budget_class(budget),
                    patterns=patterns if name == "random_pattern"
                    else None,
                    seed=seed if name == "random_pattern" else None,
                    variant=",".join(
                        part for part in
                        ("preflight" if report is not None else "",
                         strategy or "") if part))
                payload = cache.get(cache_key)
                if tracer is not None:
                    tracer.instant("check_cache", check=name,
                                   hit=payload is not None)
                if payload is not None:
                    result = _result_from_payload(name, payload)
                    result.stats["check_cache"] = "hit"
                    result.diagnostics = list(diagnostics)
                    results.append(result)
                    if result.error_found and stop_at_first_error:
                        break
                    if report is not None and result.exact \
                            and not result.error_found:
                        break
                    continue
            span = None if tracer is None \
                else tracer.span("rung:%s" % name)
            before = ManagerSnapshot.capture(bdd)
            try:
                if name == "random_pattern":
                    result = check_random_patterns(
                        run_spec, run_partial, patterns=patterns,
                        seed=seed, budget=budget)
                elif name == "symbolic_01x":
                    if strategy is not None:
                        result = race_symbolic_01x(
                            run_spec, run_partial, bdd, budget=budget,
                            strategy=strategy)
                    else:
                        result = check_symbolic_01x(run_spec,
                                                    run_partial, bdd)
                elif name == "output_exact" and strategy is not None:
                    holder = [ctx]
                    result = race_output_exact(
                        run_spec, run_partial, bdd, holder,
                        budget=budget, strategy=strategy)
                    ctx = holder[0]
                else:
                    if ctx is None:
                        ctx = prepare_context(run_spec, run_partial,
                                              bdd)
                    if name == "local":
                        result = local_check_from_context(ctx)
                    elif name == "output_exact":
                        result = output_exact_from_context(ctx)
                    else:
                        result = input_exact_from_context(ctx)
            except BudgetExceededError as exc:
                from ..resilience.degrade import inconclusive_result

                result = inconclusive_result(
                    name, results, exc, peak_nodes=bdd.peak_live_nodes)
                _close_rung(result, before, bdd, span)
                result.diagnostics = list(diagnostics)
                results.append(result)
                break
            if (report is not None and name == "symbolic_01x"
                    and report.box_free and not result.error_found
                    and result.outcome == OUTCOME_OK):
                # The pair is statically box-free: the 0,1,X rung was a
                # plain miter and its verdict is exact — the pricier
                # rungs cannot add anything.
                result.exact = True
                result.detail = ((result.detail + "; ")
                                 if result.detail else "") + \
                    "statically box-free pair: miter verdict is exact"
            if static_stats:
                result.stats.update(static_stats)
            _close_rung(result, before, bdd, span)
            result.diagnostics = list(diagnostics)
            results.append(result)
            if cache is not None and result.outcome == OUTCOME_OK:
                cache.put(cache_key, _result_payload(result))
            if result.error_found and stop_at_first_error:
                break
            if report is not None and result.exact \
                    and not result.error_found:
                break
    finally:
        if tracer is not None:
            if ladder_span is not None:
                ladder_span.done(rungs=len(results))
            bdd.set_tracer(previous_tracer)
    return results


def _budget_class(budget) -> str:
    """Canonical budget-class string for cache keys (see
    :func:`repro.analysis.static.cache.budget_class`)."""
    from ..analysis.static.cache import budget_class

    if budget is None:
        return budget_class()
    return budget_class(getattr(budget, "max_live_nodes", None),
                        getattr(budget, "wall_seconds", None))


def _result_payload(result: CheckResult) -> dict:
    """JSON-safe dict of everything a replayed verdict must restore.

    ``seconds`` and the manager counters in ``stats`` are stored too:
    a cache hit replays the original measurement exactly, which is
    what makes warm-run aggregation byte-identical to the cold run.
    ``diagnostics`` are not stored — the ladder re-lints the model it
    was actually handed.
    """
    return {"error_found": result.error_found,
            "exact": result.exact,
            "counterexample": result.counterexample,
            "failing_output": result.failing_output,
            "detail": result.detail,
            "seconds": result.seconds,
            "outcome": result.outcome,
            "stats": dict(result.stats)}


def _result_from_payload(check: str, payload: dict) -> CheckResult:
    counterexample = payload.get("counterexample")
    if counterexample is not None:
        counterexample = {str(net): bool(bit)
                          for net, bit in counterexample.items()}
    return CheckResult(
        check=check,
        error_found=bool(payload["error_found"]),
        exact=bool(payload.get("exact", False)),
        counterexample=counterexample,
        failing_output=payload.get("failing_output"),
        detail=payload.get("detail", ""),
        seconds=float(payload.get("seconds", 0.0)),
        outcome=payload.get("outcome", OUTCOME_OK),
        stats=dict(payload.get("stats", {})))


def _close_rung(result: CheckResult, before: ManagerSnapshot, bdd,
                span) -> None:
    """Record one rung's manager-counter delta; close its span.

    The rungs share one manager, so per-rung numbers are deltas of the
    monotone counters (``clear_cache`` drops entries, never counts).
    The random-pattern rung never touches the manager; its all-zero
    delta is skipped to keep its stats free of BDD noise.
    """
    after = ManagerSnapshot.capture(bdd)
    delta = before.delta(after)
    touched = (delta["cache_hits"] or delta["cache_misses"]
               or delta["gc_runs"] or delta["reorders"])
    unique = unique_table_summary(bdd)  # {} off the arena backend
    if result.check != "random_pattern" or touched:
        result.stats.update(delta)
        result.stats.update(unique)
    if span is not None:
        span.done(verdict=result.outcome,
                  error_found=result.error_found,
                  seconds=result.seconds,
                  live_nodes=after.live_nodes,
                  peak_nodes=after.peak_nodes,
                  cache_hits=delta["cache_hits"],
                  cache_misses=delta["cache_misses"],
                  gc_runs=delta["gc_runs"],
                  reorders=delta["reorders"],
                  **unique)


def check_partial_equivalence(spec: Circuit,
                              partial: PartialImplementation,
                              patterns: int = 1000,
                              seed: Optional[int] = None,
                              backend: Optional[str] = None)\
        -> CheckResult:
    """One-call API: the final (most accurate) verdict of the ladder."""
    results = run_ladder(spec, partial, patterns=patterns, seed=seed,
                         backend=backend)
    return results[-1]
