"""The check ladder: run the algorithms in order of increasing accuracy.

The paper's concluding recommendation: "first use 0,1,X based simulation
with only a few random patterns, then symbolic 0,1,X simulation, Z_i
simulation with local check, with output exact check and finally with
input exact check."  Each rung is strictly more accurate and strictly
more expensive; the ladder stops at the first error found.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from ..bdd import default_bdd
from ..circuit.netlist import Circuit
from ..obs import ManagerSnapshot, get_tracer
from ..partial.blackbox import PartialImplementation
from ..resilience.budget import BudgetExceededError
from .common import prepare_context
from .input_exact import input_exact_from_context
from .local_check import local_check_from_context
from .output_exact import output_exact_from_context
from .random_pattern import check_random_patterns
from .result import CheckResult
from .symbolic01x import check_symbolic_01x

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.budget import Budget

__all__ = ["CHECK_ORDER", "run_ladder", "check_partial_equivalence"]

#: Check names from cheapest/least accurate to priciest/most accurate.
CHECK_ORDER = ("random_pattern", "symbolic_01x", "local", "output_exact",
               "input_exact")


def run_ladder(spec: Circuit, partial: PartialImplementation,
               checks: Sequence[str] = CHECK_ORDER,
               patterns: int = 1000,
               seed: Optional[int] = None,
               stop_at_first_error: bool = True,
               lint: bool = True,
               budget: "Optional[Budget]" = None,
               bdd=None) -> List[CheckResult]:
    """Run the selected checks in ladder order; returns all results.

    The Z_i-based rungs share one symbolic context (spec and impl BDDs
    are built once).  With ``stop_at_first_error`` (default) the ladder
    short-circuits as the paper suggests.

    ``bdd`` injects the shared manager (default: a fresh
    :func:`~repro.bdd.function.default_bdd`) — callers tuning the
    computed table pass a ``Bdd(cache_config=...)`` here.  Because the
    rungs share it, each result's ``stats`` records that rung's *delta*
    of the computed-table counters (``cache_hits``, ``cache_misses``,
    ``cache_evictions``, ``cache_hit_rate``).

    Unless ``lint=False``, the partial implementation is linted first
    and the findings are attached to every result's ``diagnostics`` —
    most importantly ``box-cone-overlap``, which marks the input-exact
    verdict as approximate (Theorem 2.2 exactness needs b = 1).

    With a ``budget``, the symbolic operations are governed: when the
    budget trips mid-rung, the ladder degrades gracefully instead of
    raising — the final result has ``outcome == "inconclusive"`` and
    carries the strongest *completed* rung's verdict plus per-rung
    timings and the kill reason (see :mod:`repro.resilience`).

    With a tracer installed (:func:`repro.obs.set_tracer`), the run
    records one ``ladder`` span with a child span per rung, annotated
    at exit with the verdict and the rung's node/cache numbers; the
    shared manager contributes GC/reorder/budget events.  Tracing
    never changes verdicts, node ids or stats — see
    ``docs/observability.md``.
    """
    unknown = set(checks) - set(CHECK_ORDER)
    if unknown:
        raise ValueError("unknown checks: %s" % ", ".join(sorted(unknown)))
    diagnostics: List = []
    if lint:
        from ..analysis.lint import lint_partial

        diagnostics = list(lint_partial(partial))
    ordered = [c for c in CHECK_ORDER if c in checks]
    results: List[CheckResult] = []
    ctx = None
    if bdd is None:
        bdd = default_bdd()
    if budget is not None:
        budget.start()
        bdd.set_budget(budget)

    # Observability: with a tracer installed, the shared manager feeds
    # its GC/reorder/budget events into it, the whole ladder becomes
    # one span, and every rung a child span whose exit annotations
    # carry the verdict and this rung's node/cache numbers.  Per-rung
    # counter accounting is a snapshot delta taken inside the span
    # enter/exit — deltas stay exact however many rungs (or ladders)
    # share the manager.
    tracer = get_tracer()
    previous_tracer = None
    ladder_span = None
    if tracer is not None:
        previous_tracer = bdd.tracer
        bdd.set_tracer(tracer)
        ladder_span = tracer.span("ladder", checks=list(ordered),
                                  circuit=spec.name)
    try:
        for name in ordered:
            span = None if tracer is None \
                else tracer.span("rung:%s" % name)
            before = ManagerSnapshot.capture(bdd)
            try:
                if name == "random_pattern":
                    result = check_random_patterns(
                        spec, partial, patterns=patterns, seed=seed,
                        budget=budget)
                elif name == "symbolic_01x":
                    result = check_symbolic_01x(spec, partial, bdd)
                else:
                    if ctx is None:
                        ctx = prepare_context(spec, partial, bdd)
                    if name == "local":
                        result = local_check_from_context(ctx)
                    elif name == "output_exact":
                        result = output_exact_from_context(ctx)
                    else:
                        result = input_exact_from_context(ctx)
            except BudgetExceededError as exc:
                from ..resilience.degrade import inconclusive_result

                result = inconclusive_result(
                    name, results, exc, peak_nodes=bdd.peak_live_nodes)
                _close_rung(result, before, bdd, span)
                result.diagnostics = list(diagnostics)
                results.append(result)
                break
            _close_rung(result, before, bdd, span)
            result.diagnostics = list(diagnostics)
            results.append(result)
            if result.error_found and stop_at_first_error:
                break
    finally:
        if tracer is not None:
            if ladder_span is not None:
                ladder_span.done(rungs=len(results))
            bdd.set_tracer(previous_tracer)
    return results


def _close_rung(result: CheckResult, before: ManagerSnapshot, bdd,
                span) -> None:
    """Record one rung's manager-counter delta; close its span.

    The rungs share one manager, so per-rung numbers are deltas of the
    monotone counters (``clear_cache`` drops entries, never counts).
    The random-pattern rung never touches the manager; its all-zero
    delta is skipped to keep its stats free of BDD noise.
    """
    after = ManagerSnapshot.capture(bdd)
    delta = before.delta(after)
    touched = (delta["cache_hits"] or delta["cache_misses"]
               or delta["gc_runs"] or delta["reorders"])
    if result.check != "random_pattern" or touched:
        result.stats.update(delta)
    if span is not None:
        span.done(verdict=result.outcome,
                  error_found=result.error_found,
                  seconds=result.seconds,
                  live_nodes=after.live_nodes,
                  peak_nodes=after.peak_nodes,
                  cache_hits=delta["cache_hits"],
                  cache_misses=delta["cache_misses"],
                  gc_runs=delta["gc_runs"],
                  reorders=delta["reorders"])


def check_partial_equivalence(spec: Circuit,
                              partial: PartialImplementation,
                              patterns: int = 1000,
                              seed: Optional[int] = None) -> CheckResult:
    """One-call API: the final (most accurate) verdict of the ladder."""
    results = run_ladder(spec, partial, patterns=patterns, seed=seed)
    return results[-1]
