"""Result types shared by all Black Box equivalence checks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.diagnostics import Diagnostic

__all__ = ["CheckResult", "Stopwatch", "OUTCOME_OK", "OUTCOME_TIMEOUT",
           "OUTCOME_ERROR", "OUTCOME_INCONCLUSIVE"]

#: The check ran to completion and its verdict is meaningful.
OUTCOME_OK = "ok"
#: The check was killed at a wall-clock deadline; no verdict.
OUTCOME_TIMEOUT = "timeout"
#: The check (or its setup) raised; no verdict.
OUTCOME_ERROR = "error"
#: The check overran its resource budget and was stopped cooperatively;
#: ``error_found`` carries the strongest *completed* ladder level's
#: verdict (best-effort, never exact), and ``stats`` records the kill
#: reason plus per-level timings (see :mod:`repro.resilience`).
OUTCOME_INCONCLUSIVE = "inconclusive"


@dataclass
class CheckResult:
    """Verdict of one Black Box equivalence check.

    Attributes
    ----------
    check:
        Identifier of the algorithm (``"random_pattern"``,
        ``"symbolic_01x"``, ``"local"``, ``"output_exact"``,
        ``"input_exact"``).
    error_found:
        True when the partial implementation provably cannot be extended
        to a correct complete implementation.
    exact:
        True when this run was *exact*: ``error_found == False``
        additionally guarantees that a correct extension exists.  Only the
        input-exact check with a single Black Box (and the degenerate
        box-free case) sets this.
    counterexample:
        A primary-input assignment on which the implementation provably
        differs from the specification for every box substitution, when
        the failing check can name one.
    failing_output:
        Name of a specification output witnessing the error, when known.
    detail:
        Free-text explanation (e.g. which stage of the input-exact
        quantifier prefix failed).
    seconds:
        Wall-clock time of the check.
    outcome:
        Execution status: ``"ok"`` (ran to completion — the normal
        case), ``"timeout"`` (killed at a campaign deadline),
        ``"error"`` (the check raised) or ``"inconclusive"`` (stopped
        cooperatively at a resource budget; ``error_found`` then holds
        the strongest completed ladder level's verdict).  Only ``"ok"``
        results carry an authoritative ``error_found`` verdict;
        campaign aggregation excludes the others from detection-ratio
        denominators.
    stats:
        Implementation-defined resource counters (BDD sizes, peak nodes,
        pattern counts, ...), mirroring the paper's Tables 1 and 2.
    diagnostics:
        Pre-flight linter findings for the checked model (see
        :mod:`repro.analysis`).  Warnings here qualify the verdict —
        e.g. ``box-cone-overlap`` means a "no error" from the
        input-exact rung is an approximation, not a guarantee.
    """

    check: str
    error_found: bool
    exact: bool = False
    counterexample: Optional[Dict[str, bool]] = None
    failing_output: Optional[str] = None
    detail: str = ""
    seconds: float = 0.0
    outcome: str = OUTCOME_OK
    stats: Dict[str, int] = field(default_factory=dict)
    diagnostics: List["Diagnostic"] = field(default_factory=list)

    def __repr__(self) -> str:
        verdict = "ERROR" if self.error_found else (
            "OK (exact)" if self.exact else "no error found")
        if self.outcome == OUTCOME_INCONCLUSIVE:
            verdict = "INCONCLUSIVE (best effort: %s)" % verdict
        return "<CheckResult %s: %s%s>" % (
            self.check, verdict,
            " @ %s" % self.failing_output if self.failing_output else "")


class Stopwatch:
    """Tiny context manager for wall-clock timing of checks."""

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start
