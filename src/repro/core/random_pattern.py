"""Check 1: non-symbolic 0,1,X simulation with random patterns.

The paper's baseline ("r.p." column, 5000 patterns): simulate the partial
implementation with X at the Black Box outputs; whenever an output is a
*definite* 0/1 that differs from the specification, the error is real —
no box substitution can fix it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..circuit.netlist import Circuit
from ..partial.blackbox import PartialImplementation
from ..sim.logic3 import ONE, ZERO, from_bool
from ..sim.patterns import random_patterns
from ..sim.ternary import simulate_ternary
from .result import CheckResult, Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.budget import Budget

__all__ = ["check_random_patterns", "ternary_distinguishes"]

#: Pattern budget used in the paper's experiments.
DEFAULT_PATTERNS = 5000


def ternary_distinguishes(spec: Circuit, partial: PartialImplementation,
                          assignment: Dict[str, bool]) -> Optional[str]:
    """Does this input pattern prove an error?  Returns the spec output.

    An error is proven when the ternary simulation of the partial
    implementation yields a definite value that differs from the
    specification's value.
    """
    spec_out = spec.evaluate(assignment)
    impl_out = simulate_ternary(
        partial.circuit, {k: from_bool(v) for k, v in assignment.items()})
    for spec_net, impl_net in zip(spec.outputs, partial.circuit.outputs):
        expected = ONE if spec_out[spec_net] else ZERO
        got = impl_out[impl_net]
        if got in (ZERO, ONE) and got != expected:
            return spec_net
    return None


def check_random_patterns(spec: Circuit, partial: PartialImplementation,
                          patterns: int = DEFAULT_PATTERNS,
                          seed: Optional[int] = None,
                          budget: "Optional[Budget]" = None) -> CheckResult:
    """Random-pattern 0,1,X check (approximate, cheapest).

    Never reports a false error; misses any error that needs either a
    specific rare pattern or reasoning beyond the X abstraction.  An
    optional ``budget`` is checkpointed every few hundred patterns so a
    wall-clock deadline can interrupt very large pattern counts.
    """
    partial.validate_against(spec)
    with Stopwatch() as clock:
        failing = None
        cex = None
        tried = 0
        for assignment in random_patterns(spec.inputs, patterns,
                                          seed=seed):
            if budget is not None and tried % 256 == 0:
                budget.checkpoint("random_pattern")
            tried += 1
            failing = ternary_distinguishes(spec, partial, assignment)
            if failing is not None:
                cex = assignment
                break
    return CheckResult(
        check="random_pattern",
        error_found=failing is not None,
        exact=False,
        counterexample=cex,
        failing_output=failing,
        detail="%d of %d patterns simulated" % (tried, patterns),
        seconds=clock.seconds,
        stats={"patterns": tried},
    )
