"""Check 1: non-symbolic 0,1,X simulation with random patterns.

The paper's baseline ("r.p." column, 5000 patterns): simulate the partial
implementation with X at the Black Box outputs; whenever an output is a
*definite* 0/1 that differs from the specification, the error is real —
no box substitution can fix it.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..circuit.netlist import Circuit
from ..partial.blackbox import PartialImplementation
from ..sim.bitparallel import (lanes_to_int, pack_patterns,
                               pack_patterns_lanes, simulate_lanes,
                               simulate_packed)
from ..sim.logic3 import ONE, ZERO, from_bool
from ..sim.patterns import random_patterns
from ..sim.ternary import simulate_ternary
from .result import CheckResult, Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.budget import Budget

__all__ = ["check_random_patterns", "ternary_distinguishes"]

#: Pattern budget used in the paper's experiments.
DEFAULT_PATTERNS = 5000

#: Patterns per packed batch.  256 keeps the bigint masks one cache
#: line wide-ish and matches the scalar engine's budget-checkpoint
#: cadence, so both engines observe deadlines at the same points.
_CHUNK = 256

#: Patterns per uint64-lanes batch.  Lanes pay a fixed numpy dispatch
#: cost per gate, amortised over the batch width, so they want much
#: wider batches than bigints; chunking (rather than one giant batch)
#: still bounds memory and keeps budget checkpoints flowing.  Chunk
#: size never changes the verdict: the first failing pattern is the
#: globally lowest-index one however the stream is sliced.
_LANE_CHUNK = 4096


def ternary_distinguishes(spec: Circuit, partial: PartialImplementation,
                          assignment: Dict[str, bool]) -> Optional[str]:
    """Does this input pattern prove an error?  Returns the spec output.

    An error is proven when the ternary simulation of the partial
    implementation yields a definite value that differs from the
    specification's value.
    """
    spec_out = spec.evaluate(assignment)
    impl_out = simulate_ternary(
        partial.circuit, {k: from_bool(v) for k, v in assignment.items()})
    for spec_net, impl_net in zip(spec.outputs, partial.circuit.outputs):
        expected = ONE if spec_out[spec_net] else ZERO
        got = impl_out[impl_net]
        if got in (ZERO, ONE) and got != expected:
            return spec_net
    return None


def _scalar_sweep(spec: Circuit, partial: PartialImplementation,
                  patterns: int, seed: Optional[int],
                  budget: "Optional[Budget]")\
        -> Tuple[Optional[str], Optional[Dict[str, bool]], int]:
    """Reference engine: one full netlist interpretation per pattern."""
    tried = 0
    for assignment in random_patterns(spec.inputs, patterns, seed=seed):
        if budget is not None and tried % _CHUNK == 0:
            budget.checkpoint("random_pattern")
        tried += 1
        failing = ternary_distinguishes(spec, partial, assignment)
        if failing is not None:
            return failing, assignment, tried
    return None, None, tried


def _packed_sweep(spec: Circuit, partial: PartialImplementation,
                  patterns: int, seed: Optional[int],
                  budget: "Optional[Budget]")\
        -> Tuple[Optional[str], Optional[Dict[str, bool]], int]:
    """Bit-parallel engine: whole pattern batches per netlist sweep.

    Consumes the very same pattern stream as :func:`_scalar_sweep` and
    reports the same first failing pattern, the same failing output
    (first in declaration order for that pattern) and the same tried
    count — only the wall clock differs.
    """
    source = random_patterns(spec.inputs, patterns, seed=seed)
    output_pairs = list(zip(spec.outputs, partial.circuit.outputs))
    tried = 0
    while tried < patterns:
        if budget is not None:
            budget.checkpoint("random_pattern")
        chunk = list(itertools.islice(source, _CHUNK))
        if not chunk:
            break
        packed = pack_patterns(spec.inputs, chunk)
        spec_out = simulate_packed(spec, packed, len(chunk))
        impl_out = simulate_packed(partial.circuit, packed, len(chunk))
        combined = 0
        errors = []
        for spec_net, impl_net in output_pairs:
            spec1, spec0 = spec_out[spec_net]
            impl1, impl0 = impl_out[impl_net]
            # Definite disagreement: the implementation is a hard 0/1
            # that contradicts the specification's value.
            err = (spec1 & impl0) | (spec0 & impl1)
            errors.append((spec_net, err))
            combined |= err
        if combined:
            first = (combined & -combined).bit_length() - 1
            bit = 1 << first
            for spec_net, err in errors:
                if err & bit:
                    return spec_net, chunk[first], tried + first + 1
        tried += len(chunk)
    return None, None, tried


def _lanes_sweep(spec: Circuit, partial: PartialImplementation,
                 patterns: int, seed: Optional[int],
                 budget: "Optional[Budget]")\
        -> Tuple[Optional[str], Optional[Dict[str, bool]], int]:
    """uint64-lanes engine: numpy word arrays instead of bigint masks.

    Same stream, same verdict, same counterexample and tried count as
    :func:`_packed_sweep`; only the mask representation (and the batch
    width it makes affordable) differs.
    """
    source = random_patterns(spec.inputs, patterns, seed=seed)
    output_pairs = list(zip(spec.outputs, partial.circuit.outputs))
    tried = 0
    while tried < patterns:
        if budget is not None:
            budget.checkpoint("random_pattern")
        chunk = list(itertools.islice(source, _LANE_CHUNK))
        if not chunk:
            break
        packed = pack_patterns_lanes(spec.inputs, chunk)
        spec_out = simulate_lanes(spec, packed, len(chunk))
        impl_out = simulate_lanes(partial.circuit, packed, len(chunk))
        combined = None
        errors = []
        for spec_net, impl_net in output_pairs:
            spec1, spec0 = spec_out[spec_net]
            impl1, impl0 = impl_out[impl_net]
            err = (spec1 & impl0) | (spec0 & impl1)
            errors.append((spec_net, err))
            combined = err if combined is None else combined | err
        if combined is not None and combined.any():
            comb = lanes_to_int(combined)
            first = (comb & -comb).bit_length() - 1
            for spec_net, err in errors:
                if int(err[first >> 6]) >> (first & 63) & 1:
                    return spec_net, chunk[first], tried + first + 1
        tried += len(chunk)
    return None, None, tried


def check_random_patterns(spec: Circuit, partial: PartialImplementation,
                          patterns: int = DEFAULT_PATTERNS,
                          seed: Optional[int] = None,
                          budget: "Optional[Budget]" = None,
                          engine: str = "packed") -> CheckResult:
    """Random-pattern 0,1,X check (approximate, cheapest).

    Never reports a false error; misses any error that needs either a
    specific rare pattern or reasoning beyond the X abstraction.  An
    optional ``budget`` is checkpointed every few hundred patterns so a
    wall-clock deadline can interrupt very large pattern counts.

    ``engine`` selects the simulation backend: ``"packed"`` (default)
    sweeps the netlist once per 256-pattern batch with bit-parallel
    bigint mask arithmetic; ``"lanes"`` is the same dual-rail sweep on
    numpy uint64 word arrays with much wider batches (requires numpy);
    ``"scalar"`` is the historic one-pattern-at-a-time interpreter,
    kept as the differential reference and as the before/after
    baseline in ``benchmarks/run_bench.py``.  All three consume the
    identical pattern stream and return identical verdicts,
    counterexamples and tried counts.
    """
    partial.validate_against(spec)
    if engine == "packed":
        sweep = _packed_sweep
    elif engine == "lanes":
        sweep = _lanes_sweep
    elif engine == "scalar":
        sweep = _scalar_sweep
    else:
        raise ValueError("unknown engine %r (choose 'packed', 'lanes' "
                         "or 'scalar')" % engine)
    with Stopwatch() as clock:
        failing, cex, tried = sweep(spec, partial, patterns, seed,
                                    budget)
    return CheckResult(
        check="random_pattern",
        error_found=failing is not None,
        exact=False,
        counterexample=cex,
        failing_output=failing,
        detail="%d of %d patterns simulated" % (tried, patterns),
        seconds=clock.seconds,
        stats={"patterns": tried, "engine": engine},
    )
