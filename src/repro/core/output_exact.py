"""Check 4: the output exact check (Lemma 2.2).

Combines the per-output legality conditions ``cond_j = g_j ↔ f_j`` and
asks whether some input assignment falsifies *at least one* condition for
*every* Black Box output assignment:

    error  iff  ∃x ∀Z ⋁_j ¬cond_j
           iff  ¬( ∀x ∃Z ⋀_j cond_j )

Detects cross-output conflicts (Figure 3(a)) that the local check misses.
Same detection power as Günther et al. [9], computed without a Boolean
relation representation of the whole circuit.  Exact if the Black Boxes
were allowed to read all primary inputs — which real boxes are not; see
the input exact check.
"""

from __future__ import annotations

from typing import Optional

from ..bdd import Bdd, Function
from ..circuit.netlist import Circuit
from ..partial.blackbox import PartialImplementation
from .common import SymbolicContext, prepare_context
from .quantify import exists_conj
from .result import CheckResult, Stopwatch

__all__ = ["check_output_exact", "output_exact_from_context",
           "legal_z_relation", "feasible_inputs"]


def legal_z_relation(ctx: SymbolicContext) -> Function:
    """``cond(x, Z) = ⋀_j (g_j ↔ f_j)`` — the legal-output relation.

    Characteristic function of the Black-Box output assignments that make
    every implementation output match the specification for input ``x``.
    Can be large; the checks themselves use scheduled quantification and
    never build it — this is for witness extraction and the oracle tests.
    """
    return ctx.bdd.conj(ctx.conditions())


def feasible_inputs(ctx: SymbolicContext) -> Function:
    """``∃Z ⋀_j cond_j``: inputs for which some box output is legal.

    Computed with early quantification (bucket elimination over the Z
    variables) so the full legality relation is never materialized.
    """
    return exists_conj(ctx.bdd, ctx.conditions(), ctx.z_names)


def output_exact_from_context(ctx: SymbolicContext) -> CheckResult:
    """Run the output exact check on a prepared context."""
    with Stopwatch() as clock:
        feasible = feasible_inputs(ctx)
        error = not feasible.is_true
        cex = None
        if error:
            cex = (~feasible).sat_one() or {}
    return CheckResult(
        check="output_exact",
        error_found=error,
        exact=False,
        counterexample={net: cex.get(net, False)
                        for net in ctx.spec.inputs} if error else None,
        failing_output=None,
        detail="∀x∃Z ⋀ cond_j %s" % ("violated" if error else "holds"),
        seconds=clock.seconds,
        stats={
            "spec_nodes": ctx.bdd.manager.size(
                [f.node for f in ctx.spec_outputs]),
            "impl_nodes": ctx.bdd.manager.size(
                [g.node for g in ctx.impl_outputs]),
            "cond_nodes": feasible.size(),
            "peak_nodes": ctx.bdd.peak_live_nodes,
        },
    )


def check_output_exact(spec: Circuit, partial: PartialImplementation,
                       bdd: Optional[Bdd] = None) -> CheckResult:
    """Z_i simulation + output exact check (Lemma 2.2)."""
    ctx = prepare_context(spec, partial, bdd)
    return output_exact_from_context(ctx)
