"""Human-readable witnesses for input exact failures.

When the input exact check rejects a design that the output exact check
accepts, there is *no single* distinguishing input vector — the conflict
is information-theoretic: some box, observing one value at its input
pins, would have to produce different outputs for different primary
input vectors behind that observation.  (The paper argues exactly this
for Figure 3(b): for x6 = x7 = 1 the box sees the same pins whether
x8 = 0 or x8 = 1, but the two cases need different box outputs.)

:func:`explain_input_exact_failure` extracts such a scenario for the
single-box case: the pin observation, and for every candidate box
output value a primary-input vector on which that value is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .common import SymbolicContext, box_input_var_name
from .input_exact import build_cond_prime
from .output_exact import legal_z_relation

__all__ = ["InputExactScenario", "explain_input_exact_failure"]


@dataclass
class InputExactScenario:
    """One unwinnable box observation.

    ``pin_values`` maps the box's input nets to the observed values;
    ``refutations`` maps each candidate output assignment (as a tuple of
    bits, in box-output order) to a primary-input vector consistent with
    the observation on which that output assignment produces a wrong
    primary output.
    """

    box: str
    pin_values: Dict[str, bool]
    refutations: Dict[Tuple[bool, ...], Dict[str, bool]] = \
        field(default_factory=dict)

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        lines = ["Black Box %r observes %s at its inputs; every reply "
                 "fails:" % (self.box,
                             {k: int(v)
                              for k, v in self.pin_values.items()})]
        for output_bits, vector in sorted(self.refutations.items()):
            lines.append("  output %s is wrong for primary inputs %s"
                         % ("".join(str(int(b)) for b in output_bits),
                            {k: int(v)
                             for k, v in sorted(vector.items())}))
        return "\n".join(lines)


def explain_input_exact_failure(ctx: SymbolicContext)\
        -> Optional[InputExactScenario]:
    """Extract a Figure-3(b)-style scenario for a failing single box.

    Returns ``None`` when the design has more than one box, when the
    check in fact passes, or when the box interface is too wide to
    enumerate (more than 16 outputs).
    """
    if ctx.partial.num_boxes != 1:
        return None
    box = ctx.partial.boxes[0]
    if len(box.outputs) > 16:
        return None
    bdd = ctx.bdd
    cond_prime, groups = build_cond_prime(ctx)
    i_names, o_names = groups[0]

    # A pin observation the box cannot answer.
    unwinnable = ~(cond_prime.exists(o_names))
    observation = unwinnable.sat_one()
    if observation is None:
        return None
    pins = {name: observation.get(name, False) for name in i_names}

    # Consistency of x with the observation, and legality of outputs.
    h_fns = {}
    from .input_exact import _box_input_functions

    for position, h in enumerate(_box_input_functions(ctx)[box.name]):
        h_fns[box_input_var_name(box.name, position)] = h
    consistent = bdd.true
    for name, value in pins.items():
        h = h_fns[name]
        consistent = consistent & (h if value else ~h)
    cond = legal_z_relation(ctx)

    scenario = InputExactScenario(
        box=box.name,
        pin_values={net: pins[box_input_var_name(box.name, k)]
                    for k, net in enumerate(box.inputs)})
    for bits in range(1 << len(box.outputs)):
        output_bits = tuple(bool((bits >> k) & 1)
                            for k in range(len(box.outputs)))
        choice = {ctx.z_vars[net]: output_bits[k]
                  for k, net in enumerate(box.outputs)}
        bad = consistent & ~(cond.restrict(choice))
        witness = bad.sat_one()
        # The observation came from ¬∃O cond', which by construction
        # means every output choice has a refuting consistent x.
        assert witness is not None, "unwinnable observation had a reply"
        scenario.refutations[output_bits] = {
            net: witness.get(net, False) for net in ctx.spec.inputs}
    return scenario
