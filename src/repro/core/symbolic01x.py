"""Check 2: symbolic 0,1,X simulation (paper Section 2.1).

Same abstraction as the random-pattern check, but for *all* input vectors
at once via the dual-rail BDD encoding.  Detection power is exactly that
of Jain et al. [10] (the paper's implementation differs — MTBDD-style vs.
signal duplication — but reports errors in the same cases; ours is a
third implementation of the same check).
"""

from __future__ import annotations

from typing import Optional

from ..bdd import Bdd, default_bdd
from ..circuit.netlist import Circuit, CircuitError
from ..partial.blackbox import PartialImplementation
from ..sim.dualrail import dual_rail_simulate
from ..sim.symbolic import symbolic_simulate
from .result import CheckResult, Stopwatch

__all__ = ["check_symbolic_01x"]


def check_symbolic_01x(spec: Circuit, partial: PartialImplementation,
                       bdd: Optional[Bdd] = None) -> CheckResult:
    """Symbolic 0,1,X check (approximate).

    Reports an error iff some input makes an implementation output
    *definitely* 0/1 (independent of all boxes, under the X abstraction)
    while the specification requires the opposite value.
    """
    if spec.free_nets():
        raise CircuitError("specification must be a complete circuit")
    partial.validate_against(spec)
    if bdd is None:
        bdd = default_bdd()
    with Stopwatch() as clock:
        spec_fns = symbolic_simulate(spec, bdd)
        rails = dual_rail_simulate(partial.circuit, bdd)
        cex = None
        failing = None
        for spec_net, impl_net in zip(spec.outputs,
                                      partial.circuit.outputs):
            f = spec_fns[spec_net]
            rail = rails[impl_net]
            mismatch = (rail.hi & ~f) | (rail.lo & f)
            if not mismatch.is_false:
                failing = spec_net
                cex = mismatch.sat_one()
                break
        impl_nodes = bdd.manager.size(
            [rails[n].hi.node for n in partial.circuit.outputs]
            + [rails[n].lo.node for n in partial.circuit.outputs])
    return CheckResult(
        check="symbolic_01x",
        error_found=failing is not None,
        exact=False,
        counterexample=_complete(cex, spec) if cex is not None else None,
        failing_output=failing,
        seconds=clock.seconds,
        stats={
            "spec_nodes": bdd.manager.size(
                [spec_fns[n].node for n in spec.outputs]),
            "impl_nodes": impl_nodes,
            "peak_nodes": bdd.peak_live_nodes,
        },
    )


def _complete(cex: dict, spec: Circuit) -> dict:
    """Fill don't-care inputs with False for a total counterexample."""
    return {net: cex.get(net, False) for net in spec.inputs}
