"""Witness synthesis: build concrete Black Box implementations.

When the input exact check passes, Theorem 2.1 (for one box: Theorem 2.2)
promises an extension of the partial implementation exists.  This module
*constructs* one: it determinizes the relation ``cond'(I, O)`` into one
Boolean function per box output and converts those BDDs back into a
netlist — turning the paper's existence proof into an executable design
step (and giving the test suite a strong end-to-end validation: plug the
witness in and run ordinary equivalence checking).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..bdd import Bdd, Function
from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Circuit, CircuitError
from ..partial.blackbox import PartialImplementation
from .common import SymbolicContext, box_input_var_name, \
    prepare_context
from .input_exact import build_cond_prime

__all__ = ["bdd_to_net", "function_vector_circuit", "determinize",
           "synthesize_boxes", "synthesize_single_box"]


def bdd_to_net(builder: CircuitBuilder, function: Function,
               var_to_net: Dict[str, str]) -> str:
    """Convert a BDD into multiplexer gates; returns the root net.

    Shared BDD nodes become shared nets, so circuit size is linear in the
    BDD size.  ``var_to_net`` maps every support variable to an existing
    circuit net.
    """
    mgr = function.bdd.manager
    memo: Dict[int, str] = {}

    def build(node: int) -> str:
        cached = memo.get(node)
        if cached is not None:
            return cached
        if mgr.is_terminal(node):
            net = builder.const(node == 1)
        else:
            var_name = mgr.var_name(mgr.node_var(node))
            try:
                sel = var_to_net[var_name]
            except KeyError:
                raise CircuitError(
                    "no net mapped for BDD variable %r" % var_name
                ) from None
            lo = build(mgr.node_low(node))
            hi = build(mgr.node_high(node))
            net = builder.mux(sel, lo, hi)
        memo[node] = net
        return net

    return build(function.node)


def function_vector_circuit(functions: List[Function],
                            input_vars: List[str],
                            name: str = "box_impl") -> Circuit:
    """Netlist computing a vector of BDDs over the given variables.

    Inputs are named ``i0..``, in the order of ``input_vars``; outputs
    ``o0..``, one per function.
    """
    builder = CircuitBuilder(name)
    var_to_net = {}
    for position, var in enumerate(input_vars):
        var_to_net[var] = builder.input("i%d" % position)
    for k, function in enumerate(functions):
        root = bdd_to_net(builder, function, var_to_net)
        builder.buf(root, "o%d" % k)
        builder.circuit.add_output("o%d" % k)
    return builder.build()


def determinize(relation: Function, output_vars: List[str])\
        -> Optional[List[Function]]:
    """Extract functions ``o_k = f_k(rest)`` from a relation.

    Requires ``∀rest ∃outputs relation``; returns ``None`` otherwise.
    Prefers 0 where the relation allows both values.
    """
    if not relation.exists(output_vars).is_true:
        return None
    bdd = relation.bdd
    current = relation
    functions: List[Function] = []
    for k, var in enumerate(output_vars):
        rest = output_vars[k + 1:]
        narrowed = current.exists(rest) if rest else current
        # Choose 1 exactly where 0 is illegal.
        f_k = ~narrowed.restrict({var: False})
        functions.append(f_k)
        current = current.compose({var: f_k})
    return functions


def synthesize_boxes(spec: Circuit, partial: PartialImplementation,
                     bdd: Optional[Bdd] = None, verify: bool = True,
                     minimize: bool = False)\
        -> Optional[Dict[str, Circuit]]:
    """Concrete implementations for all Black Boxes, or ``None``.

    For one box this succeeds if and only if the partial implementation
    is extendable (Theorem 2.2).  For several boxes a greedy sequential
    strategy is used — sound (the result is verified by full equivalence
    checking) but incomplete, mirroring the approximation status of
    equation (1) itself.

    With ``minimize`` the synthesized functions are simplified against
    the box's reachable-observation care set (``∃x H``): pin patterns no
    primary input can produce are don't-cares, often shrinking the
    witness netlist considerably.
    """
    ctx = prepare_context(spec, partial, bdd)
    cond_prime, groups = build_cond_prime(ctx)

    implementations: Dict[str, Circuit] = {}
    current = cond_prime
    for j, box in enumerate(ctx.partial.boxes):
        i_names, o_names = groups[j]
        other_inputs = [n for g_idx, (ins, _) in enumerate(groups)
                        if g_idx != j for n in ins]
        later_outputs = [n for _, (_, outs) in
                         enumerate(groups[j + 1:], start=j + 1)
                         for n in outs]
        relation = current.exists(later_outputs).forall(other_inputs)
        functions = determinize(relation, o_names)
        if functions is None:
            return None
        if minimize:
            functions = _minimize_against_reachable(ctx, j, functions)
        implementations[box.name] = function_vector_circuit(
            functions, i_names, name="%s_impl" % box.name)
        current = current.compose(dict(zip(o_names, functions)))

    if verify:
        from .equivalence import check_equivalence

        complete = partial.substitute(implementations)
        if not check_equivalence(spec, complete).equivalent:
            return None
    return implementations


def _minimize_against_reachable(ctx: SymbolicContext, box_index: int,
                                functions: List[Function])\
        -> List[Function]:
    """Simplify box functions with the reachable-pin care set.

    The care set is ``∃x ∃O_<j ⋀_k (i_k ↔ h_k)`` — the pin observations
    some primary input can actually produce.  Off that set the box's
    value never matters, so Shiple's restrict may pick whatever shrinks
    the BDDs.
    """
    from ..bdd import minimize_restrict
    from .input_exact import _box_input_functions
    from .quantify import exists_conj

    bdd = ctx.bdd
    box = ctx.partial.boxes[box_index]
    equivs = []
    support: set = set()
    for position, h in enumerate(_box_input_functions(ctx)[box.name]):
        i_var = bdd.var(box_input_var_name(box.name, position))
        equivs.append(i_var.equiv(h))
        support.update(h.support())
    care = exists_conj(bdd, equivs, support)
    if care.is_false:
        return functions
    return [minimize_restrict(f, care) for f in functions]


def synthesize_single_box(spec: Circuit, partial: PartialImplementation,
                          bdd: Optional[Bdd] = None,
                          minimize: bool = False)\
        -> Optional[Circuit]:
    """Witness for the single-box case (exact per Theorem 2.2)."""
    if partial.num_boxes != 1:
        raise CircuitError("use synthesize_boxes for %d boxes"
                           % partial.num_boxes)
    implementations = synthesize_boxes(spec, partial, bdd,
                                       minimize=minimize)
    if implementations is None:
        return None
    return implementations[partial.boxes[0].name]
