"""Deterministic shard assignment over case keys.

A case belongs to exactly one *home* shard, computed by hashing its
:attr:`repro.jobs.spec.CaseSpec.key` with the campaign's SHA-256 seed
scheme — a pure function of the case coordinates, independent of the
enumeration order, the number of pending cases, or which process asks.
Every participant (supervisor, every shard, a resumed run on another
host) therefore derives the *same* partition, which is what makes
work-stealing safe: a thief can recompute a victim's queue from the
case list alone, without any shared mutable state.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from ..jobs.spec import CaseSpec, derive_seed

__all__ = ["case_key_hash", "shard_of", "partition"]


def case_key_hash(case: CaseSpec) -> str:
    """Short stable content hash of one case key.

    Used as the lease file name and the claim/record correlation id in
    shard journals; 64 bits of SHA-256 — collisions within one
    campaign are not a practical concern.
    """
    return hashlib.sha256(
        repr(case.key).encode("utf-8")).hexdigest()[:16]


def shard_of(case: CaseSpec, shards: int) -> int:
    """Home shard of ``case`` in a fleet of ``shards``."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return derive_seed("fleet-shard", repr(case.key)) % shards


def partition(cases: Sequence[CaseSpec], shards: int)\
        -> List[List[int]]:
    """Indices into ``cases`` per shard, preserving canonical order.

    Returns index lists (not case lists) so the one authoritative case
    sequence can be shipped to every shard once and referenced by
    position.
    """
    assignment: List[List[int]] = [[] for _ in range(shards)]
    for index, case in enumerate(cases):
        assignment[shard_of(case, shards)].append(index)
    return assignment
