"""The shard child process: execute, heartbeat, steal.

A shard is one spawned process owning one slice of the case space and
one append-only journal.  It executes cases *inline* (the same
:func:`repro.jobs.worker.execute_case` path a serial campaign uses, so
records carry ``worker=0 / attempt=1`` and their journal bytes match a
serial run exactly); process-level isolation — the property the spawn
pool provides within one host — is the shard boundary itself here: a
wedged or killed shard takes down only its slice, and the supervisor
kills wedged shards at the case deadline the way the pool kills wedged
workers.

Protocol with the supervisor:

* **journal out** — hello / heartbeat / claim / case / skip / bye
  events (:mod:`repro.fleet.journal`); the journal, not the pipe, is
  the authoritative channel, which is what makes recovery replayable
  from disk alone;
* **pipe in** — ``{"op": "run", "case": {...}}`` reschedules a case
  onto this shard; ``{"op": "stop"}`` (or EOF) shuts it down.

Work-stealing: with its own queue drained, a shard recomputes every
other shard's pending set from the shared case list plus the on-disk
journals (assignment is a pure function of case keys, so no handshake
is needed), then claims a victim's *tail* case via an atomic lease
(:mod:`repro.fleet.leases`).  Exactly one contender wins the lease;
losers emit ``skip`` and look elsewhere.

Fault drills (:class:`repro.resilience.faults.FleetFaultPlan`) arrive
through the ``REPRO_FLEET_FAULTS`` environment variable — spawn
children inherit the environment — and apply only to incarnation 0,
so a respawned shard always runs clean and every drill terminates.
"""

from __future__ import annotations

import os
import signal
import threading
from collections import deque
from typing import Dict, List, Optional

from ..jobs.journal import failed_record
from ..jobs.spec import CaseSpec
from ..resilience.faults import FleetFaultPlan, tear_journal_tail
from .journal import FleetPaths, ShardJournal, iter_fleet_events
from .leases import LeaseDir
from .shard import case_key_hash

__all__ = ["shard_main"]


def shard_main(conn, shard: int, incarnation: int, base: str,
               case_dicts: List[Dict], assignment: List[List[int]],
               task, options: Dict) -> None:
    """Entry point of one shard process (spawn target)."""
    if task is None:
        from ..jobs.worker import execute_case
        task = execute_case
    plan = (FleetFaultPlan.from_env() if incarnation == 0
            else FleetFaultPlan())
    paths = FleetPaths(base)
    if shard in plan.torn_journal:
        tear_journal_tail(paths.shard_journal(shard))

    cases = [CaseSpec.from_dict(d) for d in case_dicts]
    keys = [case_key_hash(c) for c in cases]
    journal = ShardJournal(paths.shard_journal(shard), shard)
    leases = LeaseDir(paths.leases)
    owner = "shard-%d#%d" % (shard, incarnation)
    journal.hello(os.getpid(), incarnation, len(assignment[shard]))

    stop_beats = threading.Event()
    if shard not in plan.blackhole:
        interval = float(options.get("heartbeat_interval", 0.5))

        def beat() -> None:
            while not stop_beats.wait(interval):
                try:
                    journal.heartbeat()
                except Exception:
                    return

        threading.Thread(target=beat, name="fleet-heartbeat",
                         daemon=True).start()

    kill_ordinal = plan.kill_ordinal(shard)
    steal_enabled = bool(options.get("steal", True))
    steal_poll = float(options.get("steal_poll", 0.05))
    queue = deque(assignment[shard])
    extra: deque = deque()  # rescheduled cases from the supervisor
    state = {"stop": False, "executed": 0}

    def drain_conn(timeout: float = 0.0) -> None:
        remaining = timeout
        while conn.poll(remaining):
            remaining = 0
            try:
                message = conn.recv()
            except EOFError:  # supervisor is gone; so are we
                state["stop"] = True
                return
            if not isinstance(message, dict) \
                    or message.get("op") == "stop":
                state["stop"] = True
            elif message.get("op") == "run":
                extra.append(CaseSpec.from_dict(message["case"]))

    def run_one(case: CaseSpec, key: str,
                stolen_from: Optional[int]) -> None:
        if not leases.acquire(key, owner):
            journal.skip(key)
            return
        journal.claim(key, stolen_from)
        state["executed"] += 1
        if kill_ordinal is not None \
                and state["executed"] == kill_ordinal:
            # Drill: die with the claim on disk and no record — the
            # supervisor must see an in-flight case and recover it.
            os.kill(os.getpid(), signal.SIGKILL)
        try:
            record = task(case)
        except BaseException as exc:
            record = failed_record(case, exc)
        journal.case(key, record, stolen_from)

    def find_steal() -> Optional[tuple]:
        """(victim, case index) of the best steal target, if any."""
        finished, claimed = set(), set()
        for path in paths.shard_journals():
            for event in iter_fleet_events(path):
                if event.get("ev") == "case":
                    finished.add(event.get("key"))
                elif event.get("ev") == "claim":
                    claimed.add(event.get("key"))
        victims = []
        for victim in range(len(assignment)):
            if victim == shard:
                continue
            pending = [i for i in assignment[victim]
                       if keys[i] not in finished
                       and keys[i] not in claimed
                       and not leases.held(keys[i])]
            if pending:
                victims.append((len(pending), victim, pending))
        if not victims:
            return None
        # Deepest backlog first; steal from the *tail*, away from the
        # position the victim is working toward.
        victims.sort(key=lambda v: (-v[0], v[1]))
        _, victim, pending = victims[0]
        return victim, pending[-1]

    try:
        while not state["stop"]:
            drain_conn()
            if state["stop"]:
                break
            if extra:
                case = extra.popleft()
                run_one(case, case_key_hash(case), None)
            elif queue:
                index = queue.popleft()
                run_one(cases[index], keys[index], None)
            else:
                steal = find_steal() if steal_enabled else None
                if steal is not None:
                    victim, index = steal
                    run_one(cases[index], keys[index], victim)
                else:
                    drain_conn(steal_poll)
    finally:
        stop_beats.set()
        try:
            journal.bye(state["executed"])
            journal.close()
        except Exception:
            pass
        try:
            conn.close()
        except Exception:
            pass
