"""Deterministic merge of shard journals into one campaign record set.

The determinism contract: *any* interleaving of steals, crashes,
false-positive deaths and retries must aggregate to the same campaign
output as a serial run.  Shard journals may therefore contain
duplicate records for one case (a blackholed-but-alive shard finished
a case the supervisor had already rescheduled).  The merge picks a
winner per key by a pure function of the candidate records themselves
— never of arrival order:

1. strongest outcome first (``ok`` < ``inconclusive`` < ``timeout`` <
   ``error`` — a completed verdict beats a kill artifact);
2. ties broken by the record's canonical JSON line.

With a deterministic task the duplicates are byte-identical anyway and
the tie-break never fires; with wall-clock-measured records it makes
the merge stable for a *given* set of journals, which is what resume
and replay need.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.result import (OUTCOME_ERROR, OUTCOME_INCONCLUSIVE,
                           OUTCOME_OK, OUTCOME_TIMEOUT)
from ..jobs.journal import CaseRecord
from ..jobs.spec import CaseSpec
from .shard import case_key_hash

__all__ = ["pick_record", "merge_case_events"]

_OUTCOME_RANK = {OUTCOME_OK: 0, OUTCOME_INCONCLUSIVE: 1,
                 OUTCOME_TIMEOUT: 2, OUTCOME_ERROR: 3}


def pick_record(candidates: Sequence[CaseRecord]) -> CaseRecord:
    """The deterministic winner among duplicate records for one key."""
    if not candidates:
        raise ValueError("no candidate records")
    return min(candidates,
               key=lambda r: (_OUTCOME_RANK.get(r.outcome, 99),
                              r.to_json_line()))


def merge_case_events(cases: Sequence[CaseSpec],
                      events: Dict[str, List[CaseRecord]])\
        -> Dict[tuple, CaseRecord]:
    """Resolve journal case events to one record per pending case.

    Raises ``RuntimeError`` naming the missing coordinates if any case
    has no record at all — the supervisor's zero-lost-cases guarantee
    means this only fires on a genuine fleet bug, and loudly beats a
    silently short table.
    """
    merged: Dict[tuple, CaseRecord] = {}
    missing = []
    for case in cases:
        candidates = events.get(case_key_hash(case))
        if not candidates:
            missing.append(case.describe())
            continue
        merged[case.key] = pick_record(candidates)
    if missing:
        raise RuntimeError(
            "fleet merge is missing records for %d case(s): %s"
            % (len(missing), ", ".join(missing[:5])))
    return merged
