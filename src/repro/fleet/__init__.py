"""Sharded, crash-resumable campaign execution (ROADMAP item 4).

The fleet generalises :mod:`repro.jobs` from a single spawn pool to N
independent *shards*, each a failure domain of its own:

* :mod:`~repro.fleet.shard` — deterministic partition of the case
  space by coordinate-derived keys (every participant derives the
  same split, enabling coordination-free stealing);
* :mod:`~repro.fleet.leases` — ``O_CREAT|O_EXCL`` lease files, the
  single mutual-exclusion primitive arbitrating steals and retries;
* :mod:`~repro.fleet.journal` — per-shard append-only event journals
  (hello/heartbeat/claim/case) plus the supervisor's decision log,
  built on the campaign journal's atomic line writer;
* :mod:`~repro.fleet.shardproc` — the shard child: inline execution
  (records byte-identical to a serial run), heartbeat thread,
  tail-first work stealing;
* :mod:`~repro.fleet.supervisor` — :func:`run_fleet`: spawn, tail,
  detect death (exit / heartbeat miss / wedged case), reschedule with
  bounded retry + :class:`repro.resilience.BackoffPolicy`, respawn
  when no survivors remain, then merge deterministically;
* :mod:`~repro.fleet.merge` — duplicate-tolerant, interleaving-
  independent record merge feeding the canonical-order aggregation;
* :mod:`~repro.fleet.slots` — :class:`SlotFleet`, the async slot
  substrate the service's executor runs on.

``--shards N`` on the experiments CLI routes a campaign here; journal
bytes, tables, JSON and CSV are byte-identical to ``--shards 1`` and
to a serial run for deterministic tasks, whatever crashes or steals
happened along the way (see ``docs/parallel.md``).
"""

from .journal import (FLEET_VERSION, FleetPaths, ShardJournal,
                      SupervisorJournal, collect_case_events,
                      iter_fleet_events)
from .leases import LeaseDir
from .merge import merge_case_events, pick_record
from .shard import case_key_hash, partition, shard_of
from .slots import SlotFleet
from .supervisor import (HEARTBEAT_ENV, FleetConfig, Supervisor,
                         run_fleet)

__all__ = [
    "FLEET_VERSION",
    "FleetPaths",
    "ShardJournal",
    "SupervisorJournal",
    "collect_case_events",
    "iter_fleet_events",
    "LeaseDir",
    "merge_case_events",
    "pick_record",
    "case_key_hash",
    "partition",
    "shard_of",
    "SlotFleet",
    "HEARTBEAT_ENV",
    "FleetConfig",
    "Supervisor",
    "run_fleet",
]
