"""Atomic case leases: the fleet's one mutual-exclusion primitive.

A lease is a file created with ``O_CREAT | O_EXCL`` — the only
filesystem operation that is atomic *and* exclusive on every platform
the spawn pool supports.  Exactly one creator wins; everyone else gets
``FileExistsError`` and moves on.  Shards acquire a lease before
executing any case (their own or a stolen one), so two shards racing
for the same key — the lease-contention drill — resolve without
coordination: the loser writes a ``skip`` event and the winner's
record is the only one produced.

Leases are *not* released on completion: a completed case's lease
doubles as a cheap done-marker against re-execution.  Only the
supervisor releases leases, and only for cases a dead shard claimed
but never finished — that hand-back is what lets a survivor (or a
rescheduled retry) acquire the key again.
"""

from __future__ import annotations

import os
from typing import List, Optional

__all__ = ["LeaseDir"]


class LeaseDir:
    """Directory of one lease file per case-key hash."""

    def __init__(self, path: str):
        self.path = path
        os.makedirs(path, exist_ok=True)

    def _lease_path(self, key: str) -> str:
        return os.path.join(self.path, key + ".lease")

    def acquire(self, key: str, owner: str) -> bool:
        """Try to take the lease for ``key``; True iff we won."""
        try:
            fd = os.open(self._lease_path(key),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, owner.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def owner(self, key: str) -> Optional[str]:
        """Current lease holder, or None if the key is unleased."""
        try:
            with open(self._lease_path(key), "r",
                      encoding="utf-8") as handle:
                return handle.read()
        except OSError:
            return None

    def held(self, key: str) -> bool:
        return os.path.exists(self._lease_path(key))

    def release(self, key: str) -> bool:
        """Drop the lease (supervisor-only); True iff one existed."""
        try:
            os.unlink(self._lease_path(key))
        except FileNotFoundError:
            return False
        return True

    def release_many(self, keys) -> int:
        return sum(1 for key in keys if self.release(key))

    def clear(self) -> int:
        """Release every lease (fresh fleet over a stale directory)."""
        count = 0
        for name in os.listdir(self.path):
            if name.endswith(".lease"):
                try:
                    os.unlink(os.path.join(self.path, name))
                    count += 1
                except FileNotFoundError:
                    pass
        return count

    def held_keys(self) -> List[str]:
        return sorted(name[:-len(".lease")]
                      for name in os.listdir(self.path)
                      if name.endswith(".lease"))
