"""SlotFleet: K single-slot worker pools behind an async gate.

The generic substrate under the service's :class:`JobExecutor`
(:mod:`repro.serve.executor`): each slot is one single-slot
:class:`repro.jobs.pool.WorkerPool` whose spawned worker survives
across work items, fronted by an ``asyncio.Queue`` of idle slots so an
event loop dispatches the moment a slot frees.

What the fleet layer adds over K bare pools is *crash governance*: a
slot whose worker keeps dying (a tenant submitting allocator-killing
jobs, a poisoned input) is throttled with
:class:`repro.resilience.BackoffPolicy` delays while the slot is still
held — so a crash loop costs its own tenant latency instead of burning
the host respawning workers at full speed — and every respawn shows up
as a ``slot:respawn`` complete-event on the installed tracer.  A clean
run resets the slot's streak.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional

from ..jobs.pool import CaseCodec, WorkerPool
from ..resilience.backoff import BackoffPolicy

__all__ = ["SlotFleet"]

#: Streak cap so the backoff exponent cannot overflow into hours.
_MAX_STREAK = 8


class SlotFleet:
    """Async front over K single-slot pools with crash backoff."""

    def __init__(self, slots: int, timeout: Optional[float] = None,
                 task: Optional[Callable] = None, codec=CaseCodec,
                 backoff: Optional[BackoffPolicy] = None,
                 tracer=None):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.slots = int(slots)
        self.timeout = timeout
        self.task = task
        self.codec = codec
        self.backoff = backoff if backoff is not None \
            else BackoffPolicy(base=0.05, multiplier=2.0, cap=5.0,
                               jitter=0.25, seed=11)
        self.tracer = tracer
        self._pools: List[WorkerPool] = []
        self._idle: Optional[asyncio.Queue] = None
        self._streaks: Dict[int, int] = {}

    async def start(self) -> None:
        """Spawn every slot's worker (in a thread: spawn blocks)."""
        self._pools = [WorkerPool(jobs=1, timeout=self.timeout,
                                  task=self.task, codec=self.codec)
                       for _ in range(self.slots)]
        await asyncio.gather(*(asyncio.to_thread(pool.start)
                               for pool in self._pools))
        self._idle = asyncio.Queue()
        for pool in self._pools:
            self._idle.put_nowait(pool)

    @property
    def idle_slots(self) -> int:
        """Slots currently free (0 before :meth:`start`)."""
        return self._idle.qsize() if self._idle is not None else 0

    async def acquire(self) -> WorkerPool:
        """Wait for a free slot."""
        return await self._idle.get()

    def release(self, pool: WorkerPool) -> None:
        self._idle.put_nowait(pool)

    async def run(self, pool: WorkerPool, item):
        """Execute one item on an acquired slot; ``None`` if aborted.

        If the slot's worker died during the run, the call sleeps the
        slot's backoff delay *before returning* — the slot is still
        held, so the crash loop, not the healthy slots, absorbs the
        wait.
        """
        slot = self._pools.index(pool)
        crashes_before = pool.crashes + pool.timeout_kills
        records = await asyncio.to_thread(pool.run, [item])
        crashed = (pool.crashes + pool.timeout_kills) > crashes_before
        if crashed:
            streak = min(self._streaks.get(slot, 0) + 1, _MAX_STREAK)
            self._streaks[slot] = streak
            delay = self.backoff.delay(streak)
            if self.tracer is not None:
                self.tracer.complete("slot:respawn", delay, slot=slot,
                                     streak=streak)
            await asyncio.sleep(delay)
        else:
            self._streaks.pop(slot, None)
        return records[0] if records else None

    def stats(self) -> Dict:
        """Aggregate slot health for ``/stats``."""
        return {"slots": self.slots,
                "idle": self.idle_slots,
                "crashes": sum(p.crashes for p in self._pools),
                "timeout_kills": sum(p.timeout_kills
                                     for p in self._pools),
                "throttled": sum(1 for s in self._streaks.values()
                                 if s > 0)}

    def abort(self) -> None:
        """Kill every in-flight worker immediately (abrupt shutdown)."""
        for pool in self._pools:
            pool.abort()

    def close(self) -> None:
        """Reap every worker process."""
        pools, self._pools = self._pools, []
        for pool in pools:
            pool.close()
