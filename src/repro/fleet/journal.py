"""Shard and supervisor event journals.

Each shard owns one append-only JSONL file (built on the campaign
journal's :class:`~repro.jobs.journal.LineJournalWriter`, so the
atomic-line / torn-tail / ENOSPC contract carries over verbatim).  The
journal is the shard's *only* output channel: heartbeats prove
liveness, ``claim`` events mark cases in flight, and ``case`` events
wrap a full campaign :class:`~repro.jobs.journal.CaseRecord` dict —
unmodified, so the record bytes that reach the merged campaign journal
are exactly what a serial run would have written.  Shard metadata
(which shard ran it, who it was stolen from) lives in the *envelope*,
never inside the record.

The supervisor writes its own journal of recovery decisions
(``shard_dead``, ``case_lost``, ``reschedule``, ``respawn``,
``case_timeout``) plus terminal ``case`` events for retry-exhausted
cases, making every recovery replayable after the fact.

Event vocabulary (``v`` = 1)::

    {"v":1,"ev":"hello","shard":0,"pid":123,"incarnation":0,"assigned":7}
    {"v":1,"ev":"heartbeat","shard":0,"n":42}
    {"v":1,"ev":"claim","shard":0,"key":"9f..","stolen_from":null}
    {"v":1,"ev":"case","shard":0,"key":"9f..","stolen_from":2,
     "record":{...full CaseRecord dict...}}
    {"v":1,"ev":"skip","shard":0,"key":"9f.."}   # lost the lease race
    {"v":1,"ev":"bye","shard":0,"executed":9}
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterator, List, Optional

from ..jobs.journal import CaseRecord, LineJournalWriter, \
    iter_journal_dicts

__all__ = ["FLEET_VERSION", "FleetPaths", "ShardJournal",
           "SupervisorJournal", "iter_fleet_events",
           "collect_case_events"]

FLEET_VERSION = 1


class FleetPaths:
    """Canonical layout of one fleet directory."""

    def __init__(self, base: str):
        self.base = base

    def shard_journal(self, shard: int) -> str:
        return os.path.join(self.base, "shard-%d.jsonl" % shard)

    @property
    def supervisor_journal(self) -> str:
        return os.path.join(self.base, "supervisor.jsonl")

    @property
    def leases(self) -> str:
        return os.path.join(self.base, "leases")

    def shard_journals(self) -> List[str]:
        """Every shard journal present on disk, in shard order."""
        try:
            names = os.listdir(self.base)
        except FileNotFoundError:
            return []
        found = []
        for name in names:
            if name.startswith("shard-") and name.endswith(".jsonl"):
                try:
                    found.append((int(name[len("shard-"):-len(".jsonl")]),
                                  os.path.join(self.base, name)))
                except ValueError:
                    continue
        return [path for _, path in sorted(found)]


class _EventJournal:
    """Thread-safe event writer over :class:`LineJournalWriter`.

    Thread safety matters for shards: the heartbeat thread appends
    concurrently with the main execution loop.
    """

    def __init__(self, path: str):
        self._writer = LineJournalWriter(path)
        self._lock = threading.Lock()
        self.path = path

    def emit(self, ev: str, **fields) -> None:
        payload = {"v": FLEET_VERSION, "ev": ev}
        payload.update(fields)
        with self._lock:
            self._writer.write_line(payload)

    def close(self) -> None:
        with self._lock:
            self._writer.close()


class ShardJournal(_EventJournal):
    """One shard's append-only event stream."""

    def __init__(self, path: str, shard: int):
        super().__init__(path)
        self.shard = shard
        self._beats = 0

    def hello(self, pid: int, incarnation: int, assigned: int) -> None:
        self.emit("hello", shard=self.shard, pid=pid,
                  incarnation=incarnation, assigned=assigned)

    def heartbeat(self) -> None:
        self._beats += 1
        self.emit("heartbeat", shard=self.shard, n=self._beats)

    def claim(self, key: str, stolen_from: Optional[int]) -> None:
        self.emit("claim", shard=self.shard, key=key,
                  stolen_from=stolen_from)

    def case(self, key: str, record: CaseRecord,
             stolen_from: Optional[int]) -> None:
        self.emit("case", shard=self.shard, key=key,
                  stolen_from=stolen_from, record=record.to_dict())

    def skip(self, key: str) -> None:
        self.emit("skip", shard=self.shard, key=key)

    def bye(self, executed: int) -> None:
        self.emit("bye", shard=self.shard, executed=executed)


class SupervisorJournal(_EventJournal):
    """The supervisor's replayable decision log."""

    def decision(self, kind: str, **fields) -> None:
        self.emit(kind, **fields)

    def terminal_case(self, key: str, record: CaseRecord,
                      reason: str) -> None:
        """A retry-exhausted case's terminal record (shard -1)."""
        self.emit("case", shard=-1, key=key, reason=reason,
                  record=record.to_dict())


def iter_fleet_events(path: str) -> Iterator[Dict]:
    """Parsed fleet events from one journal, torn lines skipped."""
    if not os.path.exists(path):
        return
    for payload in iter_journal_dicts(path):
        if payload.get("v") == FLEET_VERSION and "ev" in payload:
            yield payload


def collect_case_events(paths) -> Dict[str, List[CaseRecord]]:
    """All case records across journals, keyed by case-key hash.

    Duplicates (a case re-executed after a false-positive death, or
    raced before a lease landed) are *kept* — the merge layer picks a
    deterministic winner.
    """
    out: Dict[str, List[CaseRecord]] = {}
    for path in paths:
        for event in iter_fleet_events(path):
            if event.get("ev") != "case":
                continue
            try:
                record = CaseRecord.from_dict(event["record"])
            except (KeyError, ValueError, TypeError):
                continue
            out.setdefault(event.get("key", ""), []).append(record)
    return out
