"""The fleet supervisor: spawn shards, watch journals, recover.

:func:`run_fleet` is the fleet's one entry point, called by
:func:`repro.jobs.engine.run_campaign` when ``--shards`` is set.  The
supervisor

1. partitions the pending cases by their coordinate-derived keys
   (:mod:`repro.fleet.shard`) and spawns one
   :func:`repro.fleet.shardproc.shard_main` process per shard;
2. *tails* every shard journal — the journal, not the pipe, is the
   liveness and progress channel, so recovery replays from disk alone:
   hello/heartbeat events refresh the liveness clock, ``claim`` events
   mark cases in flight, ``case`` events complete them;
3. declares a shard dead when its process exits **or** its heartbeat
   goes quiet past ``heartbeat_miss`` (the blackhole drill: a shard
   may be alive-but-silent — it is SIGKILLed and treated as dead;
   leases plus the deterministic merge keep a duplicate record
   harmless) **or** one claim outlives ``case_timeout`` (a wedged
   case: the shard is killed the way the spawn pool kills a wedged
   worker);
4. recovers: in-flight cases are marked ``lost`` and rescheduled onto
   survivors with bounded per-case retries under
   :class:`repro.resilience.BackoffPolicy` delays (retry exhaustion
   produces a terminal ERROR/TIMEOUT record, never a missing row);
   never-claimed cases reschedule immediately with no retry cost;
   when no survivors remain, a replacement shard is respawned
   (bounded by ``max_respawns``, and fault drills only arm
   incarnation 0, so drills always terminate);
5. journals every decision to ``supervisor.jsonl`` and mirrors it as
   :meth:`repro.obs.Tracer.complete` events, so a campaign's
   steal/recovery history shows up in ``trace summary``.

The return value is the deterministic merge
(:mod:`repro.fleet.merge`): exactly one record per requested case.
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace
from heapq import heappop, heappush
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence

from ..jobs.journal import CaseRecord, failed_record, timeout_record
from ..jobs.spec import CaseSpec
from ..resilience.backoff import BackoffPolicy
from .journal import (FleetPaths, SupervisorJournal,
                      collect_case_events)
from .leases import LeaseDir
from .merge import merge_case_events
from .shard import case_key_hash, partition
from .shardproc import shard_main

__all__ = ["HEARTBEAT_ENV", "FleetConfig", "Supervisor", "run_fleet"]

#: ``interval:miss`` override for drills/CI, e.g. ``0.05:0.4``.
HEARTBEAT_ENV = "REPRO_FLEET_HEARTBEAT"

#: Trace file the supervisor writes its decision events to (under
#: ``$REPRO_TRACE_DIR``), next to the per-case worker traces.
SUPERVISOR_TRACE = "fleet-supervisor.trace.jsonl"


@dataclass(frozen=True)
class FleetConfig:
    """Supervision knobs; defaults are production-paced."""

    heartbeat_interval: float = 0.5
    #: Quiet time after which a shard is presumed dead (must comfortably
    #: exceed the interval; heartbeats come from a dedicated thread, so
    #: long-running cases do not go quiet).
    heartbeat_miss: float = 5.0
    #: Extra patience before the first hello (spawn + import cost).
    startup_grace: float = 30.0
    #: Per-case wall-clock deadline (``--timeout``); a claim older than
    #: this gets its shard killed.
    case_timeout: Optional[float] = None
    #: In-flight deaths one case may cause before its terminal record.
    max_retries: int = 2
    #: Whole-shard respawns when no survivors remain.
    max_respawns: int = 3
    steal: bool = True
    steal_poll: float = 0.05
    poll: float = 0.02
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(
            base=0.05, multiplier=2.0, cap=2.0, jitter=0.25, seed=2001))

    @classmethod
    def from_env(cls, **overrides) -> "FleetConfig":
        """Defaults, with ``REPRO_FLEET_HEARTBEAT=interval:miss``
        applied (the CI fault drills pace detection this way)."""
        text = os.environ.get(HEARTBEAT_ENV)
        if text:
            interval, _, miss = text.partition(":")
            overrides.setdefault("heartbeat_interval", float(interval))
            if miss:
                overrides.setdefault("heartbeat_miss", float(miss))
        return cls(**overrides)


class _ShardHandle:
    """Supervisor-side state of one live shard process."""

    def __init__(self, shard: int, incarnation: int, proc, conn,
                 spawned: float):
        self.shard = shard
        self.incarnation = incarnation
        self.proc = proc
        self.conn = conn
        self.spawned = spawned
        self.last_beat: Optional[float] = None  # None until hello
        self.offset = 0
        self.tail = b""
        self.claims: Dict[str, float] = {}  # key -> claimed-at


class Supervisor:
    """One fleet run; see the module docstring for the life cycle."""

    def __init__(self, cases: Sequence[CaseSpec], shards: int,
                 base_dir: str,
                 config: Optional[FleetConfig] = None,
                 task: Optional[Callable] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 tracer=None):
        self.cases = list(cases)
        self.shards = shards
        self.config = config if config is not None \
            else FleetConfig.from_env()
        self.task = task
        self.progress = progress
        self.tracer = tracer
        self.paths = FleetPaths(base_dir)
        os.makedirs(base_dir, exist_ok=True)
        self.leases = LeaseDir(self.paths.leases)
        self.keymap: Dict[str, CaseSpec] = {
            case_key_hash(c): c for c in self.cases}
        #: Duplicate-tolerant record candidates per key hash.
        self.candidates: Dict[str, List[CaseRecord]] = {}
        self.done: set = set()
        self.retries: Dict[str, int] = {}
        self.owner: Dict[str, Optional[int]] = {}
        self._live: Dict[int, _ShardHandle] = {}
        self._incarnations: Dict[int, int] = {}
        self._sched: list = []  # (due, seq, key) reschedule heap
        self._seq = itertools.count()
        self._rr = 0
        self.respawns = 0
        self.steals = 0
        self.lost = 0
        self._ctx = get_context("spawn")
        self._journal: Optional[SupervisorJournal] = None

    # -- observability -------------------------------------------------

    def _trace(self, name: str, seconds: float = 0.0, **args) -> None:
        if self.tracer is not None:
            self.tracer.complete(name, seconds, **args)

    def _decide(self, kind: str, **fields) -> None:
        if self._journal is not None:
            self._journal.decision(kind, **fields)

    def _report(self, text: str) -> None:
        if self.progress is not None:
            self.progress(text)

    # -- lifecycle -----------------------------------------------------

    def run(self) -> Dict[tuple, CaseRecord]:
        # Resume: records already in this fleet directory count as done
        # (covers fleets run without a campaign journal, and the window
        # where shards finished cases the campaign journal never saw).
        for key, records in collect_case_events(
                self.paths.shard_journals()
                + [self.paths.supervisor_journal]).items():
            if key in self.keymap:
                self.candidates[key] = records
                self.done.add(key)
        # Stale leases from a previous killed run would starve their
        # cases forever; within *this* run leases double as done
        # markers, so only unfinished keys are released.
        self.leases.release_many(
            k for k in self.leases.held_keys() if k not in self.done)

        pending = [c for c in self.cases
                   if case_key_hash(c) not in self.done]
        self._case_dicts = [c.to_dict() for c in pending]
        self._assignment = partition(pending, self.shards)
        for case in pending:
            key = case_key_hash(case)
            self.owner[key] = None
        for shard, indices in enumerate(self._assignment):
            for index in indices:
                self.owner[case_key_hash(pending[index])] = shard

        self._journal = SupervisorJournal(
            self.paths.supervisor_journal)
        self._decide("fleet_start", shards=self.shards,
                     cases=len(pending), resumed=len(self.done))
        span = self.tracer.span("fleet", shards=self.shards,
                                cases=len(pending)) \
            if self.tracer is not None else None
        try:
            for shard in range(self.shards):
                self._spawn(shard)
            self._supervise()
        finally:
            self._shutdown()
            if span is not None:
                span.done(done=len(self.done), steals=self.steals,
                          lost=self.lost, respawns=self.respawns)
            self._decide("fleet_done", cases=len(self.done),
                         steals=self.steals, lost=self.lost,
                         respawns=self.respawns)
            if self._journal is not None:
                self._journal.close()
        return merge_case_events(self.cases, self.candidates)

    def _spawn(self, shard: int) -> None:
        incarnation = self._incarnations.get(shard, 0)
        self._incarnations[shard] = incarnation + 1
        parent_conn, child_conn = self._ctx.Pipe()
        options = {"heartbeat_interval": self.config.heartbeat_interval,
                   "steal": self.config.steal,
                   "steal_poll": self.config.steal_poll}
        proc = self._ctx.Process(
            target=shard_main,
            args=(child_conn, shard, incarnation, self.paths.base,
                  self._case_dicts, self._assignment, self.task,
                  options),
            daemon=True, name="fleet-shard-%d" % shard)
        proc.start()
        child_conn.close()
        self._live[shard] = _ShardHandle(shard, incarnation, proc,
                                         parent_conn, time.monotonic())

    def _supervise(self) -> None:
        total = len(self.keymap)
        while len(self.done) < total:
            now = time.monotonic()
            for handle in list(self._live.values()):
                self._tail(handle, now)
            self._check_liveness(now)
            self._dispatch(time.monotonic())
            time.sleep(self.config.poll)

    def _shutdown(self) -> None:
        for handle in list(self._live.values()):
            try:
                handle.conn.send({"op": "stop"})
            except OSError:
                pass
        deadline = time.monotonic() + 5.0
        for handle in list(self._live.values()):
            handle.proc.join(max(0.1, deadline - time.monotonic()))
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(5.0)
            self._tail(handle, time.monotonic())
            try:
                handle.conn.close()
            except OSError:
                pass
        self._live.clear()

    # -- journal tailing ----------------------------------------------

    def _tail(self, handle: _ShardHandle, now: float) -> None:
        try:
            with open(self.paths.shard_journal(handle.shard),
                      "rb") as stream:
                stream.seek(handle.offset)
                data = stream.read()
        except FileNotFoundError:
            return
        if not data:
            return
        handle.offset += len(data)
        lines = (handle.tail + data).split(b"\n")
        handle.tail = lines.pop()
        for raw in lines:
            if not raw:
                continue
            try:
                event = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue  # torn/garbage line (torn-journal drill)
            if isinstance(event, dict):
                self._on_event(handle, event, now)

    def _on_event(self, handle: _ShardHandle, event: Dict,
                  now: float) -> None:
        kind = event.get("ev")
        if kind in ("hello", "heartbeat"):
            handle.last_beat = now
        elif kind == "claim":
            key = event.get("key")
            if key in self.keymap and key not in self.done:
                handle.claims[key] = now
                self.owner[key] = handle.shard
        elif kind == "case":
            self._on_case(handle, event)

    def _on_case(self, handle: _ShardHandle, event: Dict) -> None:
        key = event.get("key")
        if key not in self.keymap:
            return
        try:
            record = CaseRecord.from_dict(event["record"])
        except (KeyError, ValueError, TypeError):
            return
        handle.claims.pop(key, None)
        self.candidates.setdefault(key, []).append(record)
        stolen_from = event.get("stolen_from")
        if stolen_from is not None:
            self.steals += 1
            self._decide("steal", key=key, thief=handle.shard,
                         victim=stolen_from)
            self._trace("fleet:steal", record.seconds,
                        thief=handle.shard, victim=stolen_from,
                        case=record.case.describe())
        if key not in self.done:
            self.done.add(key)
            self._report("[%d/%d] %s %s (shard %d)"
                         % (len(self.done), len(self.keymap),
                            record.case.describe(), record.outcome,
                            handle.shard))

    # -- failure detection --------------------------------------------

    def _check_liveness(self, now: float) -> None:
        cfg = self.config
        for handle in list(self._live.values()):
            if not handle.proc.is_alive():
                self._on_dead(handle,
                              "exit:%s" % handle.proc.exitcode, now)
            elif handle.last_beat is None:
                if now - handle.spawned > cfg.startup_grace:
                    self._on_dead(handle, "startup-timeout", now)
            elif now - handle.last_beat > cfg.heartbeat_miss:
                self._on_dead(handle, "heartbeat-miss", now)
            elif cfg.case_timeout is not None:
                wedged = [key for key, since in handle.claims.items()
                          if now - since > cfg.case_timeout
                          and key not in self.done]
                if wedged:
                    self._decide("case_timeout", shard=handle.shard,
                                 keys=sorted(wedged))
                    self._on_dead(handle, "case-timeout", now,
                                  timeout_keys=frozenset(wedged))

    def _on_dead(self, handle: _ShardHandle, reason: str, now: float,
                 timeout_keys: frozenset = frozenset()) -> None:
        if handle.proc.is_alive():
            handle.proc.kill()
            handle.proc.join(5.0)
        self._tail(handle, now)  # drain its final records first
        self._live.pop(handle.shard, None)
        try:
            handle.conn.close()
        except OSError:
            pass

        in_flight = sorted(k for k in handle.claims
                           if k not in self.done)
        mine = sorted(k for k, s in self.owner.items()
                      if s == handle.shard and k not in self.done
                      and k not in in_flight)
        self._decide("shard_dead", shard=handle.shard,
                     incarnation=handle.incarnation, reason=reason,
                     in_flight=len(in_flight), pending=len(mine))
        self._trace("fleet:shard-dead", now - handle.spawned,
                    shard=handle.shard, reason=reason,
                    in_flight=len(in_flight), pending=len(mine))

        for key in in_flight:
            case = self.keymap[key]
            self.leases.release(key)
            self.retries[key] = self.retries.get(key, 0) + 1
            attempt = self.retries[key]
            flavor = "timeout" if key in timeout_keys else "crash"
            self.lost += 1
            self._decide("case_lost", key=key,
                         case=case.describe(), shard=handle.shard,
                         reason=flavor, retry=attempt)
            self._trace("fleet:lost", 0.0, case=case.describe(),
                        shard=handle.shard, reason=flavor)
            if attempt > self.config.max_retries:
                if flavor == "timeout":
                    record = timeout_record(
                        case, float(self.config.case_timeout or 0.0))
                else:
                    record = failed_record(case, RuntimeError(
                        "lost with its shard %d time(s); retries "
                        "exhausted" % attempt))
                self._terminal(key, record, flavor)
            else:
                delay = self.config.backoff.delay(attempt)
                heappush(self._sched,
                         (now + delay, next(self._seq), key))
                self.owner[key] = None
                self._decide("retry", key=key, case=case.describe(),
                             attempt=attempt, delay=round(delay, 6))
        for key in mine:
            # Innocent bystanders: never claimed, so no retry cost and
            # no backoff — they just need a new home.
            heappush(self._sched, (now, next(self._seq), key))
            self.owner[key] = None

    def _terminal(self, key: str, record: CaseRecord,
                  reason: str) -> None:
        self.candidates.setdefault(key, []).append(record)
        self.done.add(key)
        if self._journal is not None:
            self._journal.terminal_case(key, record, reason)
        self._trace("fleet:terminal", 0.0,
                    case=record.case.describe(), outcome=record.outcome,
                    reason=reason)
        self._report("[%d/%d] %s %s (supervisor: %s)"
                     % (len(self.done), len(self.keymap),
                        record.case.describe(), record.outcome, reason))

    # -- rescheduling -------------------------------------------------

    def _pick_target(self) -> Optional[_ShardHandle]:
        if not self._live:
            return None
        order = sorted(self._live)
        self._rr += 1
        return self._live[order[self._rr % len(order)]]

    def _dispatch(self, now: float) -> None:
        while self._sched and self._sched[0][0] <= now:
            due, _, key = heappop(self._sched)
            if key in self.done:
                continue
            target = self._pick_target()
            if target is None:
                if not self._respawn():
                    case = self.keymap[key]
                    self._terminal(key, failed_record(case, RuntimeError(
                        "no live shards and respawn budget exhausted")),
                        "abandoned")
                    continue
                target = self._pick_target()
                if target is None:  # pragma: no cover - spawn failed
                    heappush(self._sched,
                             (now + 1.0, next(self._seq), key))
                    continue
            case = self.keymap[key]
            try:
                target.conn.send({"op": "run", "case": case.to_dict(),
                                  "retry": self.retries.get(key, 0)})
            except OSError:
                # Died between liveness check and send; try again after
                # the death is processed.
                heappush(self._sched,
                         (now + self.config.poll, next(self._seq), key))
                continue
            self.owner[key] = target.shard
            self._decide("reschedule", key=key, case=case.describe(),
                         target=target.shard,
                         retry=self.retries.get(key, 0))
            self._trace("fleet:reschedule", 0.0, case=case.describe(),
                        target=target.shard,
                        retry=self.retries.get(key, 0))

    def _respawn(self) -> bool:
        """Replacement shard when no survivors remain; bounded."""
        if self.respawns >= self.config.max_respawns:
            return False
        self.respawns += 1
        shard = min(set(range(self.shards)) - set(self._live))
        self._decide("respawn", shard=shard,
                     incarnation=self._incarnations.get(shard, 0),
                     respawn=self.respawns)
        self._trace("fleet:respawn", 0.0, shard=shard,
                    respawn=self.respawns)
        self._spawn(shard)
        return True


def run_fleet(cases: Sequence[CaseSpec], shards: int,
              base_dir: Optional[str] = None,
              config: Optional[FleetConfig] = None,
              task: Optional[Callable] = None,
              progress: Optional[Callable[[str], None]] = None,
              tracer=None,
              case_timeout: Optional[float] = None,
              max_retries: Optional[int] = None)\
        -> Dict[tuple, CaseRecord]:
    """Run ``cases`` on a sharded fleet; one merged record per case.

    ``base_dir`` holds the shard/supervisor journals and leases
    (``<campaign journal>.fleet/`` when the engine has a journal); a
    temporary directory is used — and removed on success — when the
    caller has none, which also means crash resume needs a real one.
    When ``tracer`` is ``None`` and ``REPRO_TRACE_DIR`` is set, the
    supervisor records its decisions and writes them to
    ``$REPRO_TRACE_DIR/fleet-supervisor.trace.jsonl``.
    """
    if not cases:
        return {}
    cfg = config if config is not None else FleetConfig.from_env()
    if case_timeout is not None:
        cfg = replace(cfg, case_timeout=case_timeout)
    if max_retries is not None:
        cfg = replace(cfg, max_retries=max_retries)
    shards = max(1, min(shards, len(cases)))

    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    owned_tracer = None
    if tracer is None and trace_dir:
        from ..obs import Tracer
        tracer = owned_tracer = Tracer()

    temp_base = None
    if base_dir is None:
        base_dir = temp_base = tempfile.mkdtemp(prefix="repro-fleet-")
    try:
        supervisor = Supervisor(cases, shards, base_dir, config=cfg,
                                task=task, progress=progress,
                                tracer=tracer)
        merged = supervisor.run()
    finally:
        if owned_tracer is not None and trace_dir:
            owned_tracer.close_all()
            try:
                from ..obs import write_jsonl
                os.makedirs(trace_dir, exist_ok=True)
                write_jsonl(owned_tracer.events,
                            os.path.join(trace_dir, SUPERVISOR_TRACE))
            except OSError:
                pass  # a full/readonly trace dir must not fail the run
    if temp_base is not None:
        shutil.rmtree(temp_base, ignore_errors=True)
    return merged
