"""Trace exporters: JSONL event stream and Chrome ``trace_event`` JSON.

Two formats, one event shape:

* **JSONL** — one compact JSON object per line, in recording order.
  The native interchange format: cheap to append, diff-friendly, and
  torn-tail tolerant on read (a killed worker loses at most its last
  line, mirroring the campaign journal's contract).
* **Chrome trace JSON** — ``{"traceEvents": [...]}`` with the
  ``pid``/``tid`` keys the viewers require; load it in Perfetto
  (https://ui.perfetto.dev) or ``about:tracing``.  ``B``/``E`` span
  pairs, ``i`` instants (scoped ``"s": "t"``) and ``C`` counters pass
  through unchanged, which is the whole point of recording in the
  ``trace_event`` vocabulary to begin with.

:func:`load_trace` sniffs either format, so the summary/diff CLI works
on whichever file you kept.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Sequence

__all__ = ["write_jsonl", "read_jsonl", "to_chrome", "write_chrome",
           "load_trace"]


def write_jsonl(events: Sequence[Dict[str, Any]], path: str) -> None:
    """One compact JSON object per line, recording order preserved."""
    parent = os.path.dirname(os.path.abspath(path))
    if parent and not os.path.isdir(parent):
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace, skipping blank and torn lines."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn tail of a killed recording
            if isinstance(event, dict) and "ph" in event:
                events.append(event)
    return events


def to_chrome(events: Sequence[Dict[str, Any]], pid: int = 1,
              tid: int = 1) -> Dict[str, Any]:
    """Chrome ``trace_event`` document for a single-threaded trace."""
    out: List[Dict[str, Any]] = []
    for event in events:
        entry: Dict[str, Any] = {
            "name": event.get("name", ""),
            "ph": event.get("ph", "i"),
            "ts": event.get("ts", 0),
            "pid": pid,
            "tid": tid,
        }
        if event.get("args"):
            entry["args"] = event["args"]
        if entry["ph"] == "i":
            entry["s"] = "t"  # thread-scoped instant marker
        out.append(entry)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome(events: Sequence[Dict[str, Any]], path: str,
                 pid: int = 1, tid: int = 1) -> None:
    """Write a Perfetto/about:tracing-loadable JSON file."""
    parent = os.path.dirname(os.path.abspath(path))
    if parent and not os.path.isdir(parent):
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome(events, pid=pid, tid=tid), handle, indent=1)
        handle.write("\n")


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load either trace format (sniffed from the first character).

    Chrome documents start with ``{`` (the ``traceEvents`` wrapper);
    JSONL streams start with an event object per line.  A Chrome
    document written by someone else may carry ``M`` (metadata) events
    — those are dropped, everything else is returned in file order.
    """
    with open(path, "r", encoding="utf-8") as handle:
        head = handle.read(2048)
    if head.lstrip().startswith("{") and "traceEvents" in head:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        return [e for e in document.get("traceEvents", [])
                if e.get("ph") in ("B", "E", "X", "i", "C")]
    return read_jsonl(path)
