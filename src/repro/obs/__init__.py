"""Structured tracing and metrics for the whole check ladder.

The paper's contribution is a *cost/accuracy ladder*; this package makes
the cost side observable.  A :class:`Tracer` records hierarchical spans
(``ladder > rung:output_exact > reorder``) with wall time and exit-time
annotations (live/peak node counts, computed-table deltas), plus instant
events for garbage collections, budget polls and quantification schedule
choices.  Traces export as a JSONL event stream or as Chrome
``trace_event`` JSON loadable in ``about:tracing`` / Perfetto, and the
``python -m repro.experiments trace`` subcommand records, summarizes and
diffs them (see ``docs/observability.md``).

Layering contract: this package is a stdlib-only leaf — it imports
nothing from ``repro``, so every layer (including :mod:`repro.bdd`,
which receives its tracer by duck-typed injection rather than import)
may depend on it without cycles.  Tracing is opt-in: with no tracer
installed every hook is a single ``is None`` test on a cold path, an
overhead bound enforced by ``benchmarks/test_obs_micro.py``.
"""

from .tracer import Span, Tracer, get_tracer, set_tracer
from .snapshot import ManagerSnapshot, unique_table_summary
from .export import (load_trace, read_jsonl, to_chrome, write_chrome,
                     write_jsonl)
from .summary import aggregate_spans, build_tree, format_diff, \
    format_summary

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "ManagerSnapshot",
    "unique_table_summary",
    "read_jsonl",
    "write_jsonl",
    "to_chrome",
    "write_chrome",
    "load_trace",
    "build_tree",
    "aggregate_spans",
    "format_summary",
    "format_diff",
]
