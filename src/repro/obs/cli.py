"""The ``trace`` CLI: record, summarize and diff ladder traces.

Dispatched from ``python -m repro.experiments trace ...`` (the
experiments CLI hands the remaining arguments over, mirroring how the
``lint`` subcommand works)::

    python -m repro.experiments trace record --benchmark C880 \\
        -o C880.trace.json                      # Chrome JSON, Perfetto
    python -m repro.experiments trace record --format jsonl -o t.jsonl
    python -m repro.experiments trace summary C880.trace.json --top 10
    python -m repro.experiments trace diff before.json after.json

``record`` runs the full check ladder on a benchmark circuit with one
carved Black-Box selection and an inserted error — the same case shape
the campaign driver enumerates — with tracing enabled, and writes the
trace.  ``summary``/``diff`` accept either export format.

This module may import the rest of the library (lazily); the rest of
:mod:`repro.obs` must not.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .export import load_trace, write_chrome, write_jsonl
from .summary import format_diff, format_summary
from .tracer import Tracer, set_tracer

__all__ = ["main"]


def _record(args: argparse.Namespace) -> int:
    # Heavy machinery only when actually recording.
    from ..core.ladder import run_ladder
    from ..generators.benchmarks import BENCHMARK_FACTORIES
    from ..partial.extraction import make_partial
    from ..partial.mutations import insert_random_error
    from ..partial.blackbox import PartialImplementation
    from ..jobs.spec import derive_seed
    import random

    try:
        factory = BENCHMARK_FACTORIES[args.benchmark]
    except KeyError:
        print("unknown benchmark %r (choose from %s)"
              % (args.benchmark, ", ".join(sorted(BENCHMARK_FACTORIES))),
              file=sys.stderr)
        return 2
    spec = factory()
    partial = make_partial(
        spec, fraction=args.fraction, num_boxes=args.num_boxes,
        seed=derive_seed(args.seed, args.benchmark, 0, "partial"))
    if args.error:
        mutated, mutation = insert_random_error(
            partial.circuit,
            random.Random(derive_seed(args.seed, args.benchmark, 0, 0,
                                      "mutation")))
        partial = PartialImplementation(mutated, partial.boxes)
        print("inserted error: %s" % mutation.describe(),
              file=sys.stderr)

    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        results = run_ladder(spec, partial, patterns=args.patterns,
                             seed=args.seed,
                             stop_at_first_error=not args.all_rungs)
    finally:
        set_tracer(previous)
        tracer.close_all()
    for result in results:
        print(result, file=sys.stderr)
    if args.format == "jsonl":
        write_jsonl(tracer.events, args.output)
    else:
        write_chrome(tracer.events, args.output)
    print("wrote %d events to %s (%s)" % (len(tracer.events),
                                          args.output, args.format),
          file=sys.stderr)
    print(format_summary(tracer.events, top=args.top))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """``trace`` subcommand dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments trace",
        description="Record, summarize and diff check-ladder traces "
                    "(see docs/observability.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record",
                         help="run one traced ladder case and write "
                              "the trace")
    rec.add_argument("--benchmark", default="C880",
                     help="benchmark circuit (default: C880)")
    rec.add_argument("--fraction", type=float, default=0.1,
                     help="fraction of gates carved into Black Boxes")
    rec.add_argument("--num-boxes", type=int, default=1)
    rec.add_argument("--patterns", type=int, default=500)
    rec.add_argument("--seed", type=int, default=2001)
    rec.add_argument("--no-error", dest="error", action="store_false",
                     help="trace the unmutated partial (default "
                          "inserts one random error, like a campaign "
                          "case)")
    rec.add_argument("--all-rungs", action="store_true",
                     help="run every rung even after an error is found")
    rec.add_argument("-o", "--output", default="ladder.trace.json",
                     metavar="FILE")
    rec.add_argument("--format", choices=("chrome", "jsonl"),
                     default="chrome",
                     help="chrome = Perfetto-loadable JSON (default); "
                          "jsonl = one event per line")
    rec.add_argument("--top", type=int, default=10,
                     help="rows in the printed summary")

    summ = sub.add_parser("summary",
                          help="top-k spans of a recorded trace")
    summ.add_argument("trace", metavar="FILE")
    summ.add_argument("--top", type=int, default=10)
    summ.add_argument("--by", choices=("self", "total", "peak"),
                      default="self",
                      help="ranking: span self-time (default), total "
                           "time, or peak node annotation")
    summ.add_argument("--group-by", dest="group_by", default=None,
                      metavar="ARG",
                      help="partition root spans by this args "
                           "annotation (e.g. 'tenant' for a service "
                           "trace)")

    diff = sub.add_parser("diff",
                          help="per-span time delta between two traces")
    diff.add_argument("trace_a", metavar="BEFORE")
    diff.add_argument("trace_b", metavar="AFTER")
    diff.add_argument("--top", type=int, default=0,
                      help="limit to the N largest deltas (0 = all)")

    args = parser.parse_args(argv)
    if args.command == "record":
        return _record(args)
    try:
        if args.command == "summary":
            print(format_summary(load_trace(args.trace), top=args.top,
                                 by=args.by, group_by=args.group_by))
        else:
            print(format_diff(load_trace(args.trace_a),
                              load_trace(args.trace_b),
                              label_a="before", label_b="after",
                              top=args.top))
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
