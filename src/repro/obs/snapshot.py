"""Point-in-time snapshots of a BDD manager's monotone counters.

The manager's traffic counters (computed-table hits/misses/evictions,
GC runs, reorder passes) are monotone: ``clear_cache`` drops entries,
never counts.  Per-phase accounting is therefore a *delta of two
snapshots* — one at span enter, one at span exit — which is exact even
when several phases share one manager.  This is the primitive that
fixed the historic double-count: attributing a manager's cumulative
totals to each phase over-reports as soon as two consecutive phases
reuse the manager (see ``repro.experiments.runner._attach_cache_stats``
and the regression test in ``tests/obs/test_ladder_tracing.py``).

Duck-typed on purpose: ``capture`` accepts either a
``repro.bdd.Bdd`` wrapper or a raw ``BddManager`` — anything with
``cache_stats()``, ``__len__``, ``peak_live_nodes`` and (directly or
via ``.manager``) the ``n_gc_runs`` / ``n_reorderings`` counters — so
this module stays a stdlib-only leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["ManagerSnapshot", "unique_table_summary"]


def unique_table_summary(bdd: Any) -> Dict[str, Any]:
    """Duck-typed unique-table health of an arena-backed manager.

    Reads ``unique_table_stats()`` (the arena's open-addressing
    counters) from a ``Bdd`` wrapper or raw manager and returns the
    three ``CheckResult.stats`` keys the ``--stats`` view and trace
    span exits report: ``unique_load_factor``, ``unique_probe_p95``,
    ``unique_resizes``.  Empty on backends without the method (the
    dict and legacy managers), so their stats and journal bytes are
    unchanged.
    """
    probe = getattr(getattr(bdd, "manager", bdd),
                    "unique_table_stats", None)
    if probe is None:
        return {}
    stats = probe()
    return {"unique_load_factor": round(stats["load_factor"], 4),
            "unique_probe_p95": stats["probe_p95"],
            "unique_resizes": stats["resizes"]}


@dataclass(frozen=True)
class ManagerSnapshot:
    """Frozen reading of one manager's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    live_nodes: int = 0
    peak_nodes: int = 0
    gc_runs: int = 0
    reorderings: int = 0

    @classmethod
    def capture(cls, bdd: Any) -> "ManagerSnapshot":
        """Read a ``Bdd`` wrapper or a raw manager."""
        manager = getattr(bdd, "manager", bdd)
        total = bdd.cache_stats()["total"]
        return cls(hits=total["hits"], misses=total["misses"],
                   evictions=total["evictions"],
                   live_nodes=len(bdd),
                   peak_nodes=bdd.peak_live_nodes,
                   gc_runs=manager.n_gc_runs,
                   reorderings=manager.n_reorderings)

    def delta(self, later: "ManagerSnapshot") -> Dict[str, Any]:
        """Stats-dict of what happened between ``self`` and ``later``.

        Keys match the ``CheckResult.stats`` conventions:
        ``cache_hits`` / ``cache_misses`` / ``cache_evictions`` /
        ``cache_hit_rate`` plus the maintenance counters ``gc_runs``
        and ``reorders``.
        """
        hits = later.hits - self.hits
        misses = later.misses - self.misses
        return {
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_evictions": later.evictions - self.evictions,
            "cache_hit_rate": (hits / (hits + misses)
                               if hits + misses else 0.0),
            "gc_runs": later.gc_runs - self.gc_runs,
            "reorders": later.reorderings - self.reorderings,
        }
