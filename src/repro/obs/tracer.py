"""The tracer: hierarchical spans and instant events, in memory.

Design constraints, in order:

1. **Disabled mode must be near-free.**  Instrumented code never calls
   into this module when no tracer is installed — every hook site reads
   an attribute (``manager._tracer``) or the module global
   (:func:`get_tracer`) and tests it against ``None``.  All hook sites
   sit on cold paths (span boundaries, GC, reordering, budget polls),
   never inside the per-node kernels.
2. **Recording must be cheap.**  An event is one small dict appended to
   a list; nothing is formatted or written until export.
3. **Determinism must be testable.**  The clock is injectable, so tests
   drive spans with a counter and assert exact timestamps; the
   tracing-invariance property tests swap real tracers in and out and
   assert that verdicts, node ids and journal bytes never move.

Event shape (shared by the JSONL export and, re-keyed with pid/tid, by
the Chrome ``trace_event`` export)::

    {"ph": "B", "name": "rung:output_exact", "ts": 1234, "args": {...}}
    {"ph": "E", "name": "rung:output_exact", "ts": 5678, "args": {...}}
    {"ph": "i", "name": "gc",                "ts": 2222, "args": {...}}
    {"ph": "C", "name": "live_nodes",        "ts": 3333, "args": {...}}

``ts`` is microseconds since the tracer's epoch.  ``B``/``E`` pairs
nest strictly (spans are context-managed), which is what lets the
summary layer rebuild the span tree from the flat stream.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "get_tracer", "set_tracer"]

#: The process-wide current tracer (``None`` = tracing disabled).
_current: Optional["Tracer"] = None


def get_tracer() -> Optional["Tracer"]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _current


def set_tracer(tracer: Optional["Tracer"]) -> Optional["Tracer"]:
    """Install ``tracer`` as the current one; returns the previous one.

    Callers that install a tracer temporarily restore the return value
    in a ``finally`` block, so nested instrumentation (a traced ladder
    inside a traced campaign worker) composes.
    """
    global _current
    previous = _current
    _current = tracer
    return previous


class Span:
    """One open ``B``/``E`` interval; close it with :meth:`done`.

    Usable as a context manager, or imperatively via ``done()`` from
    code whose begin/end sites do not share a lexical scope (the
    reordering instrumentation).  Annotations added with :meth:`note`
    are merged into the closing event's ``args`` — the natural place
    for results only known at exit time (verdicts, node/cache deltas).
    """

    __slots__ = ("_tracer", "name", "_exit_args", "_closed")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self._exit_args: Dict[str, Any] = {}
        self._closed = False

    def note(self, **args: Any) -> "Span":
        """Attach exit-time annotations; returns self for chaining."""
        self._exit_args.update(args)
        return self

    def done(self, **args: Any) -> None:
        """Emit the closing event (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if args:
            self._exit_args.update(args)
        self._tracer._end(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.done()


class Tracer:
    """Collects events in memory; export lives in :mod:`.export`.

    ``clock`` is any zero-argument callable returning seconds as a
    float (default :func:`time.perf_counter`); timestamps are recorded
    as integer microseconds relative to the first reading.
    """

    def __init__(self,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self._epoch = self._clock()
        self.events: List[Dict[str, Any]] = []
        # Open spans, outermost first; only used to guard against
        # out-of-order closes and to expose the current nesting depth.
        self._stack: List[Span] = []

    def _ts(self) -> int:
        return int((self._clock() - self._epoch) * 1_000_000)

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def span(self, name: str, **args: Any) -> Span:
        """Open a span: emits the ``B`` event now, returns the handle."""
        event: Dict[str, Any] = {"ph": "B", "name": name,
                                 "ts": self._ts()}
        if args:
            event["args"] = args
        self.events.append(event)
        span = Span(self, name)
        self._stack.append(span)
        return span

    def _end(self, span: Span) -> None:
        # Close any dangling inner spans first so the B/E stream stays
        # well-nested even if an exception skipped an inner done().
        while self._stack and self._stack[-1] is not span:
            self._stack.pop().done()
        if self._stack:
            self._stack.pop()
        event: Dict[str, Any] = {"ph": "E", "name": span.name,
                                 "ts": self._ts()}
        if span._exit_args:
            event["args"] = span._exit_args
        self.events.append(event)

    def complete(self, name: str, seconds: float,
                 **args: Any) -> None:
        """A finished interval recorded after the fact (``X`` event).

        The async service layer needs this: with many requests in
        flight on one event loop, ``B``/``E`` pairs from different
        jobs would interleave and break the strict nesting the span
        tree relies on.  A complete event carries its own ``dur`` (in
        microseconds, like ``ts``) and does not touch the span stack,
        so concurrent lifecycles coexist in one stream.  ``ts`` is
        back-dated so the interval *ends* now.
        """
        duration = max(0, int(seconds * 1_000_000))
        event: Dict[str, Any] = {"ph": "X", "name": name,
                                 "ts": max(0, self._ts() - duration),
                                 "dur": duration}
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, name: str, **args: Any) -> None:
        """A point event (GC ran, budget polled, variable eliminated)."""
        event: Dict[str, Any] = {"ph": "i", "name": name,
                                 "ts": self._ts()}
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name: str, **values: Any) -> None:
        """A sampled metric series (renders as a graph in Perfetto)."""
        self.events.append({"ph": "C", "name": name, "ts": self._ts(),
                            "args": values})

    def close_all(self) -> None:
        """Close every open span (trace finalisation on error paths)."""
        while self._stack:
            self._stack[-1].done()
