"""Trace analysis: span trees, top-k summaries, and trace diffs.

The recorded stream is flat ``B``/``E`` pairs; :func:`build_tree`
rebuilds the span hierarchy, :func:`aggregate_spans` folds it into
per-*path* totals (a path is the ``/``-joined chain of span names,
e.g. ``ladder/rung:output_exact/reorder``), and the two formatters
render the ``trace summary`` / ``trace diff`` CLI output.

Self time — a span's duration minus its children's — is the ranking
that answers "where does the time actually go": a ladder rung whose
time is all in nested ``reorder`` spans is a reordering problem, not a
quantification problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["SpanNode", "build_tree", "aggregate_spans",
           "format_summary", "format_diff"]


@dataclass
class SpanNode:
    """One reconstructed span: interval, annotations, children."""

    name: str
    start: int
    end: int
    args: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def duration(self) -> int:
        """Wall microseconds from open to close."""
        return self.end - self.start

    @property
    def self_time(self) -> int:
        """Duration not covered by child spans."""
        return self.duration - sum(c.duration for c in self.children)


def build_tree(events: Sequence[Dict[str, Any]]) -> List[SpanNode]:
    """Root spans of a trace (instant/counter events are skipped).

    Tolerates unclosed spans (a trace cut short by a crash): anything
    still open at the end of the stream is closed at the last seen
    timestamp, so partial traces still summarize.
    """
    roots: List[SpanNode] = []
    stack: List[SpanNode] = []
    last_ts = 0
    for event in events:
        ts = int(event.get("ts", 0))
        last_ts = max(last_ts, ts)
        ph = event.get("ph")
        if ph == "B":
            node = SpanNode(name=str(event.get("name", "")), start=ts,
                            end=ts, args=dict(event.get("args") or {}))
            (stack[-1].children if stack else roots).append(node)
            stack.append(node)
        elif ph == "E":
            if stack:
                node = stack.pop()
                node.end = ts
                # Exit-time annotations override entry ones.
                node.args.update(event.get("args") or {})
        elif ph == "X":
            # Complete events from foreign Chrome traces: a leaf span.
            node = SpanNode(name=str(event.get("name", "")), start=ts,
                            end=ts + int(event.get("dur", 0)),
                            args=dict(event.get("args") or {}))
            (stack[-1].children if stack else roots).append(node)
    while stack:  # truncated trace: close dangling spans
        stack.pop().end = last_ts
    return roots


def _walk(nodes: Sequence[SpanNode], prefix: str,
          out: Dict[str, Dict[str, Any]],
          group_key: Optional[str] = None,
          group: Optional[str] = None) -> None:
    for node in nodes:
        current = group
        if group_key is not None:
            value = node.args.get(group_key)
            if value is not None:
                current = str(value)
        if prefix:
            path = "%s/%s" % (prefix, node.name)
        elif group_key is not None:
            # Root level: prepend the grouping segment, so one table
            # splits per tenant/worker/whatever the annotation names.
            path = "%s=%s/%s" % (group_key,
                                 current if current is not None
                                 else "-", node.name)
        else:
            path = node.name
        entry = out.setdefault(path, {"count": 0, "total_us": 0,
                                      "self_us": 0, "peak_nodes": 0})
        entry["count"] += 1
        entry["total_us"] += node.duration
        entry["self_us"] += node.self_time
        peak = node.args.get("peak_nodes")
        if isinstance(peak, (int, float)):
            entry["peak_nodes"] = max(entry["peak_nodes"], int(peak))
        _walk(node.children, path, out, group_key, current)


def aggregate_spans(events: Sequence[Dict[str, Any]],
                    group_by: Optional[str] = None)\
        -> Dict[str, Dict[str, Any]]:
    """Fold a trace into ``{span path: {count, total_us, self_us,
    peak_nodes}}`` (peak is the max ``peak_nodes`` annotation seen).

    With ``group_by`` set, root spans are partitioned by that ``args``
    annotation (inherited by children that lack it): the path gains a
    leading ``key=value`` segment, so ``group_by="tenant"`` turns a
    service trace into per-tenant subtotals.  Roots without the
    annotation group under ``key=-``.
    """
    out: Dict[str, Dict[str, Any]] = {}
    _walk(build_tree(events), "", out, group_by)
    return out


def _fmt_us(us: int) -> str:
    if us >= 1_000_000:
        return "%.2fs" % (us / 1_000_000)
    if us >= 1_000:
        return "%.1fms" % (us / 1_000)
    return "%dus" % us


def format_summary(events: Sequence[Dict[str, Any]], top: int = 10,
                   by: str = "self",
                   group_by: Optional[str] = None) -> str:
    """Top-k span table, ranked by self time or peak node annotation.

    ``by`` is ``"self"`` (default), ``"total"`` or ``"peak"``;
    ``group_by`` names an ``args`` annotation to partition root spans
    by (see :func:`aggregate_spans`).
    """
    keys = {"self": "self_us", "total": "total_us",
            "peak": "peak_nodes"}
    try:
        rank = keys[by]
    except KeyError:
        raise ValueError("by must be one of %s" % ", ".join(sorted(keys)))
    table = aggregate_spans(events, group_by=group_by)
    n_events = len(events)
    if not table:
        return "(no spans in trace: %d events)" % n_events
    rows = sorted(table.items(), key=lambda kv: (-kv[1][rank], kv[0]))
    rows = rows[:top]
    width = max(len(path) for path, _ in rows)
    lines = ["%-*s  %5s  %9s  %9s  %10s"
             % (width, "span", "count", "total", "self", "peak nodes")]
    for path, entry in rows:
        lines.append("%-*s  %5d  %9s  %9s  %10s" % (
            width, path, entry["count"], _fmt_us(entry["total_us"]),
            _fmt_us(entry["self_us"]),
            entry["peak_nodes"] or "-"))
    return "\n".join(lines)


def format_diff(events_a: Sequence[Dict[str, Any]],
                events_b: Sequence[Dict[str, Any]],
                label_a: str = "A", label_b: str = "B",
                top: int = 0) -> str:
    """Per-span-path time delta table between two traces.

    Ordered by absolute total-time delta (largest first); ``top``
    limits the row count (0 = all paths).  Paths present in only one
    trace show on every line with the other side at zero — a vanished
    or appeared span is usually the interesting row.
    """
    agg_a = aggregate_spans(events_a)
    agg_b = aggregate_spans(events_b)
    paths = sorted(set(agg_a) | set(agg_b))
    zero = {"count": 0, "total_us": 0, "self_us": 0, "peak_nodes": 0}
    deltas: List[Tuple[str, Dict, Dict, int]] = []
    for path in paths:
        ea = agg_a.get(path, zero)
        eb = agg_b.get(path, zero)
        deltas.append((path, ea, eb,
                       eb["total_us"] - ea["total_us"]))
    deltas.sort(key=lambda row: (-abs(row[3]), row[0]))
    if top:
        deltas = deltas[:top]
    if not deltas:
        return "(no spans in either trace)"
    width = max(len(path) for path, _, _, _ in deltas)
    width = max(width, len("span"))
    lines = ["%-*s  %10s  %10s  %10s  %7s"
             % (width, "span", label_a[:10], label_b[:10], "delta",
                "ratio")]
    for path, ea, eb, delta in deltas:
        if ea["total_us"]:
            ratio = "%.2fx" % (eb["total_us"] / ea["total_us"])
        else:
            ratio = "new" if eb["total_us"] else "-"
        sign = "+" if delta >= 0 else "-"
        lines.append("%-*s  %10s  %10s  %s%9s  %7s" % (
            width, path, _fmt_us(ea["total_us"]),
            _fmt_us(eb["total_us"]), sign, _fmt_us(abs(delta)), ratio))
    return "\n".join(lines)
