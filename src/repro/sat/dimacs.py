"""DIMACS CNF parsing/serialization (interop with external solvers).

Also writes DRAT proof files (:func:`write_proof`) so a refutation
logged by :class:`repro.sat.Solver` can be handed to an external
checker (``drat-trim``) as well as the in-repo one
(:mod:`repro.sat.drat`).
"""

from __future__ import annotations

import io
from typing import Iterable, TextIO, Union

from .cnf import Cnf

__all__ = ["read_dimacs", "loads_dimacs", "write_dimacs",
           "write_proof"]


def loads_dimacs(text: str) -> Cnf:
    """Parse DIMACS CNF from a string."""
    return read_dimacs(io.StringIO(text))


def read_dimacs(source: Union[str, TextIO]) -> Cnf:
    """Parse a DIMACS CNF file (path or open handle).

    Tolerates comment lines, missing trailing 0 on the last clause, and
    clauses spanning several lines, as real-world files do.  The header
    variable count is honoured as a minimum.
    """
    if isinstance(source, str):
        with open(source) as handle:
            return read_dimacs(handle)

    cnf = Cnf()
    declared_vars = 0
    pending: list = []
    for raw in source:
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            tokens = line.split()
            if len(tokens) != 4 or tokens[1] != "cnf":
                raise ValueError("malformed problem line: %r" % line)
            declared_vars = int(tokens[2])
            cnf.num_vars = max(cnf.num_vars, declared_vars)
            continue
        if line.startswith("%"):
            break   # SATLIB trailer
        for token in line.split():
            literal = int(token)
            if literal == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                cnf.num_vars = max(cnf.num_vars, abs(literal))
                pending.append(literal)
    if pending:
        cnf.add_clause(pending)
    return cnf


def write_dimacs(cnf: Cnf, path: str) -> None:
    """Write a CNF in DIMACS format."""
    with open(path, "w") as handle:
        handle.write(cnf.to_dimacs())


def write_proof(proof: Iterable[str], path: str) -> None:
    """Write DRAT proof lines (as logged by ``Solver.proof``) to a file.

    The format is the standard textual DRAT accepted by external
    checkers: one clause per line, ``d``-prefixed deletions, ``0``
    terminators already included in the logged lines.
    """
    with open(path, "w") as handle:
        for line in proof:
            handle.write(line + "\n")
