"""SAT-based combinational equivalence checking (miter construction).

The classic alternative to canonical-form comparison [Tafertshofer et
al., Goldberg et al.]: encode spec and implementation over shared
inputs, OR the pairwise output XORs into a single miter output, and ask
the SAT solver whether it can be 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..circuit.netlist import Circuit, CircuitError
from ..core.equivalence import EquivalenceResult
from ..core.result import Stopwatch
from ..obs import get_tracer
from .cnf import Cnf, TseitinEncoder
from .solver import Solver

__all__ = ["build_miter", "check_equivalence_sat"]


def build_miter(spec: Circuit, impl: Circuit)\
        -> Tuple[Cnf, Dict[str, int], int]:
    """CNF whose satisfying assignments are distinguishing inputs.

    Returns ``(cnf, input_vars, miter_lit)``; the miter literal is
    already asserted, so plain satisfiability decides inequivalence.
    """
    if list(spec.inputs) != list(impl.inputs):
        raise CircuitError("input lists differ")
    if len(spec.outputs) != len(impl.outputs):
        raise CircuitError("output counts differ")
    encoder = TseitinEncoder()
    spec_map = encoder.encode_circuit(spec, prefix="spec/")
    impl_map = encoder.encode_circuit(impl, prefix="impl/")
    cnf = encoder.cnf

    diffs = []
    for s_net, i_net in zip(spec.outputs, impl.outputs):
        diff = cnf.new_var()
        encoder._encode_xor2(diff, spec_map[s_net], impl_map[i_net])
        diffs.append(diff)
    miter = cnf.new_var()
    for d in diffs:
        cnf.add_clause((miter, -d))
    cnf.add_clause(tuple(diffs) + (-miter,))
    cnf.add_clause((miter,))
    input_vars = {net: encoder.var_of(net) for net in spec.inputs}
    return cnf, input_vars, miter


def check_equivalence_sat(spec: Circuit, impl: Circuit,
                          proof: bool = False,
                          budget=None) -> EquivalenceResult:
    """Miter-SAT equivalence check for complete circuits.

    With ``proof=True`` the solver logs a DRAT trace; on an equivalent
    pair (UNSAT miter) the returned result carries it as ``.proof`` —
    a refutation of the miter CNF (also attached as ``.miter_cnf``)
    checkable with :func:`repro.sat.drat.check_drat`.  ``budget``
    (a :class:`repro.resilience.Budget`) is charged one step per
    propagated literal and cancels the solve deterministically.
    """
    if spec.free_nets() or impl.free_nets():
        raise CircuitError("equivalence check needs complete circuits")
    tracer = get_tracer()
    with Stopwatch() as clock:
        cnf, input_vars, _ = build_miter(spec, impl)
        solver = Solver(cnf, proof_log=proof)
        span = None if tracer is None else tracer.span(
            "sat:miter", vars=cnf.num_vars, clauses=len(cnf.clauses))
        try:
            result = solver.solve(budget=budget)
        finally:
            if span is not None:
                span.done(conflicts=solver.conflicts,
                          decisions=solver.decisions,
                          propagations=solver.propagations)
        cex: Optional[Dict[str, bool]] = None
        failing = None
        if result.satisfiable:
            assert result.model is not None
            cex = {net: result.model[var]
                   for net, var in input_vars.items()}
            spec_out = spec.evaluate(cex)
            impl_out = impl.evaluate(cex)
            for s_net, i_net in zip(spec.outputs, impl.outputs):
                if spec_out[s_net] != impl_out[i_net]:
                    failing = s_net
                    break
    out = EquivalenceResult(equivalent=not result.satisfiable,
                            counterexample=cex, failing_output=failing)
    out.seconds = clock.seconds
    out.stats = dict(result.stats)
    out.stats.update(cnf_vars=cnf.num_vars,
                     cnf_clauses=len(cnf.clauses))
    if proof:
        out.proof = list(solver.proof or ())
        out.miter_cnf = cnf
    return out
