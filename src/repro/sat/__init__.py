"""SAT backend: CNF encoding, CDCL solver, miter and CEGAR checks.

The solver (:mod:`repro.sat.solver`) is a modern CDCL core —
two-watched-literal propagation, EVSIDS, phase saving, Luby restarts,
LBD-based clause-DB reduction, opt-in DRAT proof logging — and the
checks here are the SAT side of the BDD/SAT portfolio
(:mod:`repro.core.portfolio`).  Proofs are audited by the in-repo RUP
checker (:mod:`repro.sat.drat`).
"""

from .cnf import Cnf, TseitinEncoder
from .solver import Solver, SolverResult
from .drat import check_drat, parse_proof
from .equivalence import build_miter, check_equivalence_sat
from .qbf import (check_output_exact_sat, check_symbolic_01x_sat,
                  dual_rail_expand)
from .dimacs import (loads_dimacs, read_dimacs, write_dimacs,
                     write_proof)

__all__ = [
    "Cnf",
    "TseitinEncoder",
    "Solver",
    "SolverResult",
    "build_miter",
    "check_drat",
    "check_equivalence_sat",
    "check_output_exact_sat",
    "check_symbolic_01x_sat",
    "dual_rail_expand",
    "parse_proof",
    "read_dimacs",
    "loads_dimacs",
    "write_dimacs",
    "write_proof",
]
