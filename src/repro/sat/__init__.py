"""SAT backend: CNF encoding, CDCL solver, miter and CEGAR checks."""

from .cnf import Cnf, TseitinEncoder
from .solver import Solver, SolverResult
from .equivalence import build_miter, check_equivalence_sat
from .qbf import (check_output_exact_sat, check_symbolic_01x_sat,
                  dual_rail_expand)
from .dimacs import loads_dimacs, read_dimacs, write_dimacs

__all__ = [
    "Cnf",
    "TseitinEncoder",
    "Solver",
    "SolverResult",
    "build_miter",
    "check_equivalence_sat",
    "check_output_exact_sat",
    "check_symbolic_01x_sat",
    "dual_rail_expand",
    "read_dimacs",
    "loads_dimacs",
    "write_dimacs",
]
