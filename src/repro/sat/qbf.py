"""SAT-based Black Box checks via CEGAR over the 2-QBF structure.

The output exact check asks ``∃x ∀Z ⋁_j ¬cond_j`` — a 2-QBF query.
This module decides it with the textbook counterexample-guided
abstraction refinement loop over two plain SAT solvers, realizing the
paper's future-work plan ("compare our BDD based implementation of the
different checks to a version using SAT engines") for the checks whose
quantifier structure SAT handles naturally.

Also provided: a CNF version of the symbolic 0,1,X check (a plain ∃
query over a dual-rail expansion of the netlist).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit, CircuitError
from ..obs import get_tracer
from ..partial.blackbox import PartialImplementation
from ..core.result import CheckResult, Stopwatch
from .cnf import Cnf, TseitinEncoder
from .solver import Solver

__all__ = ["check_output_exact_sat", "check_symbolic_01x_sat",
           "dual_rail_expand"]


def _encode_mismatch(encoder: TseitinEncoder, spec: Circuit,
                     partial: PartialImplementation, prefix: str)\
        -> Tuple[Dict[str, int], Dict[str, int], int]:
    """Encode spec+impl and a literal for "some output pair differs"."""
    spec_map = encoder.encode_circuit(spec, prefix=prefix + "spec/")
    impl_map = encoder.encode_circuit(partial.circuit,
                                      prefix=prefix + "impl/")
    cnf = encoder.cnf
    diffs: List[int] = []
    for s_net, i_net in zip(spec.outputs, partial.circuit.outputs):
        diff = cnf.new_var()
        encoder._encode_xor2(diff, spec_map[s_net], impl_map[i_net])
        diffs.append(diff)
    mismatch = cnf.new_var()
    for d in diffs:
        cnf.add_clause((mismatch, -d))
    cnf.add_clause(tuple(diffs) + (-mismatch,))
    return spec_map, impl_map, mismatch


def check_output_exact_sat(spec: Circuit,
                           partial: PartialImplementation,
                           max_iterations: int = 10_000,
                           budget=None) -> CheckResult:
    """Output exact check decided by CEGAR between two SAT solvers.

    *Verifier* query: given a candidate input ``x*``, is there a Black
    Box output assignment ``Z`` making all outputs correct?  *Abstraction*
    query: find an ``x`` that defeats every ``Z`` counterexample seen so
    far.  Terminates with either a real error witness (verifier UNSAT) or
    an abstraction UNSAT (no error detectable by this check).

    ``budget`` (a :class:`repro.resilience.Budget`) spans the whole
    CEGAR loop: both solvers charge it one step per propagated literal,
    so a ``max_steps`` limit cancels the check at a deterministic,
    machine-independent point — the hook the portfolio race uses.
    The aggregated solver counters are reported in ``stats`` under
    ``sat_*`` keys.
    """
    if spec.free_nets():
        raise CircuitError("specification must be a complete circuit")
    partial.validate_against(spec)
    z_nets = partial.box_outputs
    inputs = spec.inputs
    tracer = get_tracer()
    totals = {"decisions": 0, "propagations": 0, "conflicts": 0,
              "restarts": 0, "learned": 0, "deleted": 0}

    def _fold(run) -> None:
        for key in totals:
            totals[key] += run.stats.get(key, 0)

    def _sat_stats() -> Dict[str, int]:
        return {"sat_" + key: value for key, value in totals.items()}

    with Stopwatch() as clock:
        # Verifier: x fixed by assumptions, Z free, mismatch forced 0.
        verifier_enc = TseitinEncoder()
        v_spec, v_impl, v_mismatch = _encode_mismatch(
            verifier_enc, spec, partial, prefix="v/")
        verifier_cnf = verifier_enc.cnf
        verifier_cnf.add_clause((-v_mismatch,))
        verifier = Solver(verifier_cnf)
        v_in = {net: verifier_enc.var_of(net) for net in inputs}
        v_z = {net: verifier_enc.var_of(net) for net in z_nets}
        # A box output outside every encoded output cone gets its var
        # allocated only now, past the solver's snapshot; grow the
        # solver so such unconstrained Z vars still appear in models.
        verifier.ensure_vars(verifier_enc.cnf.num_vars)

        # Abstraction: x free; one mismatch copy per refuted Z.
        abstraction = Solver()
        a_in = {net: abstraction.new_var() for net in inputs}

        candidate = {net: False for net in inputs}
        span = None if tracer is None else tracer.span(
            "sat:cegar", inputs=len(inputs), z_nets=len(z_nets))
        try:
            result = _cegar_loop(
                spec, partial, inputs, z_nets, verifier, v_in, v_z,
                abstraction, a_in, candidate, max_iterations, budget,
                clock, _fold, _sat_stats)
        finally:
            if span is not None:
                span.done(**_sat_stats())
    return result


def _cegar_loop(spec, partial, inputs, z_nets, verifier, v_in, v_z,
                abstraction, a_in, candidate, max_iterations, budget,
                clock, _fold, _sat_stats) -> CheckResult:
    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        assumptions = [v_in[net] if candidate[net] else -v_in[net]
                       for net in inputs]
        verdict = verifier.solve(assumptions, budget=budget)
        _fold(verdict)
        if not verdict.satisfiable:
            stats = {"iterations": iterations}
            stats.update(_sat_stats())
            return CheckResult(
                check="output_exact_sat", error_found=True,
                counterexample=dict(candidate),
                detail="CEGAR converged in %d iterations"
                       % iterations,
                seconds=clock.seconds,
                stats=stats)
        assert verdict.model is not None
        z_star = {net: verdict.model[v_z[net]] for net in z_nets}

        # Refine: next candidate must mismatch under Z = z_star.
        refinement = TseitinEncoder(Cnf())
        # Encode into the abstraction solver's variable space.
        offset_cnf = refinement.cnf
        offset_cnf.num_vars = abstraction.num_vars
        for net in inputs:
            refinement._net_var[net] = a_in[net]
        for net, value in z_star.items():
            var = refinement.var_of(net)
            offset_cnf.add_clause((var,) if value else (-var,))
        _, _, mismatch = _encode_mismatch(
            refinement, spec, partial,
            prefix="a%d/" % iterations)
        offset_cnf.add_clause((mismatch,))
        abstraction.ensure_vars(offset_cnf.num_vars)
        ok = True
        for clause in offset_cnf.clauses:
            ok = abstraction.add_clause(clause) and ok
        if not ok:
            break
        proposal = abstraction.solve(budget=budget)
        _fold(proposal)
        if not proposal.satisfiable:
            break
        assert proposal.model is not None
        candidate = {net: proposal.model[a_in[net]]
                     for net in inputs}
    else:
        raise RuntimeError("CEGAR iteration limit exceeded")
    stats = {"iterations": iterations}
    stats.update(_sat_stats())
    return CheckResult(
        check="output_exact_sat", error_found=False,
        detail="CEGAR converged in %d iterations" % iterations,
        seconds=clock.seconds,
        stats=stats)


def dual_rail_expand(circuit: Circuit,
                     name: Optional[str] = None) -> Circuit:
    """Two-valued circuit computing the 0,1,X semantics of a partial one.

    Every net ``s`` becomes a pair ``s.hi`` / ``s.lo`` (definitely-1 /
    definitely-0).  Primary inputs stay two-valued and feed both rails;
    Black Box outputs become constant (0, 0) = unknown.  Outputs of the
    result are the rail pairs of the original outputs, in order
    ``o.hi, o.lo`` per original output ``o`` — this is the
    signal-duplication encoding of Jain et al. [10] as an explicit
    netlist transformation.
    """
    result = Circuit(name or circuit.name + "_dual")
    result.add_inputs(circuit.inputs)

    hi: Dict[str, str] = {}
    lo: Dict[str, str] = {}
    builder_counter = [0]

    def fresh(base: str) -> str:
        builder_counter[0] += 1
        return "dr%d_%s" % (builder_counter[0], base)

    for net in circuit.inputs:
        hi[net] = net
        inv = fresh(net)
        result.add_gate(inv, GateType.NOT, [net])
        lo[net] = inv
    for net in circuit.free_nets():
        h = fresh(net + ".hi")
        l = fresh(net + ".lo")
        result.add_gate(h, GateType.CONST0, [])
        result.add_gate(l, GateType.CONST0, [])
        hi[net] = h
        lo[net] = l

    def emit(gtype: GateType, ins: List[str]) -> str:
        net = fresh(gtype.value)
        result.add_gate(net, gtype, ins)
        return net

    for net in circuit.topological_order():
        gate = circuit.gate(net)
        h_in = [hi[s] for s in gate.inputs]
        l_in = [lo[s] for s in gate.inputs]
        if gate.gtype in (GateType.AND, GateType.NAND):
            h = emit(GateType.AND, h_in)
            l = emit(GateType.OR, l_in)
        elif gate.gtype in (GateType.OR, GateType.NOR):
            h = emit(GateType.OR, h_in)
            l = emit(GateType.AND, l_in)
        elif gate.gtype in (GateType.XOR, GateType.XNOR):
            h, l = h_in[0], l_in[0]
            for hh, ll in zip(h_in[1:], l_in[1:]):
                new_h = emit(GateType.OR, [emit(GateType.AND, [h, ll]),
                                           emit(GateType.AND, [l, hh])])
                new_l = emit(GateType.OR, [emit(GateType.AND, [h, hh]),
                                           emit(GateType.AND, [l, ll])])
                h, l = new_h, new_l
        elif gate.gtype is GateType.NOT:
            h, l = l_in[0], h_in[0]
        elif gate.gtype is GateType.BUF:
            h, l = h_in[0], l_in[0]
        elif gate.gtype is GateType.CONST0:
            h = emit(GateType.CONST0, [])
            l = emit(GateType.CONST1, [])
        elif gate.gtype is GateType.CONST1:
            h = emit(GateType.CONST1, [])
            l = emit(GateType.CONST0, [])
        else:
            raise CircuitError("cannot expand gate type %r" % gate.gtype)
        if gate.gtype in (GateType.NAND, GateType.NOR, GateType.XNOR):
            h, l = l, h
        hi[net] = h
        lo[net] = l

    for index, net in enumerate(circuit.outputs):
        h_out = "out%d.hi" % index
        l_out = "out%d.lo" % index
        result.add_gate(h_out, GateType.BUF, [hi[net]])
        result.add_gate(l_out, GateType.BUF, [lo[net]])
        result.add_output(h_out)
        result.add_output(l_out)
    result.validate()
    return result


def check_symbolic_01x_sat(spec: Circuit,
                           partial: PartialImplementation,
                           budget=None) -> CheckResult:
    """The symbolic 0,1,X check as one SAT query over the dual-rail net.

    Error iff SAT: some input makes an implementation rail definite and
    opposite to the specification output.  ``budget`` cancels the solve
    deterministically (one step per propagated literal); the solver's
    per-run counters land in ``stats`` under ``sat_*`` keys.
    """
    if spec.free_nets():
        raise CircuitError("specification must be a complete circuit")
    partial.validate_against(spec)
    tracer = get_tracer()
    with Stopwatch() as clock:
        dual = dual_rail_expand(partial.circuit)
        encoder = TseitinEncoder()
        spec_map = encoder.encode_circuit(spec, prefix="spec/")
        dual_map = encoder.encode_circuit(dual, prefix="dual/")
        cnf = encoder.cnf
        bads: List[int] = []
        dual_outs = dual.outputs
        for index, s_net in enumerate(spec.outputs):
            hi_var = dual_map[dual_outs[2 * index]]
            lo_var = dual_map[dual_outs[2 * index + 1]]
            f_var = spec_map[s_net]
            bad_hi = cnf.new_var()   # hi ∧ ¬f
            cnf.add_clause((-bad_hi, hi_var))
            cnf.add_clause((-bad_hi, -f_var))
            cnf.add_clause((bad_hi, -hi_var, f_var))
            bad_lo = cnf.new_var()   # lo ∧ f
            cnf.add_clause((-bad_lo, lo_var))
            cnf.add_clause((-bad_lo, f_var))
            cnf.add_clause((bad_lo, -lo_var, -f_var))
            bads.extend((bad_hi, bad_lo))
        cnf.add_clause(tuple(bads))
        solver = Solver(cnf)
        span = None if tracer is None else tracer.span(
            "sat:dual_rail", vars=cnf.num_vars,
            clauses=len(cnf.clauses))
        try:
            verdict = solver.solve(budget=budget)
        finally:
            if span is not None:
                span.done(conflicts=solver.conflicts,
                          decisions=solver.decisions,
                          propagations=solver.propagations)
        cex = None
        if verdict.satisfiable:
            assert verdict.model is not None
            cex = {net: verdict.model[encoder.var_of(net)]
                   for net in spec.inputs}
    stats = {"cnf_vars": cnf.num_vars, "cnf_clauses": len(cnf.clauses),
             "conflicts": verdict.conflicts}
    stats.update(("sat_" + key, value)
                 for key, value in verdict.stats.items())
    return CheckResult(
        check="symbolic_01x_sat",
        error_found=verdict.satisfiable,
        counterexample=cex,
        seconds=clock.seconds,
        stats=stats)
