"""CNF formulas and Tseitin encoding of netlists.

Literals follow the DIMACS convention: variables are positive integers,
a negative literal is the negation.  The paper's future-work section
proposes replacing the BDD engine with SAT; this package provides that
alternative backend for the checks that are ∃/∃∀-shaped.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit, CircuitError

__all__ = ["Cnf", "TseitinEncoder"]


class Cnf:
    """A growable CNF formula with a variable allocator."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        """Allocate a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause; literals must reference allocated variables."""
        clause = tuple(literals)
        for lit in clause:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError("literal %d out of range" % lit)
        self.clauses.append(clause)

    def to_dimacs(self) -> str:
        """Serialize in DIMACS CNF format."""
        lines = ["p cnf %d %d" % (self.num_vars, len(self.clauses))]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return "<Cnf %d vars, %d clauses>" % (self.num_vars,
                                              len(self.clauses))


class TseitinEncoder:
    """Encode circuit nets into a shared :class:`Cnf`.

    Multiple circuits can be encoded against the same encoder; nets with
    equal names share variables (that is how miters share their primary
    inputs).  Use ``prefix`` to keep two circuits' internal nets apart.
    """

    def __init__(self, cnf: Optional[Cnf] = None) -> None:
        self.cnf = cnf or Cnf()
        self._net_var: Dict[str, int] = {}

    def var_of(self, net: str) -> int:
        """CNF variable of a net, allocating on first use."""
        var = self._net_var.get(net)
        if var is None:
            var = self.cnf.new_var()
            self._net_var[net] = var
        return var

    def has_net(self, net: str) -> bool:
        """Whether the net already has a CNF variable."""
        return net in self._net_var

    # ------------------------------------------------------------------

    def encode_gate_function(self, gtype: GateType, out: int,
                             ins: Sequence[int]) -> None:
        """Clauses forcing ``out <-> gtype(ins)``."""
        cnf = self.cnf
        if gtype in (GateType.AND, GateType.NAND):
            lit = out if gtype is GateType.AND else -out
            for i in ins:
                cnf.add_clause((-lit, i))
            cnf.add_clause(tuple(-i for i in ins) + (lit,))
        elif gtype in (GateType.OR, GateType.NOR):
            lit = out if gtype is GateType.OR else -out
            for i in ins:
                cnf.add_clause((lit, -i))
            cnf.add_clause(tuple(ins) + (-lit,))
        elif gtype in (GateType.XOR, GateType.XNOR):
            # Parity via a chain of 2-input XORs; negate at the last
            # stage for XNOR (out <-> ¬parity).
            lit = out if gtype is GateType.XOR else -out
            current = ins[0]
            for nxt in ins[1:-1]:
                aux = cnf.new_var()
                self._encode_xor2(aux, current, nxt)
                current = aux
            if len(ins) == 1:
                self._encode_eq(lit, current)
            else:
                self._encode_xor2(lit, current, ins[-1])
        elif gtype is GateType.NOT:
            self._encode_eq(out, -ins[0])
        elif gtype is GateType.BUF:
            self._encode_eq(out, ins[0])
        elif gtype is GateType.CONST0:
            cnf.add_clause((-out,))
        elif gtype is GateType.CONST1:
            cnf.add_clause((out,))
        else:
            raise CircuitError("cannot encode gate type %r" % gtype)

    def _encode_eq(self, a: int, b: int) -> None:
        self.cnf.add_clause((-a, b))
        self.cnf.add_clause((a, -b))

    def _encode_xor2(self, out: int, a: int, b: int) -> None:
        cnf = self.cnf
        cnf.add_clause((-out, a, b))
        cnf.add_clause((-out, -a, -b))
        cnf.add_clause((out, -a, b))
        cnf.add_clause((out, a, -b))

    def encode_circuit(self, circuit: Circuit, prefix: str = "")\
            -> Dict[str, int]:
        """Encode every gate of a circuit; returns net-to-variable map.

        Primary inputs and free nets are *not* prefixed, so encoding a
        specification and an implementation with different prefixes
        against one encoder shares exactly the inputs (and, for partial
        implementations, the Black Box outputs).
        """
        shared = set(circuit.inputs) | set(circuit.free_nets())

        def name_of(net: str) -> str:
            return net if net in shared else prefix + net

        for net in circuit.topological_order():
            gate = circuit.gate(net)
            out = self.var_of(name_of(net))
            ins = [self.var_of(name_of(src)) for src in gate.inputs]
            self.encode_gate_function(gate.gtype, out, ins)
        return {net: self.var_of(name_of(net))
                for net in circuit.nets() + circuit.free_nets()}
