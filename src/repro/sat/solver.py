"""A modern CDCL SAT solver (GRASP/Chaff/MiniSat lineage).

Implements the standard modern recipe: two-watched-literal propagation
kept hot, first-UIP conflict analysis with clause learning, EVSIDS
variable activities (bump-and-decay via a growing increment), phase
saving, Luby restarts, LBD ("glue") clause quality tracking with
activity-free clause-database reduction, and opt-in DRAT proof
logging.  Pure Python, built for the moderate-size miters and CEGAR
subproblems of this package — not a competition solver.

The paper cites GRASP [Marques-Silva & Sakallah] as the engine its
future-work SAT backend would use; this is our stand-in.  Per-run
statistics (decisions, propagations, conflicts, restarts,
learned/deleted clauses) are exposed through
:attr:`SolverResult.stats`, mirroring how ``CheckResult.stats`` flows
through the check ladder.

Determinism: the solver is a pure function of the clause/assumption
sequence — no wall clock, no randomness.  A
:class:`repro.resilience.Budget` passed to :meth:`Solver.solve` is
charged one step per propagated literal, so ``max_steps`` budgets cut
the search at a machine-independent point; this is what the BDD/SAT
portfolio race (:mod:`repro.core.portfolio`) builds its deterministic
work quanta on.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .cnf import Cnf

__all__ = ["Solver", "SolverResult"]


class SolverResult:
    """Outcome of a :meth:`Solver.solve` call.

    ``stats`` carries the per-run counters (everything is reset at the
    start of each ``solve``): ``decisions``, ``propagations``,
    ``conflicts``, ``restarts``, ``learned`` (clauses added this run)
    and ``deleted`` (learned clauses dropped by DB reduction this run).
    ``conflicts`` / ``decisions`` stay as attributes for existing
    callers.
    """

    __slots__ = ("satisfiable", "model", "conflicts", "decisions",
                 "stats")

    def __init__(self, satisfiable: bool, model: Optional[Dict[int, bool]],
                 conflicts: int, decisions: int,
                 stats: Optional[Dict[str, int]] = None) -> None:
        self.satisfiable = satisfiable
        self.model = model
        self.conflicts = conflicts
        self.decisions = decisions
        self.stats: Dict[str, int] = dict(stats or {})
        self.stats.setdefault("conflicts", conflicts)
        self.stats.setdefault("decisions", decisions)

    def __bool__(self) -> bool:
        return self.satisfiable

    def __repr__(self) -> str:
        return "<SolverResult %s conflicts=%d decisions=%d>" % (
            "SAT" if self.satisfiable else "UNSAT", self.conflicts,
            self.decisions)


def _luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (0-based index).

    MiniSat's formulation: find the subsequence containing ``index``,
    then recurse into it.
    """
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) >> 1
        seq -= 1
        index %= size
    return 1 << seq


class _Clause:
    """One clause in the solver's database.

    ``lits`` is mutated in place by the watch machinery (positions 0/1
    are the watched literals).  Learned clauses carry their LBD — the
    number of distinct decision levels among their literals at learn
    time — which is the quality metric DB reduction sorts by.
    ``deleted`` clauses stay in watch lists until the next visit drops
    them lazily; propagation never follows a deleted clause.
    """

    __slots__ = ("lits", "learned", "lbd", "deleted")

    def __init__(self, lits: List[int], learned: bool = False,
                 lbd: int = 0) -> None:
        self.lits = lits
        self.learned = learned
        self.lbd = lbd
        self.deleted = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " learned lbd=%d" % self.lbd if self.learned else ""
        return "<Clause %s%s%s>" % (self.lits, tag,
                                    " deleted" if self.deleted else "")


def _proof_line(lits: Sequence[int], delete: bool = False) -> str:
    """One DRAT line: ``[d ]lit ... 0``."""
    body = " ".join(str(lit) for lit in lits)
    if delete:
        return ("d " + body + " 0") if body else "d 0"
    return (body + " 0") if body else "0"


class Solver:
    """Incremental CDCL solver over DIMACS-style integer literals.

    ``proof_log=True`` records a DRAT proof of the run in
    :attr:`proof`: one line per learned clause (including level-0
    units), ``d``-prefixed lines for clauses dropped by DB reduction,
    and a final ``0`` (the empty clause) when the instance is refuted
    without assumptions.  Check it with :func:`repro.sat.drat.check_drat`.

    ``reduce_base`` / ``reduce_inc`` tune when the learned-clause
    database is reduced: a reduction runs when the number of live
    learned clauses reaches ``reduce_base + reduce_inc * reductions``.
    Glue clauses (LBD <= 2) and locked clauses (currently the reason of
    an assignment) are never deleted.
    """

    UNASSIGNED = -1

    def __init__(self, cnf: Optional[Cnf] = None,
                 proof_log: bool = False,
                 reduce_base: int = 2000,
                 reduce_inc: int = 300) -> None:
        self.num_vars = 0
        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        # lit -> list of clauses watching it
        self._watches: Dict[int, List[_Clause]] = {}
        self._assign: List[int] = [Solver.UNASSIGNED]  # 1-indexed
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._queue_head = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        # Lazy max-heap of (-activity, var); stale entries are skipped.
        self._order: List[Tuple[float, int]] = []
        self._ok = True
        self._budget = None
        self._reduce_base = reduce_base
        self._reduce_inc = reduce_inc
        self._reductions = 0
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_added = 0
        self.learned_deleted = 0
        self.proof: Optional[List[str]] = [] if proof_log else None
        if cnf is not None:
            self.ensure_vars(cnf.num_vars)
            for clause in cnf.clauses:
                self.add_clause(clause)

    # ------------------------------------------------------------------

    def ensure_vars(self, count: int) -> None:
        """Grow the variable universe to at least ``count`` variables."""
        while self.num_vars < count:
            self.num_vars += 1
            self._assign.append(Solver.UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            heapq.heappush(self._order, (0.0, self.num_vars))

    def new_var(self) -> int:
        """Allocate one fresh variable; returns its index."""
        self.ensure_vars(self.num_vars + 1)
        return self.num_vars

    def _log_add(self, lits: Sequence[int]) -> None:
        if self.proof is not None:
            self.proof.append(_proof_line(lits))

    def _log_delete(self, lits: Sequence[int]) -> None:
        if self.proof is not None:
            self.proof.append(_proof_line(lits, delete=True))

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause at decision level 0; returns False on conflict."""
        if not self._ok:
            return False
        seen = set()
        clause: List[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        # Remove literals already false at level 0; satisfied -> drop.
        filtered: List[int] = []
        for lit in clause:
            value = self._value(lit)
            if value == 1 and self._level[abs(lit)] == 0:
                return True
            if value == 0 and self._level[abs(lit)] == 0:
                continue
            filtered.append(lit)
        # DRAT: a clause weakened by level-0 simplification is still a
        # RUP consequence of the database (the dropped literals are
        # top-level-false), so logging the filtered form keeps the
        # proof checkable.  Unfiltered input clauses are axioms and are
        # not logged.
        if len(filtered) < len(clause):
            self._log_add(filtered)
        if not filtered:
            self._ok = False
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self._log_add(())
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._log_add(())
                self._ok = False
                return False
            return True
        ref = _Clause(filtered)
        self._clauses.append(ref)
        self._watch_clause(ref)
        return True

    # ------------------------------------------------------------------

    def _watch_clause(self, clause: _Clause) -> None:
        lits = clause.lits
        self._watches.setdefault(-lits[0], []).append(clause)
        self._watches.setdefault(-lits[1], []).append(clause)

    def _value(self, lit: int) -> int:
        """1 true, 0 false, -1 unassigned — for a literal."""
        assignment = self._assign[abs(lit)]
        if assignment == Solver.UNASSIGNED:
            return -1
        return assignment if lit > 0 else 1 - assignment

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        value = self._value(lit)
        if value == 0:
            return False
        if value == 1:
            return True
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None.

        The budget (when attached by :meth:`solve`) is charged one step
        per propagated literal, at the top of the loop where the watch
        lists are consistent — a ``BudgetExceededError`` raised here
        leaves the solver reusable.
        """
        budget = self._budget
        while self._queue_head < len(self._trail):
            if budget is not None:
                budget.tick("sat_propagate")
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self.propagations += 1
            watchers = self._watches.get(lit)
            if not watchers:
                continue
            keep: List[_Clause] = []
            i = 0
            while i < len(watchers):
                ref = watchers[i]
                i += 1
                if ref.deleted:
                    continue  # lazily dropped from this watch list
                clause = ref.lits
                # Normalize: false watch at position 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    keep.append(ref)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(
                            -clause[1], []).append(ref)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(ref)
                if not self._enqueue(first, ref):
                    # Conflict: restore remaining watchers and report.
                    keep.extend(watchers[i:])
                    self._watches[lit] = keep
                    return ref
            self._watches[lit] = keep
        return None

    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._order = [(-self._activity[v], v)
                           for v in range(1, self.num_vars + 1)
                           if self._assign[v] == Solver.UNASSIGNED]
            heapq.heapify(self._order)
        elif self._assign[var] == Solver.UNASSIGNED:
            heapq.heappush(self._order, (-self._activity[var], var))

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int, int]:
        """First-UIP learning; returns (learned clause, backjump level,
        LBD)."""
        learned: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        reason: Sequence[int] = conflict.lits
        index = len(self._trail)
        current_level = len(self._trail_lim)
        while True:
            for q in reason:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            if counter == 0:
                break
            clause_reason = self._reason[abs(lit)]
            assert clause_reason is not None
            reason = [q for q in clause_reason.lits if q != lit]
            seen[abs(lit)] = False
        learned.insert(0, -lit)
        lbd = len({self._level[abs(q)] for q in learned})
        if len(learned) == 1:
            return learned, 0, lbd
        back_level = max(self._level[abs(q)] for q in learned[1:])
        # Put a literal of the backtrack level in watch position 1.
        for k in range(1, len(learned)):
            if self._level[abs(learned[k])] == back_level:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, back_level, lbd

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._phase[var] = self._assign[var] == 1
            self._assign[var] = Solver.UNASSIGNED
            self._reason[var] = None
            heapq.heappush(self._order, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    def _decide(self) -> int:
        while self._order:
            _, var = heapq.heappop(self._order)
            if self._assign[var] == Solver.UNASSIGNED:
                return var if self._phase[var] else -var
        return 0

    # -- learned-clause database ---------------------------------------

    def _locked(self, clause: _Clause) -> bool:
        """Whether ``clause`` is the reason of a current assignment.

        While locked, the asserted literal sits at watch position 0 (the
        watch swap never moves a true literal out of position 0), so one
        lookup suffices.
        """
        if not clause.lits:
            return False
        var = abs(clause.lits[0])
        return (self._assign[var] != Solver.UNASSIGNED
                and self._reason[var] is clause)

    def _reduce_db(self) -> None:
        """Drop the worse half of the deletable learned clauses.

        Quality order is (LBD, size): glue clauses (LBD <= 2) and
        locked clauses are never deleted.  Deleted clauses are only
        marked here; the watch lists shed them lazily on the next
        visit, so no watch-list surgery happens on the hot path.
        """
        live = [c for c in self._learned if not c.deleted]
        keep: List[_Clause] = []
        candidates: List[_Clause] = []
        for clause in live:
            if clause.lbd <= 2 or self._locked(clause):
                keep.append(clause)
            else:
                candidates.append(clause)
        candidates.sort(key=lambda c: (c.lbd, len(c.lits)))
        cut = len(candidates) // 2
        for clause in candidates[cut:]:
            clause.deleted = True
            self.learned_deleted += 1
            self._log_delete(clause.lits)
        self._learned = keep + candidates[:cut]
        self._reductions += 1

    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (),
              conflict_budget: Optional[int] = None,
              budget=None) -> SolverResult:
        """Decide satisfiability under optional assumptions.

        Raises ``RuntimeError`` when a finite ``conflict_budget`` is
        exhausted — callers treating this solver as an oracle should
        leave the budget infinite.  ``budget`` (a
        :class:`repro.resilience.Budget`) is charged one step per
        propagated literal; its limits raise
        ``BudgetExceededError`` at a consistent point, leaving the
        solver reusable — this is the deterministic cancellation hook
        the portfolio race uses.
        """
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        learned_before = self.learned_added
        deleted_before = self.learned_deleted
        if not self._ok:
            return SolverResult(False, None, 0, 0, self._stats(0, 0))
        self._backtrack(0)
        for lit in assumptions:
            self.ensure_vars(abs(lit))
        self._budget = budget

        try:
            return self._search(assumptions, conflict_budget,
                                learned_before, deleted_before)
        finally:
            self._budget = None

    def _stats(self, learned_before: int,
               deleted_before: int) -> Dict[str, int]:
        return {"decisions": self.decisions,
                "propagations": self.propagations,
                "conflicts": self.conflicts,
                "restarts": self.restarts,
                "learned": self.learned_added - learned_before,
                "deleted": self.learned_deleted - deleted_before}

    def _search(self, assumptions: Sequence[int],
                conflict_budget: Optional[int],
                learned_before: int,
                deleted_before: int) -> SolverResult:
        def done(satisfiable: bool,
                 model: Optional[Dict[int, bool]]) -> SolverResult:
            return SolverResult(satisfiable, model, self.conflicts,
                                self.decisions,
                                self._stats(learned_before,
                                            deleted_before))

        restart_count = 0
        limit = 32 * _luby(restart_count)
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if conflict_budget is not None \
                        and self.conflicts > conflict_budget:
                    raise RuntimeError("conflict budget exhausted")
                if len(self._trail_lim) == 0:
                    if not assumptions:
                        self._log_add(())
                    return done(False, None)
                learned, back_level, lbd = self._analyze(conflict)
                self._log_add(learned)
                self._backtrack(back_level)
                if len(learned) > 1:
                    ref = _Clause(learned, learned=True, lbd=lbd)
                    self._learned.append(ref)
                    self._watch_clause(ref)
                    self.learned_added += 1
                    if not self._enqueue(learned[0], ref):
                        if not assumptions:
                            self._log_add(())
                        return done(False, None)
                else:
                    self.learned_added += 1
                    if not self._enqueue(learned[0], None):
                        if not assumptions:
                            self._log_add(())
                        return done(False, None)
                self._var_inc /= self._var_decay
                if len(self._learned) >= (self._reduce_base
                                          + self._reduce_inc
                                          * self._reductions):
                    self._reduce_db()
                if conflicts_here >= limit:
                    self.restarts += 1
                    restart_count += 1
                    limit = 32 * _luby(restart_count)
                    conflicts_here = 0
                    self._backtrack(0)
                continue

            # Assumptions before free decisions.
            pending = None
            for lit in assumptions:
                value = self._value(lit)
                if value == 0:
                    return done(False, None)
                if value == -1:
                    pending = lit
                    break
            if pending is None:
                pending = self._decide()
                if pending == 0:
                    model = {v: self._assign[v] == 1
                             for v in range(1, self.num_vars + 1)}
                    self._backtrack(0)
                    return done(True, model)
                self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(pending, None)
