"""A compact CDCL SAT solver (GRASP/Chaff lineage).

Implements the standard modern recipe: two-watched-literal propagation,
first-UIP conflict analysis with clause learning, VSIDS-style activity
decision heuristic, phase saving, Luby restarts and learned-clause
deletion.  Pure Python, built for the moderate-size miters and CEGAR
subproblems of this package — not a competition solver.

The paper cites GRASP [Marques-Silva & Sakallah] as the engine its
future-work SAT backend would use; this is our stand-in.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .cnf import Cnf

__all__ = ["Solver", "SolverResult"]


class SolverResult:
    """Outcome of a :meth:`Solver.solve` call."""

    __slots__ = ("satisfiable", "model", "conflicts", "decisions")

    def __init__(self, satisfiable: bool, model: Optional[Dict[int, bool]],
                 conflicts: int, decisions: int) -> None:
        self.satisfiable = satisfiable
        self.model = model
        self.conflicts = conflicts
        self.decisions = decisions

    def __bool__(self) -> bool:
        return self.satisfiable

    def __repr__(self) -> str:
        return "<SolverResult %s conflicts=%d decisions=%d>" % (
            "SAT" if self.satisfiable else "UNSAT", self.conflicts,
            self.decisions)


def _luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (0-based index).

    MiniSat's formulation: find the subsequence containing ``index``,
    then recurse into it.
    """
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) >> 1
        seq -= 1
        index %= size
    return 1 << seq


class Solver:
    """Incremental CDCL solver over DIMACS-style integer literals."""

    UNASSIGNED = -1

    def __init__(self, cnf: Optional[Cnf] = None) -> None:
        self.num_vars = 0
        self._clauses: List[List[int]] = []
        self._learned: List[List[int]] = []
        # lit -> list of clause refs watching it; lit index = encoded lit
        self._watches: Dict[int, List[List[int]]] = {}
        self._assign: List[int] = [Solver.UNASSIGNED]  # 1-indexed
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._queue_head = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        # Lazy max-heap of (-activity, var); stale entries are skipped.
        self._order: List[Tuple[float, int]] = []
        self._ok = True
        self.conflicts = 0
        self.decisions = 0
        if cnf is not None:
            self.ensure_vars(cnf.num_vars)
            for clause in cnf.clauses:
                self.add_clause(clause)

    # ------------------------------------------------------------------

    def ensure_vars(self, count: int) -> None:
        """Grow the variable universe to at least ``count`` variables."""
        while self.num_vars < count:
            self.num_vars += 1
            self._assign.append(Solver.UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            heapq.heappush(self._order, (0.0, self.num_vars))

    def new_var(self) -> int:
        """Allocate one fresh variable; returns its index."""
        self.ensure_vars(self.num_vars + 1)
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause at decision level 0; returns False on conflict."""
        if not self._ok:
            return False
        seen = set()
        clause: List[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        # Remove literals already false at level 0; satisfied -> drop.
        filtered: List[int] = []
        for lit in clause:
            value = self._value(lit)
            if value == 1 and self._level[abs(lit)] == 0:
                return True
            if value == 0 and self._level[abs(lit)] == 0:
                continue
            filtered.append(lit)
        if not filtered:
            self._ok = False
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        self._clauses.append(filtered)
        self._watch_clause(filtered)
        return True

    # ------------------------------------------------------------------

    def _watch_clause(self, clause: List[int]) -> None:
        self._watches.setdefault(-clause[0], []).append(clause)
        self._watches.setdefault(-clause[1], []).append(clause)

    def _value(self, lit: int) -> int:
        """1 true, 0 false, -1 unassigned — for a literal."""
        assignment = self._assign[abs(lit)]
        if assignment == Solver.UNASSIGNED:
            return -1
        return assignment if lit > 0 else 1 - assignment

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        value = self._value(lit)
        if value == 0:
            return False
        if value == 1:
            return True
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            watchers = self._watches.get(lit)
            if not watchers:
                continue
            keep: List[List[int]] = []
            i = 0
            while i < len(watchers):
                clause = watchers[i]
                i += 1
                # Normalize: false watch at position 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    keep.append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(
                            -clause[1], []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(clause)
                if not self._enqueue(first, clause):
                    # Conflict: restore remaining watchers and report.
                    keep.extend(watchers[i:])
                    self._watches[lit] = keep
                    return clause
            self._watches[lit] = keep
        return None

    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._order = [(-self._activity[v], v)
                           for v in range(1, self.num_vars + 1)
                           if self._assign[v] == Solver.UNASSIGNED]
            heapq.heapify(self._order)
        elif self._assign[var] == Solver.UNASSIGNED:
            heapq.heappush(self._order, (-self._activity[var], var))

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """First-UIP learning; returns (learned clause, backtrack level)."""
        learned: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        reason: Sequence[int] = conflict
        index = len(self._trail)
        current_level = len(self._trail_lim)
        while True:
            for q in reason:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            if counter == 0:
                break
            clause_reason = self._reason[abs(lit)]
            assert clause_reason is not None
            reason = [q for q in clause_reason if q != lit]
            seen[abs(lit)] = False
        learned.insert(0, -lit)
        if len(learned) == 1:
            return learned, 0
        back_level = max(self._level[abs(q)] for q in learned[1:])
        # Put a literal of the backtrack level in watch position 1.
        for k in range(1, len(learned)):
            if self._level[abs(learned[k])] == back_level:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, back_level

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._phase[var] = self._assign[var] == 1
            self._assign[var] = Solver.UNASSIGNED
            self._reason[var] = None
            heapq.heappush(self._order, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    def _decide(self) -> int:
        while self._order:
            _, var = heapq.heappop(self._order)
            if self._assign[var] == Solver.UNASSIGNED:
                return var if self._phase[var] else -var
        return 0

    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (),
              conflict_budget: Optional[int] = None) -> SolverResult:
        """Decide satisfiability under optional assumptions.

        Raises ``RuntimeError`` when a finite ``conflict_budget`` is
        exhausted — callers treating this solver as an oracle should
        leave the budget infinite.
        """
        self.conflicts = 0
        self.decisions = 0
        if not self._ok:
            return SolverResult(False, None, 0, 0)
        self._backtrack(0)
        for lit in assumptions:
            self.ensure_vars(abs(lit))

        restart_count = 0
        limit = 32 * _luby(restart_count)
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if conflict_budget is not None \
                        and self.conflicts > conflict_budget:
                    raise RuntimeError("conflict budget exhausted")
                if len(self._trail_lim) == 0:
                    return SolverResult(False, None, self.conflicts,
                                        self.decisions)
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learned) > 1:
                    self._learned.append(learned)
                    self._watch_clause(learned)
                if not self._enqueue(learned[0],
                                     learned if len(learned) > 1
                                     else None):
                    return SolverResult(False, None, self.conflicts,
                                        self.decisions)
                self._var_inc /= self._var_decay
                if conflicts_here >= limit:
                    restart_count += 1
                    limit = 32 * _luby(restart_count)
                    conflicts_here = 0
                    self._backtrack(0)
                continue

            # Assumptions before free decisions.
            pending = None
            for lit in assumptions:
                value = self._value(lit)
                if value == 0:
                    return SolverResult(False, None, self.conflicts,
                                        self.decisions)
                if value == -1:
                    pending = lit
                    break
            if pending is None:
                pending = self._decide()
                if pending == 0:
                    model = {v: self._assign[v] == 1
                             for v in range(1, self.num_vars + 1)}
                    self._backtrack(0)
                    return SolverResult(True, model, self.conflicts,
                                        self.decisions)
                self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(pending, None)
