"""A tiny forward DRAT proof checker (RUP-only).

Verifies refutation proofs emitted by :class:`repro.sat.Solver` with
``proof_log=True``.  Every added clause must be a *reverse unit
propagation* (RUP) consequence of the current clause database: assume
all its literals false, run unit propagation to fixpoint, and demand a
conflict.  ``d``-prefixed lines delete one matching clause (lazily —
the solver logs deletions from DB reduction).  The proof is accepted
when the empty clause (a bare ``0`` line) is derived.

RUP is the "unit-propagation-checkable" fragment of DRAT; CDCL
learned clauses are always RUP with respect to the clauses they were
resolved from, so the solver's proofs never need the RAT extension.
This checker is deliberately naive — repeated full passes instead of
watched literals — because its job is auditing the moderate-size
proofs of this package's miters, not competition traces.

The checker must be fed the *same clauses* the solver was: proofs are
relative to a formula, not self-contained.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from .cnf import Cnf

__all__ = ["check_drat", "parse_proof"]

_ClauseLike = Sequence[int]
_Formula = Union[Cnf, Iterable[_ClauseLike]]


def parse_proof(lines: Iterable[str])\
        -> List[Tuple[bool, Tuple[int, ...]]]:
    """Parse DRAT text lines into ``(is_delete, literals)`` steps.

    Blank lines and ``c`` comment lines are skipped, as in DRAT files.
    """
    steps: List[Tuple[bool, Tuple[int, ...]]] = []
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        delete = False
        if line.startswith("d ") or line == "d":
            delete = True
            line = line[1:].strip()
        tokens = [int(tok) for tok in line.split()] if line else []
        if tokens and tokens[-1] == 0:
            tokens = tokens[:-1]
        elif tokens:
            raise ValueError("DRAT line missing terminating 0: %r" % raw)
        steps.append((delete, tuple(tokens)))
    return steps


def _unit_propagate(clauses: List[Tuple[int, ...]],
                    assignment: dict) -> bool:
    """UP to fixpoint over ``assignment`` (lit -> True); True on conflict.

    Naive repeated passes; mutates ``assignment``.
    """
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            unassigned: Optional[int] = None
            satisfied = False
            count = 0
            for lit in clause:
                if assignment.get(lit):
                    satisfied = True
                    break
                if not assignment.get(-lit):
                    count += 1
                    unassigned = lit
            if satisfied:
                continue
            if count == 0:
                return True  # all literals false: conflict
            if count == 1:
                assignment[unassigned] = True
                assignment.setdefault(-unassigned, False)
                changed = True
    return False


def _is_rup(clauses: List[Tuple[int, ...]],
            clause: Tuple[int, ...]) -> bool:
    """Whether ``clause`` follows from ``clauses`` by unit propagation."""
    assignment = {}
    for lit in clause:
        if assignment.get(lit):
            return False  # negation is already contradictory -> trivial
        assignment[-lit] = True
        assignment[lit] = False
    return _unit_propagate(clauses, assignment)


def check_drat(formula: _Formula, proof: Union[str, Iterable[str]],
               strict_deletes: bool = True) -> bool:
    """Verify a DRAT refutation of ``formula``.

    ``formula`` is a :class:`Cnf` or any iterable of integer clauses;
    ``proof`` is the text (or line iterable) the solver logged.
    Returns True iff every added clause is RUP at its position and the
    empty clause is derived.  With ``strict_deletes`` (default) a
    deletion that matches no clause in the database fails the proof;
    some external tools emit such lines, so it can be relaxed.
    """
    if isinstance(formula, Cnf):
        source: Iterable[_ClauseLike] = formula.clauses
    else:
        source = formula
    database: List[Tuple[int, ...]] = [tuple(c) for c in source]
    if isinstance(proof, str):
        proof = proof.splitlines()
    try:
        steps = parse_proof(proof)
    except ValueError:
        return False
    for delete, lits in steps:
        if delete:
            target = frozenset(lits)
            for index, clause in enumerate(database):
                if frozenset(clause) == target:
                    del database[index]
                    break
            else:
                if strict_deletes:
                    return False
            continue
        if not _is_rup(database, lits):
            return False
        if not lits:
            return True  # empty clause derived: refutation complete
        database.append(lits)
    return False  # proof ended without the empty clause
