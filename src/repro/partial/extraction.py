"""Carving Black Boxes out of complete circuits.

This reproduces the paper's experiment setup: "for each benchmark circuit
a certain fraction of the gates was included in Black Boxes" (Section 3),
with 1 or 5 boxes and fractions of 10% / 40%.

A carved gate group must be *convex* (no path from a group gate through
kept logic back into the group), otherwise the box would feed back into
itself; and the quotient graph over several boxes must stay acyclic so the
boxes admit the topological order the input-exact check needs.  Both are
enforced here — by convex closure per group and rejection sampling over
seeds.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..circuit.netlist import Circuit, CircuitError
from .blackbox import BlackBox, PartialImplementation

__all__ = ["carve", "select_gate_groups", "make_partial"]


def carve(circuit: Circuit, gate_groups: Sequence[Iterable[str]],
          box_prefix: str = "BB") -> PartialImplementation:
    """Remove the given gate groups and wrap each in a Black Box.

    ``gate_groups`` are disjoint collections of gate-output nets.  The
    carved box keeps the original net names on its outputs, so the rest
    of the netlist is untouched.
    """
    groups: List[Set[str]] = [set(g) for g in gate_groups]
    all_selected: Set[str] = set()
    for group in groups:
        if group & all_selected:
            raise CircuitError("gate groups overlap")
        all_selected |= group
    for net in all_selected:
        if not circuit.drives(net):
            raise CircuitError("no gate drives %r" % net)

    partial_circuit = circuit.copy(circuit.name + "_partial")
    removed: Dict[str, Set[str]] = {}
    for idx, group in enumerate(groups):
        for net in group:
            partial_circuit.remove_gate(net)
        removed[str(idx)] = group

    read_by_kept: Set[str] = set()
    for gate in partial_circuit.gates:
        read_by_kept.update(gate.inputs)
    output_set = set(partial_circuit.outputs)
    read_by_group: List[Set[str]] = []
    for group in groups:
        reads: Set[str] = set()
        for net in group:
            reads.update(circuit.gate(net).inputs)
        read_by_group.append(reads)

    boxes: List[BlackBox] = []
    for idx, group in enumerate(groups):
        # A group net must be exported if anything outside the group
        # still reads it — kept logic, a primary output, or another
        # group (whose box will take it as an input pin).
        external_readers = read_by_kept | output_set
        for other, reads in enumerate(read_by_group):
            if other != idx:
                external_readers |= reads
        box_outputs = sorted(net for net in group
                             if net in external_readers)
        if not box_outputs:
            raise CircuitError(
                "gate group %d is entirely dead logic; nothing to box"
                % idx)
        box_inputs: List[str] = []
        seen: Set[str] = set()
        for net in sorted(group):
            for src in circuit.gate(net).inputs:
                if src not in group and src not in seen:
                    seen.add(src)
                    box_inputs.append(src)
        boxes.append(BlackBox("%s%d" % (box_prefix, idx + 1),
                              tuple(box_inputs), tuple(box_outputs)))
    return PartialImplementation(partial_circuit, boxes)


def _convex_closure(circuit: Circuit, group: Set[str],
                    fanout: Dict[str, List[str]]) -> Set[str]:
    """Close a gate group under kept-logic paths group -> group.

    Adds every gate that is simultaneously reachable *from* the group and
    able to reach the group; the result has no feedback through kept
    logic.
    """
    while True:
        # Gates downstream of the group.
        down: Set[str] = set()
        stack = [c for net in group for c in fanout.get(net, [])]
        while stack:
            net = stack.pop()
            if net in down or net in group:
                continue
            down.add(net)
            stack.extend(fanout.get(net, []))
        # Gates upstream of the group.
        up: Set[str] = set()
        stack = [src for net in group
                 for src in circuit.gate(net).inputs
                 if circuit.drives(src)]
        while stack:
            net = stack.pop()
            if net in up or net in group:
                continue
            up.add(net)
            stack.extend(src for src in circuit.gate(net).inputs
                         if circuit.drives(src))
        middle = down & up
        if not middle:
            return group
        group = group | middle


def select_gate_groups(circuit: Circuit, fraction: float, num_boxes: int,
                       rng: random.Random,
                       connected: bool = True) -> List[Set[str]]:
    """Choose disjoint convex gate groups covering ~``fraction`` of gates.

    With ``connected`` (the default, matching the experiments) each group
    is grown breadth-first around a random seed gate, then convex-closed.
    Otherwise gates are sampled uniformly and redistributed, which yields
    boxes with wide, scattered interfaces.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    if num_boxes < 1:
        raise ValueError("need at least one box")
    gate_nets = [g.output for g in circuit.gates]
    if len(gate_nets) < num_boxes:
        raise CircuitError("fewer gates than requested boxes")
    target_total = max(num_boxes, int(round(fraction * len(gate_nets))))
    per_box = max(1, target_total // num_boxes)
    fanout = circuit.fanout_map()

    taken: Set[str] = set()
    groups: List[Set[str]] = []
    for _ in range(num_boxes):
        seedable = [n for n in gate_nets if n not in taken]
        if not seedable:
            break
        group: Set[str] = set()
        if connected:
            frontier = [rng.choice(seedable)]
            while frontier and len(group) < per_box:
                net = frontier.pop(rng.randrange(len(frontier)))
                if net in group or net in taken:
                    continue
                group.add(net)
                neighbours = list(fanout.get(net, []))
                neighbours.extend(
                    src for src in circuit.gate(net).inputs
                    if circuit.drives(src))
                rng.shuffle(neighbours)
                frontier.extend(n for n in neighbours
                                if n not in group and n not in taken)
        else:
            group = set(rng.sample(seedable, min(per_box, len(seedable))))
        group = _convex_closure(circuit, group, fanout)
        if group & taken:
            # Convex closure grew into another box; skip this attempt.
            continue
        taken |= group
        groups.append(group)
    if len(groups) != num_boxes:
        raise CircuitError("could not place %d disjoint boxes" % num_boxes)
    return groups


def make_partial(circuit: Circuit, fraction: float = 0.1,
                 num_boxes: int = 1, seed: Optional[int] = None,
                 connected: bool = True,
                 max_tries: int = 50) -> PartialImplementation:
    """Random partial implementation of ``circuit``.

    Retries box placement until the boxes admit a topological order (the
    quotient graph over convex groups can still be cyclic for several
    boxes) and no group is dead logic.
    """
    rng = random.Random(seed)
    last_error: Optional[Exception] = None
    for _ in range(max_tries):
        try:
            groups = select_gate_groups(circuit, fraction, num_boxes, rng,
                                        connected=connected)
            return carve(circuit, groups)
        except CircuitError as exc:
            last_error = exc
    raise CircuitError(
        "failed to carve %d boxes from %s after %d attempts: %s"
        % (num_boxes, circuit.name, max_tries, last_error))
