"""The partial-implementation model: circuits with Black Boxes.

A :class:`PartialImplementation` is a netlist whose *free nets* are driven
by Black Boxes with unknown functionality.  Each :class:`BlackBox` records
which circuit nets feed it and which free nets it drives; the check
algorithms only ever see this interface, never any box internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.netlist import Circuit, CircuitError

__all__ = ["BlackBox", "PartialImplementation"]


@dataclass(frozen=True)
class BlackBox:
    """Interface of one unknown sub-circuit.

    ``inputs`` are nets of the surrounding partial implementation (primary
    inputs, gate outputs, or outputs of other boxes); ``outputs`` are the
    free nets the box drives.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.outputs:
            raise CircuitError("Black Box %r has no outputs" % self.name)
        if len(set(self.outputs)) != len(self.outputs):
            raise CircuitError("Black Box %r repeats an output" % self.name)


class PartialImplementation:
    """A circuit plus the Black Boxes that drive its free nets.

    The constructor validates the model and computes a topological order
    of the boxes (required by the input-exact check): box ``j`` may only
    read primary inputs, gate logic, and outputs of boxes before ``j``.
    """

    def __init__(self, circuit: Circuit,
                 boxes: Sequence[BlackBox]) -> None:
        self.circuit = circuit
        self.boxes: List[BlackBox] = self._order_boxes(list(boxes))

    # ------------------------------------------------------------------

    def _order_boxes(self, boxes: List[BlackBox]) -> List[BlackBox]:
        circuit = self.circuit
        circuit.validate(allow_free=True)
        free = set(circuit.free_nets())

        # A box output is usually a free net of the circuit; it can also
        # be a box-to-box wire (read only by other boxes, invisible to
        # the netlist) or entirely unread.  Nothing else may drive it.
        owner: Dict[str, str] = {}
        by_name: Dict[str, BlackBox] = {}
        for box in boxes:
            if box.name in by_name:
                raise CircuitError("duplicate Black Box %r" % box.name)
            by_name[box.name] = box
            for net in box.outputs:
                if net in owner:
                    raise CircuitError(
                        "net %r driven by boxes %r and %r"
                        % (net, owner[net], box.name))
                if circuit.drives(net) or circuit.is_input(net):
                    raise CircuitError(
                        "box output %r is already driven by the circuit"
                        % net)
                # A box output nothing reads (free nets and box-to-box
                # wires are the usual cases) is legal: it simply cannot
                # influence the primary outputs.
                owner[net] = box.name
        unowned = free - set(owner)
        if unowned:
            raise CircuitError("free nets without a Black Box: %s"
                               % ", ".join(sorted(unowned)[:5]))

        # Which boxes does each box input transitively depend on?
        dep_cache: Dict[str, frozenset] = {}

        def net_deps(net: str) -> frozenset:
            cached = dep_cache.get(net)
            if cached is not None:
                return cached
            # Iterative DFS to avoid recursion limits on deep circuits.
            stack = [(net, False)]
            while stack:
                cur, expanded = stack.pop()
                if cur in dep_cache:
                    continue
                if cur in owner:
                    dep_cache[cur] = frozenset((owner[cur],))
                    continue
                if not circuit.drives(cur):
                    dep_cache[cur] = frozenset()
                    continue
                gate = circuit.gate(cur)
                if expanded:
                    acc: Set[str] = set()
                    for src in gate.inputs:
                        acc |= dep_cache[src]
                    dep_cache[cur] = frozenset(acc)
                else:
                    stack.append((cur, True))
                    for src in gate.inputs:
                        if src not in dep_cache:
                            stack.append((src, False))
            return dep_cache[net]

        # Kahn's algorithm over the box dependency graph.
        box_deps: Dict[str, Set[str]] = {}
        for box in boxes:
            deps: Set[str] = set()
            for net in box.inputs:
                deps |= net_deps(net)
            if box.name in deps:
                raise CircuitError(
                    "Black Box %r feeds back into itself" % box.name)
            box_deps[box.name] = deps

        ordered: List[BlackBox] = []
        placed: Set[str] = set()
        remaining = list(boxes)
        while remaining:
            progress = [b for b in remaining
                        if box_deps[b.name] <= placed]
            if not progress:
                raise CircuitError(
                    "cyclic dependency among Black Boxes: %s"
                    % ", ".join(b.name for b in remaining))
            for box in progress:
                ordered.append(box)
                placed.add(box.name)
            remaining = [b for b in remaining if b.name not in placed]
        return ordered

    # ------------------------------------------------------------------

    @property
    def box_outputs(self) -> List[str]:
        """All Black Box output nets, in box order."""
        return [net for box in self.boxes for net in box.outputs]

    @property
    def num_boxes(self) -> int:
        """Number of Black Boxes."""
        return len(self.boxes)

    def box(self, name: str) -> BlackBox:
        """Look up a box by name."""
        for box in self.boxes:
            if box.name == name:
                return box
        raise CircuitError("no Black Box named %r" % name)

    def validate_against(self, spec: Circuit) -> None:
        """Check interface compatibility with a specification."""
        if list(spec.inputs) != list(self.circuit.inputs):
            raise CircuitError(
                "specification and implementation inputs differ")
        if len(spec.outputs) != len(self.circuit.outputs):
            raise CircuitError(
                "specification and implementation output counts differ")

    # ------------------------------------------------------------------

    @staticmethod
    def _splice(result: Circuit, box: BlackBox, impl: Circuit) -> None:
        """Copy one box implementation into ``result``, wired to the
        box's interface nets (positionally)."""
        if len(impl.inputs) != len(box.inputs):
            raise CircuitError(
                "box %r expects %d inputs, implementation has %d"
                % (box.name, len(box.inputs), len(impl.inputs)))
        if len(impl.outputs) != len(box.outputs):
            raise CircuitError(
                "box %r expects %d outputs, implementation has %d"
                % (box.name, len(box.outputs), len(impl.outputs)))
        rename: Dict[str, str] = {}
        for inner, outer in zip(impl.inputs, box.inputs):
            rename[inner] = outer
        for inner, outer in zip(impl.outputs, box.outputs):
            if inner in rename:
                raise CircuitError(
                    "box %r implementation passes input %r straight "
                    "through; buffer it first" % (box.name, inner))
            rename[inner] = outer
        prefix = "%s__" % box.name
        for net in impl.nets():
            if net not in rename:
                rename[net] = prefix + net
        for gate in impl.gates:
            result.add_gate(rename[gate.output], gate.gtype,
                            [rename[s] for s in gate.inputs])

    def substitute(self, implementations: Dict[str, Circuit],
                   name: Optional[str] = None) -> Circuit:
        """Plug concrete circuits into the boxes; returns a complete netlist.

        Each box implementation must have as many inputs/outputs as the
        box interface; its nets are renamed into a private namespace and
        wired up positionally.
        """
        result = self.circuit.copy(name or self.circuit.name + "_complete")
        for box in self.boxes:
            try:
                impl = implementations[box.name]
            except KeyError:
                raise CircuitError(
                    "no implementation for Black Box %r" % box.name
                ) from None
            self._splice(result, box, impl)
        result.validate()
        return result

    def substitute_some(self, implementations: Dict[str, Circuit],
                        name: Optional[str] = None)\
            -> "PartialImplementation":
        """Plug in a subset of the boxes; the rest stay black.

        Returns a new partial implementation whose circuit contains the
        given implementations' gates and whose box list is the remaining
        boxes.  Used by staged/exact decision procedures that fix one
        box function at a time.
        """
        unknown = set(implementations) - {b.name for b in self.boxes}
        if unknown:
            raise CircuitError("no such boxes: %s"
                               % ", ".join(sorted(unknown)))
        result = self.circuit.copy(
            name or self.circuit.name + "_staged")
        keep = []
        for box in self.boxes:
            if box.name in implementations:
                self._splice(result, box, implementations[box.name])
            else:
                keep.append(box)
        result.validate(allow_free=True)
        return PartialImplementation(result, keep)

    def stats(self) -> Dict[str, int]:
        """Size summary for reports."""
        return {
            "gates": self.circuit.num_gates,
            "boxes": self.num_boxes,
            "box_inputs": sum(len(b.inputs) for b in self.boxes),
            "box_outputs": sum(len(b.outputs) for b in self.boxes),
        }

    def __repr__(self) -> str:
        return "<PartialImplementation %s: %d gates, %d boxes (%s)>" % (
            self.circuit.name, self.circuit.num_gates, self.num_boxes,
            ", ".join("%s:%d->%d" % (b.name, len(b.inputs), len(b.outputs))
                      for b in self.boxes))
