"""Design-error insertion, reproducing the paper's fault model.

Section 3: "We randomly selected a gate, which did not belong to a Black
Box, and inserted an error.  The error type was also selected randomly
between several choices: We added/removed an inverter for an input or
output signal of the gate, changed the type of the gate (and2 to or2 or
or2 to and2) or removed an input line from an and or or gate."

Note that an inserted "error" is not guaranteed to change the function of
the circuit relative to the specification once the Black Boxes may absorb
it — the paper observes ~9% of insertions were compensable.  Callers that
need guaranteed-real errors should verify with an exact check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..circuit.gates import GateType, INVERTIBLE
from ..circuit.netlist import Circuit, CircuitError, Gate

__all__ = ["Mutation", "MUTATION_KINDS", "applicable_mutations",
           "apply_mutation", "insert_random_error"]

#: The paper's four error classes.
MUTATION_KINDS = (
    "invert_output",     # add/remove inverter at the gate output
    "invert_input",      # add/remove inverter at one gate input
    "change_gate_type",  # AND <-> OR (and the NAND <-> NOR dual)
    "remove_input",      # drop one input line of an AND/OR-family gate
)


@dataclass(frozen=True)
class Mutation:
    """One concrete error insertion, replayable via :func:`apply_mutation`."""

    kind: str
    gate: str
    pin: Optional[int] = None

    def describe(self) -> str:
        """Human-readable summary for experiment logs."""
        if self.pin is None:
            return "%s at gate %r" % (self.kind, self.gate)
        return "%s at gate %r pin %d" % (self.kind, self.gate, self.pin)


def applicable_mutations(circuit: Circuit) -> List[Mutation]:
    """All single mutations the paper's fault model allows on ``circuit``."""
    out: List[Mutation] = []
    for gate in circuit.gates:
        if gate.gtype in INVERTIBLE:
            out.append(Mutation("invert_output", gate.output))
        for pin in range(len(gate.inputs)):
            out.append(Mutation("invert_input", gate.output, pin))
        if gate.gtype in (GateType.AND, GateType.OR, GateType.NAND,
                          GateType.NOR):
            out.append(Mutation("change_gate_type", gate.output))
        if (gate.gtype in (GateType.AND, GateType.OR, GateType.NAND,
                           GateType.NOR) and len(gate.inputs) >= 2):
            for pin in range(len(gate.inputs)):
                out.append(Mutation("remove_input", gate.output, pin))
    return out


def apply_mutation(circuit: Circuit, mutation: Mutation) -> Circuit:
    """Return a mutated copy of ``circuit``."""
    result = circuit.copy(circuit.name + "_mut")
    gate = result.gate(mutation.gate)
    if mutation.kind == "invert_output":
        try:
            new_type = INVERTIBLE[gate.gtype]
        except KeyError:
            raise CircuitError(
                "cannot invert output of %s gate" % gate.gtype.name
            ) from None
        result.replace_gate(Gate(gate.output, new_type, gate.inputs))
    elif mutation.kind == "invert_input":
        pin = _check_pin(gate, mutation)
        src = gate.inputs[pin]
        # "Remove an inverter": bypass an existing NOT driver; otherwise
        # splice a new inverter into the connection.
        if result.drives(src) and result.gate(src).gtype is GateType.NOT:
            new_src = result.gate(src).inputs[0]
        else:
            new_src = _fresh_net(result, "%s_inv%d" % (gate.output, pin))
            result.add_gate(new_src, GateType.NOT, [src])
        inputs = list(gate.inputs)
        inputs[pin] = new_src
        result.replace_gate(Gate(gate.output, gate.gtype, tuple(inputs)))
    elif mutation.kind == "change_gate_type":
        result.replace_gate(Gate(gate.output, gate.gtype.dual,
                                 gate.inputs))
    elif mutation.kind == "remove_input":
        pin = _check_pin(gate, mutation)
        if len(gate.inputs) < 2:
            raise CircuitError("cannot remove the only input of %r"
                               % gate.output)
        if gate.gtype not in (GateType.AND, GateType.OR, GateType.NAND,
                              GateType.NOR):
            raise CircuitError("cannot remove an input of a %s gate"
                               % gate.gtype.name)
        inputs = gate.inputs[:pin] + gate.inputs[pin + 1:]
        result.replace_gate(Gate(gate.output, gate.gtype, inputs))
    else:
        raise CircuitError("unknown mutation kind %r" % mutation.kind)
    result.validate(allow_free=bool(circuit.free_nets()))
    return result


def insert_random_error(circuit: Circuit, rng: random.Random)\
        -> Tuple[Circuit, Mutation]:
    """Pick a random applicable mutation and apply it (paper Section 3)."""
    candidates = applicable_mutations(circuit)
    if not candidates:
        raise CircuitError("no mutable gate in %s" % circuit.name)
    mutation = rng.choice(candidates)
    return apply_mutation(circuit, mutation), mutation


def _check_pin(gate: Gate, mutation: Mutation) -> int:
    if mutation.pin is None or not 0 <= mutation.pin < len(gate.inputs):
        raise CircuitError("mutation %r has bad pin for gate %r"
                           % (mutation.kind, gate.output))
    return mutation.pin


def _fresh_net(circuit: Circuit, base: str) -> str:
    used = set(circuit.nets())
    used.update(circuit.outputs)
    for gate in circuit.gates:
        used.update(gate.inputs)
    name = base
    counter = 0
    while name in used:
        counter += 1
        name = "%s_%d" % (base, counter)
    return name
