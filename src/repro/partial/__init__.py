"""Partial implementations: Black Boxes, carving, error insertion."""

from .blackbox import BlackBox, PartialImplementation
from .extraction import carve, make_partial, select_gate_groups
from .mutations import (MUTATION_KINDS, Mutation, applicable_mutations,
                        apply_mutation, insert_random_error)
from .io import (boxes_from_json, boxes_to_json, load_partial,
                 save_partial)

__all__ = [
    "BlackBox",
    "PartialImplementation",
    "carve",
    "make_partial",
    "select_gate_groups",
    "Mutation",
    "MUTATION_KINDS",
    "applicable_mutations",
    "apply_mutation",
    "insert_random_error",
    "save_partial",
    "load_partial",
    "boxes_to_json",
    "boxes_from_json",
]
