"""Persistence for partial implementations.

A partial design is a netlist plus its Black Box interfaces.  The
netlist travels as ordinary BLIF (box outputs appear as extra inputs,
which standard tools tolerate); the interfaces go into a JSON sidecar.
``save_partial``/``load_partial`` round-trip the pair.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from ..circuit.blif import read_blif, write_blif
from ..circuit.netlist import Circuit, CircuitError
from .blackbox import BlackBox, PartialImplementation

__all__ = ["save_partial", "load_partial", "boxes_to_json",
           "boxes_from_json"]

_FORMAT_VERSION = 1


def boxes_to_json(partial: PartialImplementation) -> str:
    """JSON description of the Black Box interfaces."""
    payload = {
        "format": "repro-partial",
        "version": _FORMAT_VERSION,
        "circuit": partial.circuit.name,
        "boxes": [
            {"name": box.name,
             "inputs": list(box.inputs),
             "outputs": list(box.outputs)}
            for box in partial.boxes
        ],
    }
    return json.dumps(payload, indent=2)


def boxes_from_json(text: str, circuit: Circuit)\
        -> PartialImplementation:
    """Rebuild a partial implementation from sidecar JSON + netlist."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CircuitError("invalid box sidecar: %s" % exc) from None
    if payload.get("format") != "repro-partial":
        raise CircuitError("not a repro partial-implementation sidecar")
    if payload.get("version") != _FORMAT_VERSION:
        raise CircuitError("unsupported sidecar version %r"
                           % payload.get("version"))
    boxes = [BlackBox(entry["name"], tuple(entry["inputs"]),
                      tuple(entry["outputs"]))
             for entry in payload.get("boxes", [])]
    return PartialImplementation(circuit, boxes)


def save_partial(partial: PartialImplementation, base_path: str) -> None:
    """Write ``<base>.blif`` and ``<base>.boxes.json``."""
    write_blif(partial.circuit, base_path + ".blif")
    with open(base_path + ".boxes.json", "w") as handle:
        handle.write(boxes_to_json(partial))


def load_partial(base_path: str,
                 name: Optional[str] = None) -> PartialImplementation:
    """Load a pair written by :func:`save_partial`.

    The BLIF reader returns box outputs as primary inputs; they are
    demoted back to free nets according to the sidecar before the model
    is rebuilt.
    """
    blif_path = base_path + ".blif"
    sidecar_path = base_path + ".boxes.json"
    if not os.path.exists(blif_path):
        raise CircuitError("missing netlist file %r" % blif_path)
    if not os.path.exists(sidecar_path):
        raise CircuitError("missing sidecar file %r" % sidecar_path)
    raw = read_blif(blif_path, name=name)
    with open(sidecar_path) as handle:
        payload_text = handle.read()
    payload = json.loads(payload_text)
    box_outputs = {net for entry in payload.get("boxes", [])
                   for net in entry["outputs"]}

    circuit = Circuit(name or raw.name)
    for net in raw.inputs:
        if net not in box_outputs:
            circuit.add_input(net)
    for gate in raw.gates:
        circuit.add_gate(gate.output, gate.gtype, gate.inputs)
    circuit.add_outputs(raw.outputs)
    circuit.validate(allow_free=True)
    return boxes_from_json(payload_text, circuit)
