"""Append-only JSONL checkpoint journal for campaign runs.

One line per completed case, written atomically (single buffered write
of the full line, then flush), so a campaign killed at any instant
leaves at most one truncated final line — which :func:`read_journal`
tolerates and skips.  ``--resume`` replays the journal, keeps every
record whose case key matches the current campaign, and only executes
the remainder.

Record format (version 1)::

    {"v": 1,
     "case": {"benchmark": "alu4", "selection": 0, "error_index": 3,
              "fraction": 0.1, "num_boxes": 1, "patterns": 500,
              "seed": 2001, "checks": ["r.p.", "0,1,X", ...]},
     "outcome": "ok" | "timeout" | "error",
     "seconds": 1.84, "worker": 2, "attempt": 1,
     "spec": {"inputs": 14, "outputs": 8, "nodes": 1083},
     "mutation": "change_gate_type at gate 'n42'",
     "checks": {"ie": {"outcome": "ok", "error_found": true,
                       "seconds": 0.31, "impl_nodes": 911,
                       "peak_nodes": 2010, "detail": ""}, ...}}
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.result import OUTCOME_ERROR, OUTCOME_OK, OUTCOME_TIMEOUT
from .spec import CaseSpec

__all__ = ["JOURNAL_VERSION", "CheckOutcome", "CaseRecord",
           "LineJournalWriter", "JournalWriter", "JournalWriteError",
           "read_journal", "iter_journal_dicts", "failed_record",
           "timeout_record", "trace_filename"]

JOURNAL_VERSION = 1


def trace_filename(case: CaseSpec) -> str:
    """Deterministic trace-file name for one case.

    A pure function of the case key: the journal never stores trace
    paths (its bytes must not depend on whether tracing was on), yet
    any reader holding a record can reconstruct where the worker put
    that case's trace — ``$REPRO_TRACE_DIR/<trace_filename(case)>``.
    The hash suffix disambiguates same-coordinate cases from campaigns
    with different parameters (patterns, checks, limits...).
    """
    digest = hashlib.sha256(
        repr(case.key).encode("utf-8")).hexdigest()[:8]
    return "%s-s%d-e%d-%s.trace.jsonl" % (
        case.benchmark, case.selection, case.error_index, digest)


@dataclass
class CheckOutcome:
    """Per-check slice of one case result.

    The ``cache_*`` counters (computed-table traffic of the check's
    fresh manager) and the maintenance counters (``reorders`` sifting
    passes, ``gc_runs`` collections) were added after version-1
    journals shipped; they default to 0 on records written before
    them, so old journals still resume cleanly and the version number
    stays 1.  All of them are deterministic manager counters, recorded
    whether or not tracing is enabled — journal bytes never depend on
    the observability layer.
    """

    outcome: str = OUTCOME_OK
    error_found: bool = False
    seconds: float = 0.0
    impl_nodes: int = 0
    peak_nodes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    reorders: int = 0
    gc_runs: int = 0
    detail: str = ""
    #: True when the verdict was replayed from the content-addressed
    #: check cache (:mod:`repro.analysis.static.cache`) instead of
    #: executed.  Serialised only when set, so journals written without
    #: a cache stay byte-identical to pre-cache ones.
    cached: bool = False
    #: Arena-backend unique-table health (``repro.bdd.arena``): final
    #: open-addressing load factor, 95th-percentile probe length, and
    #: table resize count.  All zero on the dict/legacy backends and
    #: serialised only when any is set, so default-backend journals
    #: stay byte-identical to pre-arena ones.
    unique_load_factor: float = 0.0
    unique_probe_p95: int = 0
    unique_resizes: int = 0
    #: Engine that decided this check under a portfolio/SAT strategy
    #: (``"bdd"`` or ``"sat"``, see :mod:`repro.core.portfolio`).
    #: Empty on the default BDD-only ladder and serialised only when
    #: set, so strategy-free journals stay byte-identical to
    #: pre-portfolio ones.
    engine: str = ""

    def to_dict(self) -> Dict:
        data = {"outcome": self.outcome,
                "error_found": self.error_found,
                "seconds": self.seconds,
                "impl_nodes": self.impl_nodes,
                "peak_nodes": self.peak_nodes,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_evictions": self.cache_evictions,
                "reorders": self.reorders,
                "gc_runs": self.gc_runs,
                "detail": self.detail}
        if self.cached:
            data["cached"] = True
        if (self.unique_load_factor or self.unique_probe_p95
                or self.unique_resizes):
            data["unique_load_factor"] = self.unique_load_factor
            data["unique_probe_p95"] = self.unique_probe_p95
            data["unique_resizes"] = self.unique_resizes
        if self.engine:
            data["engine"] = self.engine
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CheckOutcome":
        return cls(outcome=data["outcome"],
                   error_found=bool(data["error_found"]),
                   seconds=float(data["seconds"]),
                   impl_nodes=int(data["impl_nodes"]),
                   peak_nodes=int(data["peak_nodes"]),
                   cache_hits=int(data.get("cache_hits", 0)),
                   cache_misses=int(data.get("cache_misses", 0)),
                   cache_evictions=int(data.get("cache_evictions", 0)),
                   reorders=int(data.get("reorders", 0)),
                   gc_runs=int(data.get("gc_runs", 0)),
                   detail=data.get("detail", ""),
                   cached=bool(data.get("cached", False)),
                   unique_load_factor=float(
                       data.get("unique_load_factor", 0.0)),
                   unique_probe_p95=int(data.get("unique_probe_p95", 0)),
                   unique_resizes=int(data.get("unique_resizes", 0)),
                   engine=data.get("engine", ""))


@dataclass
class CaseRecord:
    """Everything the aggregator needs about one executed case."""

    case: CaseSpec
    outcome: str = OUTCOME_OK
    checks: Dict[str, CheckOutcome] = field(default_factory=dict)
    seconds: float = 0.0
    worker: int = 0
    attempt: int = 1
    inputs: int = 0
    outputs: int = 0
    spec_nodes: int = 0
    mutation: str = ""
    #: Number of output cones the static preflight discharged for this
    #: case (``None`` when the preflight did not run — distinguishes
    #: "preflight found nothing" from "no preflight", and keeps
    #: journals without ``--preflight`` byte-identical to old ones).
    discharged: Optional[int] = None

    def to_dict(self) -> Dict:
        data = {
            "v": JOURNAL_VERSION,
            "case": self.case.to_dict(),
            "outcome": self.outcome,
            "seconds": self.seconds,
            "worker": self.worker,
            "attempt": self.attempt,
            "spec": {"inputs": self.inputs, "outputs": self.outputs,
                     "nodes": self.spec_nodes},
            "mutation": self.mutation,
            "checks": {name: out.to_dict()
                       for name, out in self.checks.items()},
        }
        if self.discharged is not None:
            data["discharged"] = self.discharged
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CaseRecord":
        if data.get("v") != JOURNAL_VERSION:
            raise ValueError("unsupported journal record version %r"
                             % data.get("v"))
        spec_meta = data.get("spec", {})
        return cls(
            case=CaseSpec.from_dict(data["case"]),
            outcome=data["outcome"],
            seconds=float(data["seconds"]),
            worker=int(data.get("worker", 0)),
            attempt=int(data.get("attempt", 1)),
            inputs=int(spec_meta.get("inputs", 0)),
            outputs=int(spec_meta.get("outputs", 0)),
            spec_nodes=int(spec_meta.get("nodes", 0)),
            mutation=data.get("mutation", ""),
            discharged=int(data["discharged"])
            if data.get("discharged") is not None else None,
            checks={name: CheckOutcome.from_dict(out)
                    for name, out in data.get("checks", {}).items()})

    def to_json_line(self) -> str:
        """One compact, newline-free JSON line."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json_line(cls, line: str) -> "CaseRecord":
        return cls.from_dict(json.loads(line))


def failed_record(case: CaseSpec, error: BaseException,
                  seconds: float = 0.0, worker: int = 0,
                  attempt: int = 1) -> CaseRecord:
    """Terminal ERROR record: the case (or its setup) raised/crashed."""
    detail = "%s: %s" % (type(error).__name__, error)
    return CaseRecord(
        case=case, outcome=OUTCOME_ERROR, seconds=seconds,
        worker=worker, attempt=attempt,
        checks={check: CheckOutcome(outcome=OUTCOME_ERROR, detail=detail)
                for check in case.checks})


def timeout_record(case: CaseSpec, seconds: float, worker: int = 0,
                   attempt: int = 1) -> CaseRecord:
    """Terminal TIMEOUT record: the worker was killed at the deadline."""
    return CaseRecord(
        case=case, outcome=OUTCOME_TIMEOUT, seconds=seconds,
        worker=worker, attempt=attempt,
        checks={check: CheckOutcome(
            outcome=OUTCOME_TIMEOUT,
            detail="killed after %.1fs" % seconds)
            for check in case.checks})


class JournalWriteError(OSError):
    """Appending to the campaign journal failed even after one retry.

    Raised instead of a bare ``OSError`` so the campaign driver can
    tell the operator *which* file is full/broken and that completed
    work up to the previous record is safely on disk.
    """

    def __init__(self, path: str, cause: BaseException):
        self.path = path
        self.cause = cause
        super().__init__(
            "cannot append to campaign journal %s (%s: %s); records "
            "written before this one are intact — free space or point "
            "--journal elsewhere and --resume" % (
                path, type(cause).__name__, cause))


class LineJournalWriter:
    """Append-only JSONL writer with one atomic line per payload.

    The machinery under :class:`JournalWriter`, factored out so other
    append-only journals (the service's job store in
    :mod:`repro.serve.store`) inherit the same contract: each payload
    is serialised to a single compact line and written unbuffered
    (``O_APPEND`` raw I/O), so concurrent readers (and post-crash
    resumes) see only whole lines plus at most one truncated tail.
    Pass ``fsync=True`` to force every line to disk (slower; protects
    against OS crashes, not just process death).

    Disk-full robustness: on ``ENOSPC``/short writes the partial line
    is truncated away, the write retried once (after an fsync that may
    release cached space), and a persistent failure surfaces as
    :class:`JournalWriteError` naming the journal path — with the file
    left whole-line clean for a later resume.
    """

    def __init__(self, path: str, fsync: bool = False):
        self.path = path
        self._fsync = fsync
        parent = os.path.dirname(os.path.abspath(path))
        if parent and not os.path.isdir(parent):
            os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "ab", buffering=0)
        # Self-heal a torn tail from a killed run: without this, the
        # first appended record would concatenate onto the truncated
        # line and both records would be lost to the parser.
        if self._handle.tell() > 0:
            with open(path, "rb") as probe:
                probe.seek(-1, os.SEEK_END)
                if probe.read(1) != b"\n":
                    self._handle.write(b"\n")

    def _write_all(self, data: bytes) -> None:
        """Write every byte, treating a 0-byte write as disk-full."""
        view = memoryview(data)
        while view:
            written = self._handle.write(view)
            if not written:
                raise OSError(errno.ENOSPC,
                              "short write: 0 of %d bytes accepted"
                              % len(view))
            view = view[written:]

    def write_line(self, payload: Dict) -> None:
        """Append one dict as one atomic JSONL line."""
        data = (json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n").encode("utf-8")
        start = self._handle.tell()
        try:
            self._write_all(data)
        except OSError as first:
            # A torn line would poison this record AND the next one;
            # cut it off before anything else (O_APPEND re-positions
            # the retry correctly after the truncate).
            try:
                os.fsync(self._handle.fileno())
            except OSError:
                pass
            try:
                os.ftruncate(self._handle.fileno(), start)
                self._write_all(data)
            except OSError:
                raise JournalWriteError(self.path, first) from first
        if self._fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "LineJournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class JournalWriter(LineJournalWriter):
    """Campaign-flavored :class:`LineJournalWriter`: appends
    :class:`CaseRecord` lines (see the base class for the atomic-append
    and disk-full contract)."""

    def write(self, record: CaseRecord) -> None:
        self.write_line(record.to_dict())


def iter_journal_dicts(path: str):
    """Yield one parsed dict per journal line, skipping torn/corrupt
    lines (the truncated tail of a killed run, or foreign garbage)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict):
                yield payload


def read_journal(path: str) -> List[CaseRecord]:
    """Load a journal, skipping corrupt/truncated lines.

    Duplicate case keys (e.g. a case re-run after a resume) keep the
    *last* record, at the position of its first appearance.
    """
    records: Dict[tuple, CaseRecord] = {}
    for payload in iter_journal_dicts(path):
        try:
            record = CaseRecord.from_dict(payload)
        except (ValueError, KeyError, TypeError):
            continue
        records[record.case.key] = record
    return list(records.values())
