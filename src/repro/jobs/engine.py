"""Campaign orchestration: enumerate, (re)execute, journal, aggregate.

:func:`run_campaign` is the one entry point both the serial and the
parallel paths share.  The flow is:

1. :func:`repro.jobs.spec.enumerate_cases` flattens the config into
   coordinate-seeded :class:`CaseSpec` records;
2. with ``--resume``, the journal is replayed and every record whose
   case key matches the current campaign is kept — only the remainder
   executes;
3. pending cases run inline (``jobs == 1`` and no timeout) or on the
   spawn pool (:mod:`repro.jobs.pool`); each finished case is appended
   to the journal immediately, so a crash loses at most in-flight work;
4. :mod:`repro.jobs.aggregate` folds all records — resumed and fresh —
   into table rows in canonical order, making serial, parallel and
   resumed runs aggregate identically.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional,
                    Sequence)

from .aggregate import fold_records
from .journal import CaseRecord, JournalWriter, read_journal
from .pool import DEFAULT_MAX_ATTEMPTS, run_parallel
from .spec import CaseSpec, enumerate_cases
from .worker import execute_case

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..circuit.netlist import Circuit
    from ..experiments.runner import BenchmarkRow, ExperimentConfig

__all__ = ["CampaignResult", "run_campaign"]


@dataclass
class CampaignResult:
    """Everything a campaign run produced."""

    #: One record per enumerated case, in canonical enumeration order.
    records: List[CaseRecord] = field(default_factory=list)
    #: Folded table rows, keyed by benchmark, in campaign order.
    rows: Dict[str, "BenchmarkRow"] = field(default_factory=dict)
    #: Cases skipped because a resumed journal already had them.
    resumed: int = 0
    #: Cases actually executed by this run.
    executed: int = 0
    #: Wall-clock of this run (excludes resumed work).
    wall_seconds: float = 0.0

    @property
    def timeouts(self) -> int:
        return sum(sum(row.timeouts.values())
                   for row in self.rows.values())

    @property
    def errors(self) -> int:
        return sum(sum(row.check_errors.values())
                   for row in self.rows.values())


def run_campaign(config: "ExperimentConfig",
                 benchmarks: Optional[Sequence[str]] = None,
                 jobs: int = 1,
                 timeout: Optional[float] = None,
                 journal: Optional[str] = None,
                 resume: Optional[str] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 spec_overrides: Optional[Dict[str, "Circuit"]] = None,
                 task: Optional[Callable] = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 shards: int = 0,
                 fleet_config=None)\
        -> CampaignResult:
    """Run (or finish) a campaign; see the module docstring.

    Parameters worth spelling out:

    jobs / timeout:
        ``jobs > 1`` or any ``timeout`` routes execution through the
        spawn pool; a timeout with ``jobs=1`` still uses one pooled
        worker so runaway checks can be killed from outside.
    shards:
        ``shards >= 1`` routes execution through the supervised fleet
        (:func:`repro.fleet.run_fleet`) instead: the case space is
        partitioned by case key into that many shard processes with
        work-stealing and whole-shard crash recovery.  Shard journals
        and leases live in ``<journal>.fleet/`` (a temporary directory
        without ``journal``); merged records are appended to the
        campaign journal in canonical order, so the journal bytes
        match a serial run.  ``timeout`` becomes the fleet's per-case
        deadline and ``max_attempts`` its per-case retry bound;
        mutually exclusive with ``jobs > 1``.  ``fleet_config``
        (a :class:`repro.fleet.FleetConfig`) overrides supervision
        pacing (heartbeats, backoff) for tests and drills.
    journal / resume:
        ``journal`` appends every finished case to a JSONL checkpoint.
        ``resume`` replays an existing journal first; new records are
        appended to the same file unless a distinct ``journal`` path is
        given, in which case the resumed records are copied over so the
        new journal is self-contained.
    spec_overrides:
        Pre-built circuits keyed by benchmark name, honoured only on
        the inline path (pool workers rebuild from
        ``BENCHMARK_FACTORIES`` by name).
    task:
        Test hook: replaces :func:`repro.jobs.worker.execute_case`.
    """
    if shards and jobs > 1:
        raise ValueError("--shards and --jobs are mutually exclusive: "
                         "a shard executes inline and parallelism "
                         "comes from the shard count")
    start = time.monotonic()
    cases = enumerate_cases(config, benchmarks)
    done: Dict[tuple, CaseRecord] = {}
    if resume and os.path.exists(resume):
        wanted = {case.key for case in cases}
        for record in read_journal(resume):
            if record.case.key in wanted:
                done[record.case.key] = record
    resumed = len(done)
    pending = [case for case in cases if case.key not in done]

    journal_path = journal or resume
    writer = JournalWriter(journal_path) if journal_path else None
    if (writer and resume and journal
            and os.path.abspath(journal) != os.path.abspath(resume)):
        for record in done.values():
            writer.write(record)

    total = len(cases)
    finished = [resumed]

    def emit(record: CaseRecord, announce: bool = True) -> None:
        done[record.case.key] = record
        finished[0] += 1
        if writer is not None:
            writer.write(record)
        if announce and progress is not None:
            progress("[%d/%d] %s %s (worker %d)"
                     % (finished[0], total, record.case.describe(),
                        record.outcome, record.worker))

    try:
        if pending:
            if shards:
                from ..fleet import run_fleet
                fleet_dir = (journal_path + ".fleet") if journal_path \
                    else None
                merged = run_fleet(pending, shards=shards,
                                   base_dir=fleet_dir,
                                   config=fleet_config,
                                   task=task, progress=progress,
                                   case_timeout=timeout,
                                   max_retries=max_attempts)
                # The supervisor already narrated progress live; here
                # the merged records land in the campaign journal in
                # canonical order, byte-identical to a serial run.
                for case in pending:
                    emit(merged[case.key], announce=False)
            elif jobs > 1 or timeout is not None:
                run_parallel(pending, jobs=jobs, timeout=timeout,
                             task=task, on_record=emit,
                             max_attempts=max_attempts)
            else:
                run_task = task if task is not None else execute_case
                for case in pending:
                    if task is None and spec_overrides:
                        record = run_task(
                            case, spec=spec_overrides.get(case.benchmark))
                    else:
                        record = run_task(case)
                    emit(record)
    finally:
        if writer is not None:
            writer.close()

    records = [done[case.key] for case in cases]
    rows = fold_records(records, checks=config.checks)
    return CampaignResult(records=records, rows=rows, resumed=resumed,
                          executed=len(pending),
                          wall_seconds=time.monotonic() - start)
