"""Case enumeration for check campaigns.

A campaign (Section 3 of the paper: selections x errors x checks per
benchmark) is flattened into self-describing :class:`CaseSpec` records.
Every random decision a case makes — which gates become the Black Box,
which mutation is inserted, which patterns the r.p. check draws — is
seeded from the case *coordinates* via SHA-256, never from a shared
sequential ``random.Random`` stream.  Any subset of cases can therefore
run in any order, in any process, on any machine, and still reproduce
the serial campaign bit-for-bit; this is the determinism contract the
parallel engine (:mod:`repro.jobs.engine`) is built on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.runner import ExperimentConfig

__all__ = ["CaseSpec", "derive_seed", "enumerate_cases"]


def _canon(part: object) -> str:
    """Canonical text form of one seed coordinate.

    ``repr`` for floats so 0.1 survives a JSON round trip unchanged;
    plain ``str`` for ints/strings.
    """
    if isinstance(part, float):
        return repr(part)
    return str(part)


def derive_seed(*coords: object) -> int:
    """A 64-bit seed derived purely from coordinates (SHA-256 based).

    Unlike the builtin ``hash`` this is stable across processes and
    Python versions (no hash randomisation), which is what makes journal
    resume and cross-worker reproducibility possible.
    """
    text = "\x1f".join(_canon(c) for c in coords)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class CaseSpec:
    """One campaign case: a (benchmark, selection, error) coordinate.

    Carries everything a worker needs to execute the case from scratch
    in a fresh process: the campaign parameters plus derived seeds.
    """

    benchmark: str
    selection: int
    error_index: int
    fraction: float
    num_boxes: int
    patterns: int
    seed: int
    checks: Tuple[str, ...]
    #: In-process governance (see :mod:`repro.resilience`): max live BDD
    #: nodes per check and a cooperative wall-clock deadline per case.
    #: ``None`` disables the respective limit.
    node_limit: Optional[int] = None
    soft_timeout: Optional[float] = None
    #: Static analysis (see :mod:`repro.analysis.static`): run the
    #: ternary/cone-hash preflight before the checks, and/or consult a
    #: content-addressed verdict cache rooted at ``check_cache``.  The
    #: preflight changes which checks execute (it is part of the case
    #: key); the cache only changes where verdicts come from, never
    #: what they are, so it is excluded from the key.
    preflight: bool = False
    check_cache: Optional[str] = None
    #: BDD backend the case's symbolic checks run on (see
    #: :mod:`repro.bdd.backends`).  ``None`` means the default dict
    #: manager; the value is normalized at enumeration time, so
    #: ``"dict"`` never appears here — default-backend journals stay
    #: byte-identical to pre-arena ones.
    backend: Optional[str] = None
    #: Engine strategy for the symbolic rungs (see
    #: :mod:`repro.core.portfolio`): ``"portfolio"`` races BDD vs SAT
    #: under deterministic step quanta, ``"sat"`` runs the SAT
    #: encodings alone.  ``None`` (the BDD-only default; ``"bdd"`` is
    #: normalized away at enumeration time) keeps journals
    #: byte-identical to pre-portfolio ones.
    strategy: Optional[str] = None

    @property
    def partial_seed(self) -> int:
        """Seed for carving this selection's Black Boxes."""
        return derive_seed(self.seed, self.benchmark, self.selection,
                           "partial")

    @property
    def mutation_seed(self) -> int:
        """Seed for picking this case's inserted error."""
        return derive_seed(self.seed, self.benchmark, self.selection,
                           self.error_index, "mutation")

    @property
    def case_seed(self) -> int:
        """Seed for the random-pattern check of this case."""
        return derive_seed(self.seed, self.benchmark, self.selection,
                           self.error_index, "patterns")

    @property
    def key(self) -> Tuple:
        """Hashable identity used for journal resume matching."""
        return (self.benchmark, self.selection, self.error_index,
                repr(self.fraction), self.num_boxes, self.patterns,
                self.seed, self.checks, self.node_limit,
                repr(self.soft_timeout) if self.soft_timeout is not None
                else None, self.preflight, self.backend, self.strategy)

    def describe(self) -> str:
        """Short human-readable coordinate for progress lines."""
        return "%s sel %d err %d" % (self.benchmark, self.selection,
                                     self.error_index)

    def to_dict(self) -> Dict:
        data = {
            "benchmark": self.benchmark,
            "selection": self.selection,
            "error_index": self.error_index,
            "fraction": self.fraction,
            "num_boxes": self.num_boxes,
            "patterns": self.patterns,
            "seed": self.seed,
            "checks": list(self.checks),
        }
        # Omitted when unset so ungoverned journals stay byte-identical
        # to those written before resource governance existed.
        if self.node_limit is not None:
            data["node_limit"] = self.node_limit
        if self.soft_timeout is not None:
            data["soft_timeout"] = self.soft_timeout
        if self.preflight:
            data["preflight"] = True
        if self.check_cache is not None:
            data["check_cache"] = self.check_cache
        if self.backend is not None:
            data["backend"] = self.backend
        if self.strategy is not None:
            data["strategy"] = self.strategy
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CaseSpec":
        node_limit = data.get("node_limit")
        soft_timeout = data.get("soft_timeout")
        return cls(benchmark=data["benchmark"],
                   selection=int(data["selection"]),
                   error_index=int(data["error_index"]),
                   fraction=float(data["fraction"]),
                   num_boxes=int(data["num_boxes"]),
                   patterns=int(data["patterns"]),
                   seed=int(data["seed"]),
                   checks=tuple(data["checks"]),
                   node_limit=int(node_limit)
                   if node_limit is not None else None,
                   soft_timeout=float(soft_timeout)
                   if soft_timeout is not None else None,
                   preflight=bool(data.get("preflight", False)),
                   check_cache=data.get("check_cache"),
                   backend=data.get("backend"),
                   strategy=data.get("strategy"))


def enumerate_cases(config: "ExperimentConfig",
                    benchmarks: Optional[Sequence[str]] = None)\
        -> List[CaseSpec]:
    """Flatten a campaign config into its case list.

    Order is benchmark-major, then selection, then error index — the
    canonical order the aggregator folds records in, so float sums are
    identical no matter in which order the cases actually executed.
    """
    import os

    from ..bdd.backends import BACKEND_ENV, normalize_backend
    from ..generators.benchmarks import BENCHMARK_FACTORIES

    names = list(benchmarks if benchmarks is not None
                 else (config.benchmarks or BENCHMARK_FACTORIES))
    # The BDD backend is resolved (config beats $REPRO_BDD_BACKEND)
    # *here*, once, so it becomes part of every case's key and journal
    # record — workers then execute what the spec says, never what
    # their own environment happens to hold.
    backend = normalize_backend(getattr(config, "backend", None)
                                or os.environ.get(BACKEND_ENV))
    from ..core.portfolio import normalize_strategy

    strategy = normalize_strategy(getattr(config, "strategy", None))
    cases: List[CaseSpec] = []
    for name in names:
        for selection in range(config.selections):
            for error_index in range(config.errors):
                cases.append(CaseSpec(
                    benchmark=name, selection=selection,
                    error_index=error_index, fraction=config.fraction,
                    num_boxes=config.num_boxes,
                    patterns=config.patterns, seed=config.seed,
                    checks=tuple(config.checks),
                    node_limit=getattr(config, "node_limit", None),
                    soft_timeout=getattr(config, "soft_timeout", None),
                    preflight=getattr(config, "preflight", False),
                    check_cache=getattr(config, "check_cache", None),
                    backend=backend,
                    strategy=strategy))
    return cases
