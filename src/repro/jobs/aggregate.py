"""Folding case records back into table rows.

Serial and parallel campaigns both end here: records are folded in
canonical enumeration order (benchmark, selection, error index), so the
floating-point sums — and therefore the rendered tables — are identical
no matter how many workers executed the cases or in which order they
finished.

Degraded cases are first-class: a check whose outcome is ``timeout``,
``error`` or ``inconclusive`` is *excluded* from that check's
detection-ratio denominator and node/time averages, and counted in
``BenchmarkRow.timeouts`` / ``check_errors`` / ``inconclusive``
instead, so a partially-failed campaign is visibly degraded rather than
silently averaged.  Budget-inconclusive cases additionally contribute
their strongest *completed* check's verdict to the row's best-effort
detection counters (``strongest_detected`` / ``strongest_valid``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.result import (OUTCOME_INCONCLUSIVE, OUTCOME_OK,
                           OUTCOME_TIMEOUT)
from ..experiments.runner import BenchmarkRow
from .journal import CaseRecord

__all__ = ["row_from_records", "fold_records", "sort_records",
           "nearest_rank"]


def sort_records(records: Sequence[CaseRecord]) -> List[CaseRecord]:
    """Records in canonical enumeration order."""
    return sorted(records, key=lambda r: (r.case.benchmark,
                                          r.case.selection,
                                          r.case.error_index))


def nearest_rank(values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile: always an observed value, never an
    interpolation, so campaign summaries are deterministic and robust
    to float noise.  Empty input yields 0.0."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    # ceil(q * n) in integer arithmetic: 0.95 * 20 must be rank 19,
    # not 20, however 0.95 rounds in binary floating point.
    percent = int(round(quantile * 100))
    rank = max(1, -(-percent * len(ordered) // 100))
    return ordered[rank - 1]


def _strongest_ok(record: CaseRecord, checks: Sequence[str]):
    """Last (most accurate) check slice of a record with an ok outcome."""
    strongest = None
    for check in checks:
        outcome = record.checks.get(check)
        if outcome is not None and outcome.outcome == OUTCOME_OK:
            strongest = outcome
    return strongest


def row_from_records(name: str, records: Sequence[CaseRecord],
                     checks: Sequence[str]) -> BenchmarkRow:
    """Fold one benchmark's records into a table row.

    ``records`` may arrive in any order; they are folded in canonical
    order for float determinism.
    """
    row = BenchmarkRow(circuit=name, inputs=0, outputs=0, spec_nodes=0)
    seconds_seen: Dict[str, List[float]] = {}
    for check in checks:
        row.detected[check] = 0
        row.impl_nodes[check] = 0.0
        row.peak_nodes[check] = 0.0
        row.runtime[check] = 0.0
        row.runtime_p50[check] = 0.0
        row.runtime_p95[check] = 0.0
        row.reorders[check] = 0
        row.gc_runs[check] = 0
        row.cache_hits[check] = 0
        row.cache_misses[check] = 0
        row.cache_evictions[check] = 0
        row.valid[check] = 0
        row.timeouts[check] = 0
        row.check_errors[check] = 0
        row.inconclusive[check] = 0
        row.check_cache_hits[check] = 0
        row.unique_load_factor[check] = 0.0
        row.unique_probe_p95[check] = 0
        row.unique_resizes[check] = 0
        row.sat_wins[check] = 0
        row.bdd_wins[check] = 0
        seconds_seen[check] = []
    for record in sort_records(records):
        row.cases += 1
        row.wall_seconds += record.seconds
        if record.spec_nodes and not row.spec_nodes:
            row.inputs = record.inputs
            row.outputs = record.outputs
            row.spec_nodes = record.spec_nodes
        if record.discharged is not None:
            row.discharged_outputs += record.discharged
        if record.outcome == OUTCOME_INCONCLUSIVE:
            # Best-effort fold: the strongest completed check's verdict
            # for a budget-degraded case (mirrored into every
            # inconclusive slice's ``error_found`` by the worker).
            strongest = _strongest_ok(record, checks)
            if strongest is not None:
                row.strongest_valid += 1
                row.strongest_detected += int(strongest.error_found)
        for check in checks:
            outcome = record.checks.get(check)
            if outcome is None or outcome.outcome == OUTCOME_TIMEOUT:
                # A missing slice only happens when the whole case was
                # killed before the check could report — a timeout.
                row.timeouts[check] += 1
            elif outcome.outcome == OUTCOME_INCONCLUSIVE:
                # Stopped cooperatively at a resource budget: no
                # authoritative verdict for *this* check, so it stays
                # out of the detection denominator, but unlike a
                # timeout the case still carries its best-effort
                # verdict (folded above).
                row.inconclusive[check] += 1
            elif outcome.outcome != OUTCOME_OK:
                row.check_errors[check] += 1
            else:
                row.valid[check] += 1
                row.check_cache_hits[check] += int(outcome.cached)
                row.detected[check] += int(outcome.error_found)
                row.impl_nodes[check] += outcome.impl_nodes
                row.peak_nodes[check] += outcome.peak_nodes
                row.runtime[check] += outcome.seconds
                seconds_seen[check].append(outcome.seconds)
                row.reorders[check] += outcome.reorders
                row.gc_runs[check] += outcome.gc_runs
                row.cache_hits[check] += outcome.cache_hits
                row.cache_misses[check] += outcome.cache_misses
                row.cache_evictions[check] += outcome.cache_evictions
                # Arena unique-table health: mean load factor over the
                # valid cases (divided below), worst-case probe p95,
                # total resizes.  All-zero off the arena backend.
                row.unique_load_factor[check] \
                    += outcome.unique_load_factor
                row.unique_probe_p95[check] = max(
                    row.unique_probe_p95[check],
                    outcome.unique_probe_p95)
                row.unique_resizes[check] += outcome.unique_resizes
                # Portfolio outcomes record which engine answered
                # (empty on the default BDD-only ladder).
                if outcome.engine == "sat":
                    row.sat_wins[check] += 1
                elif outcome.engine == "bdd":
                    row.bdd_wins[check] += 1
    for check in checks:
        if row.valid[check]:
            row.impl_nodes[check] /= row.valid[check]
            row.peak_nodes[check] /= row.valid[check]
            row.runtime[check] /= row.valid[check]
            row.unique_load_factor[check] /= row.valid[check]
            row.runtime_p50[check] = nearest_rank(seconds_seen[check],
                                                  0.50)
            row.runtime_p95[check] = nearest_rank(seconds_seen[check],
                                                  0.95)
    return row


def fold_records(records: Sequence[CaseRecord],
                 checks: Sequence[str]) -> Dict[str, BenchmarkRow]:
    """Group records by benchmark (first-appearance order) and fold."""
    grouped: Dict[str, List[CaseRecord]] = {}
    for record in records:
        grouped.setdefault(record.case.benchmark, []).append(record)
    return {name: row_from_records(name, group, checks)
            for name, group in grouped.items()}
