"""Parallel, fault-tolerant, resumable campaign execution engine.

Layers (see ``docs/parallel.md``):

* :mod:`~repro.jobs.spec` — flatten a campaign into coordinate-seeded
  :class:`CaseSpec` records (the determinism foundation);
* :mod:`~repro.jobs.worker` — execute one case from its coordinates,
  with process-local memoisation of expensive setup;
* :mod:`~repro.jobs.pool` — spawn-based worker pool with per-case
  wall-clock timeouts (kill + TIMEOUT record) and bounded crash retry;
* :mod:`~repro.jobs.journal` — append-only JSONL checkpoint enabling
  ``--resume``;
* :mod:`~repro.jobs.aggregate` — fold records into table rows in
  canonical order (serial == parallel, bit-for-bit);
* :mod:`~repro.jobs.engine` — :func:`run_campaign` orchestrating all of
  the above.
"""

from .spec import CaseSpec, derive_seed, enumerate_cases
from .journal import (CaseRecord, CheckOutcome, JournalWriteError,
                      JournalWriter, failed_record, read_journal,
                      timeout_record)
from .worker import clear_caches, execute_case
from .pool import WorkerPool, run_parallel
from .aggregate import fold_records, row_from_records, sort_records
from .engine import CampaignResult, run_campaign

__all__ = [
    "CaseSpec",
    "derive_seed",
    "enumerate_cases",
    "CaseRecord",
    "CheckOutcome",
    "JournalWriter",
    "JournalWriteError",
    "read_journal",
    "failed_record",
    "timeout_record",
    "execute_case",
    "clear_caches",
    "WorkerPool",
    "run_parallel",
    "fold_records",
    "row_from_records",
    "sort_records",
    "CampaignResult",
    "run_campaign",
]
