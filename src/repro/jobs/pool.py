"""Spawn-based worker pool with per-case timeouts and bounded retry.

Design notes
------------
* **spawn, not fork.**  Workers are started with the ``spawn`` start
  method: each child imports :mod:`repro` fresh instead of inheriting
  the parent's BDD managers, open files and locks.  That costs a few
  hundred milliseconds per worker once, buys identical behaviour on
  Linux/macOS/Windows, and guarantees a worker's unique-table state is
  a pure function of the cases it executed — part of the determinism
  contract.
* **One persistent process per slot.**  A worker loops over cases sent
  down a :class:`multiprocessing.Pipe`; per-benchmark setup is memoised
  inside the worker (:mod:`repro.jobs.worker`), so the pool does not
  pay a process start per case.
* **Timeouts kill, results survive.**  Pure-Python BDD operations
  cannot be interrupted in-process, so the deadline is enforced from
  the parent: an overdue worker is ``kill()``-ed, a terminal ``TIMEOUT``
  record is emitted for its case, and a fresh worker takes the slot.
* **Crash != timeout.**  A worker that dies *without* hitting the
  deadline (segfault, OOM kill) gets its case retried on a fresh worker
  up to ``max_attempts`` times, then a terminal ``ERROR`` record.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from multiprocessing.connection import Connection, wait
from typing import Callable, Deque, List, Optional, Tuple

from .journal import CaseRecord, failed_record, timeout_record
from .spec import CaseSpec

__all__ = ["CaseCodec", "WorkerPool", "run_parallel",
           "DEFAULT_MAX_ATTEMPTS"]

#: Attempts per case before a crashing case is recorded as ERROR.
DEFAULT_MAX_ATTEMPTS = 2

#: How long the shutdown path waits for a worker to exit voluntarily.
_JOIN_GRACE = 5.0

#: Upper bound on one poll cycle, so crashes surface promptly even
#: under long/no deadlines.
_POLL_CAP = 0.5


class _WorkerDied(Exception):
    """Internal marker: the child's pipe hit EOF mid-case."""


class CaseCodec:
    """Wire protocol between the pool and its workers (campaign flavor).

    The pool itself is agnostic about *what* it executes: everything it
    needs from a work item is ``to_dict()`` (duck-typed on the object)
    plus the four hooks below.  The default codec speaks the campaign
    vocabulary (:class:`CaseSpec` in, :class:`CaseRecord` out); other
    subsystems (the equivalence-checking service in :mod:`repro.serve`)
    plug in their own job/record types without touching the pool's
    dispatch, kill, retry or timeout machinery.  A codec must be a
    top-level class: it travels to spawned children by reference.
    """

    #: Rebuild a work item from its wire dict (child side).
    decode_case = staticmethod(CaseSpec.from_dict)
    #: Rebuild a result from its wire dict (parent side).
    decode_record = staticmethod(CaseRecord.from_dict)
    #: Terminal record for a crashed/raising case.
    failed = staticmethod(failed_record)
    #: Terminal record for a case killed at the hard deadline.
    timeout = staticmethod(timeout_record)


def _child_main(conn: Connection, task: Callable, codec=CaseCodec)\
        -> None:
    """Worker loop: receive a case dict, execute, send a record dict."""
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            if message is None:
                break
            case = codec.decode_case(message)
            try:
                record = task(case)
            except BaseException as exc:  # last-resort guard
                record = codec.failed(case, exc)
            try:
                conn.send(record.to_dict())
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()


class _Slot:
    """One worker process and its in-flight case, parent side."""

    def __init__(self, slot_id: int, context, task: Callable,
                 codec=CaseCodec):
        self.slot_id = slot_id
        self._context = context
        self._task = task
        self._codec = codec
        self.case: Optional[CaseSpec] = None
        self.attempt = 0
        self.started = 0.0
        self.deadline: Optional[float] = None
        self._start_process()

    def _start_process(self) -> None:
        parent_conn, child_conn = self._context.Pipe()
        self.process = self._context.Process(
            target=_child_main,
            args=(child_conn, self._task, self._codec),
            name="repro-jobs-%d" % self.slot_id, daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    @property
    def busy(self) -> bool:
        return self.case is not None

    def dispatch(self, case: CaseSpec, attempt: int,
                 timeout: Optional[float]) -> None:
        self.conn.send(case.to_dict())
        self.case = case
        self.attempt = attempt
        self.started = time.monotonic()
        self.deadline = self.started + timeout if timeout else None

    def take_case(self) -> Tuple[CaseSpec, int, float]:
        """Clear the in-flight case, returning (case, attempt, elapsed)."""
        case, attempt = self.case, self.attempt
        elapsed = time.monotonic() - self.started
        self.case = None
        self.deadline = None
        return case, attempt, elapsed

    def receive(self) -> CaseRecord:
        try:
            payload = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise _WorkerDied() from exc
        return self._codec.decode_record(payload)

    def kill_and_respawn(self) -> None:
        self.kill()
        self._start_process()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join(_JOIN_GRACE)
        self.conn.close()

    def shutdown(self) -> None:
        """Polite shutdown of an idle worker; escalates to kill."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(_JOIN_GRACE)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(_JOIN_GRACE)
        self.conn.close()


class WorkerPool:
    """A reusable pool of spawned workers, usable as a context manager.

    Separating construction (:meth:`start`) from case execution
    (:meth:`run`) makes the cleanup obligations explicit: however
    :meth:`run` exits — normally, on a worker crash, or because the
    driving process was interrupted — ``with WorkerPool(...) as pool:``
    guarantees every child process is reaped.  :func:`run_parallel`
    remains the one-shot convenience wrapper.
    """

    def __init__(self, jobs: int, timeout: Optional[float] = None,
                 task: Optional[Callable] = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 codec=CaseCodec):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if task is None:
            from .worker import execute_case as task
        self.jobs = int(jobs)
        self.timeout = timeout
        self.task = task
        self.max_attempts = max_attempts
        self.codec = codec
        self._aborted = False
        self._slots: List[_Slot] = []
        #: Monotone counters: workers that died mid-case (crash) and
        #: workers SIGKILLed at the hard deadline.  The fleet's slot
        #: governor (:class:`repro.fleet.slots.SlotFleet`) reads these
        #: to throttle crash-looping slots with backoff.
        self.crashes = 0
        self.timeout_kills = 0

    @property
    def started(self) -> bool:
        return bool(self._slots)

    def start(self) -> "WorkerPool":
        """Spawn the worker processes (idempotent).

        Startup is exception-safe: if the N-th worker fails to spawn,
        the N-1 already-running ones are shut down before the error
        propagates, so a failed start never leaks children.
        """
        if self._slots:
            return self
        context = multiprocessing.get_context("spawn")
        slots: List[_Slot] = []
        try:
            for i in range(self.jobs):
                slots.append(_Slot(i, context, self.task, self.codec))
        except BaseException:
            for slot in slots:
                slot.kill()
            raise
        self._slots = slots
        return self

    def close(self) -> None:
        """Reap every worker: polite shutdown when idle, kill if busy."""
        slots, self._slots = self._slots, []
        for slot in slots:
            if slot.busy:
                slot.kill()
            else:
                slot.shutdown()

    def abort(self) -> None:
        """Kill every worker NOW and make a concurrent :meth:`run` stop.

        Unlike :meth:`close` this is safe to call from another thread
        while ``run()`` is blocked in its poll loop (the service's
        abrupt-shutdown path): the killed pipes wake the loop, in-flight
        cases are dropped without retry or respawn, and ``run()``
        returns the records completed so far.  The pool is dead
        afterwards; call :meth:`close` to reap the processes.
        """
        self._aborted = True
        for slot in self._slots:
            if slot.process.is_alive():
                slot.process.kill()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, cases: List[CaseSpec],
            on_record: Optional[Callable[[CaseRecord], None]] = None)\
            -> List[CaseRecord]:
        """Execute ``cases``, returning records in completion order.

        ``on_record`` is additionally called as each record lands, which
        is how the engine journals and reports progress incrementally.
        """
        if not cases:
            return []
        self.start()
        timeout, max_attempts = self.timeout, self.max_attempts
        codec = self.codec
        slots = self._slots
        pending: Deque[Tuple[CaseSpec, int]] = deque(
            (case, 1) for case in cases)
        records: List[CaseRecord] = []

        def emit(record: CaseRecord) -> None:
            records.append(record)
            if on_record is not None:
                on_record(record)

        while not self._aborted \
                and (pending or any(slot.busy for slot in slots)):
            for slot in slots:
                if not slot.busy and pending:
                    case, attempt = pending.popleft()
                    slot.dispatch(case, attempt, timeout)
            busy = [slot for slot in slots if slot.busy]
            if not busy:
                continue
            now = time.monotonic()
            poll = _POLL_CAP
            if timeout:
                nearest = min(slot.deadline for slot in busy)
                poll = min(poll, max(0.0, nearest - now))
            ready = wait([slot.conn for slot in busy], timeout=poll)
            for slot in busy:
                if slot.conn not in ready or not slot.busy:
                    continue
                try:
                    record = slot.receive()
                except _WorkerDied:
                    case, attempt, elapsed = slot.take_case()
                    if self._aborted:
                        continue
                    self.crashes += 1
                    slot.kill_and_respawn()
                    if attempt < max_attempts:
                        pending.append((case, attempt + 1))
                    else:
                        emit(codec.failed(
                            case,
                            RuntimeError("worker died (attempt %d/%d)"
                                         % (attempt, max_attempts)),
                            seconds=elapsed, worker=slot.slot_id,
                            attempt=attempt))
                    continue
                case, attempt, _ = slot.take_case()
                record.worker = slot.slot_id
                record.attempt = attempt
                emit(record)
            if timeout and not self._aborted:
                now = time.monotonic()
                for slot in slots:
                    if slot.busy and slot.deadline is not None \
                            and now >= slot.deadline:
                        case, attempt, elapsed = slot.take_case()
                        self.timeout_kills += 1
                        slot.kill_and_respawn()
                        emit(codec.timeout(case, elapsed,
                                           worker=slot.slot_id,
                                           attempt=attempt))
        return records


def run_parallel(cases: List[CaseSpec], jobs: int,
                 timeout: Optional[float] = None,
                 task: Optional[Callable] = None,
                 on_record: Optional[Callable[[CaseRecord], None]] = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS)\
        -> List[CaseRecord]:
    """Execute ``cases`` on ``jobs`` spawned workers (one-shot pool).

    Returns one record per case (in completion order); ``on_record`` is
    additionally called as each record lands.  ``task`` defaults to
    :func:`repro.jobs.worker.execute_case` and must be an importable
    top-level callable (it is sent to spawned children by reference).
    """
    if not cases:
        return []
    jobs = max(1, min(int(jobs), len(cases)))
    with WorkerPool(jobs=jobs, timeout=timeout, task=task,
                    max_attempts=max_attempts) as pool:
        return pool.run(cases, on_record=on_record)
