"""Per-case execution: the unit of work the pool distributes.

:func:`execute_case` rebuilds everything a case needs from its
coordinates alone (benchmark factory -> tuned spec -> Black Box carving
-> error insertion -> checks), which is what lets any worker process
execute any case.  Expensive per-benchmark artefacts (the sifted
specification) and per-selection artefacts (the carved partial) are
memoised process-locally, so a worker that receives many cases of the
same benchmark pays the setup cost once — mirroring what the serial
runner gets for free from its loop nesting.
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, Optional, Tuple

from ..circuit.netlist import Circuit
from ..core.result import (OUTCOME_ERROR, OUTCOME_INCONCLUSIVE,
                           OUTCOME_OK)
from ..generators.benchmarks import BENCHMARK_FACTORIES
from ..obs import Tracer, get_tracer, set_tracer, write_jsonl
from ..partial.blackbox import PartialImplementation
from ..partial.extraction import make_partial
from ..partial.mutations import insert_random_error
from ..resilience.budget import Budget, BudgetExceededError
from .journal import (CaseRecord, CheckOutcome, failed_record,
                      trace_filename)
from .spec import CaseSpec

__all__ = ["execute_case", "clear_caches"]

#: benchmark name -> (fingerprint, tuned spec, (inputs, outputs, nodes))
_SPEC_CACHE: Dict[str, Tuple[str, Circuit, Tuple[int, int, int]]] = {}
#: (benchmark, fraction, num_boxes, partial seed) -> carved partial
_PARTIAL_CACHE: Dict[Tuple, PartialImplementation] = {}
_PARTIAL_CACHE_MAX = 16
#: benchmark name -> (spec fingerprint, spec ConeHashes) — the spec
#: side of the static analysis is per-benchmark, so a worker hashing
#: many cases of one benchmark pays the cone walk once.
_SPEC_HASH_CACHE: Dict[str, Tuple[str, object]] = {}


def clear_caches() -> None:
    """Drop the process-local spec/partial memos (mainly for tests)."""
    _SPEC_CACHE.clear()
    _PARTIAL_CACHE.clear()
    _SPEC_HASH_CACHE.clear()


def _fingerprint(circuit: Circuit) -> str:
    """Structural identity of a circuit, for cache validation."""
    import hashlib

    digest = hashlib.sha256()
    digest.update(repr((tuple(circuit.inputs),
                        tuple(circuit.outputs))).encode("utf-8"))
    for gate in sorted(circuit.gates, key=lambda g: g.output):
        digest.update(repr((gate.output, gate.gtype.name,
                            tuple(gate.inputs))).encode("utf-8"))
    return digest.hexdigest()[:16]


def _tuned_spec(name: str, spec: Optional[Circuit] = None)\
        -> Tuple[Circuit, Tuple[int, int, int]]:
    """Sifted spec + (inputs, outputs, nodes) for a benchmark, memoised.

    When an explicit ``spec`` circuit is supplied (serial in-process
    paths) its structure is fingerprinted so a cache entry built from a
    *different* circuit under the same name is never reused.  Without
    one, the circuit comes from :data:`BENCHMARK_FACTORIES` — the only
    mode available to pool workers, which hold no circuit objects.
    """
    from ..experiments.runner import _tune_spec

    fingerprint = _fingerprint(spec) if spec is not None else None
    cached = _SPEC_CACHE.get(name)
    if cached is not None and (fingerprint is None
                               or cached[0] == fingerprint):
        return cached[1], cached[2]
    if spec is None:
        try:
            factory = BENCHMARK_FACTORIES[name]
        except KeyError:
            raise ValueError(
                "benchmark %r is not in BENCHMARK_FACTORIES; parallel "
                "workers can only rebuild factory benchmarks" % name
            ) from None
        spec = factory()
        fingerprint = _fingerprint(spec)
    tuned, nodes = _tune_spec(spec)
    meta = (len(tuned.inputs), len(tuned.outputs), nodes)
    _SPEC_CACHE[name] = (fingerprint, tuned, meta)
    return tuned, meta


def _carved_partial(case: CaseSpec, tuned: Circuit)\
        -> PartialImplementation:
    cache_key = (case.benchmark, repr(case.fraction), case.num_boxes,
                 case.partial_seed)
    partial = _PARTIAL_CACHE.get(cache_key)
    if partial is None:
        partial = make_partial(tuned, fraction=case.fraction,
                               num_boxes=case.num_boxes,
                               seed=case.partial_seed)
        if len(_PARTIAL_CACHE) >= _PARTIAL_CACHE_MAX:
            _PARTIAL_CACHE.pop(next(iter(_PARTIAL_CACHE)))
        _PARTIAL_CACHE[cache_key] = partial
    return partial


def _spec_cone_hashes(name: str, tuned: Circuit):
    """Canonical cone hashes of a benchmark's tuned spec, memoised.

    Keyed like :data:`_SPEC_CACHE` — fingerprint-validated so an
    explicit same-named-but-different spec never reuses the memo.
    """
    from ..analysis.static.hashing import cone_hashes

    fingerprint = _fingerprint(tuned)
    cached = _SPEC_HASH_CACHE.get(name)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    hashes = cone_hashes(tuned)
    _SPEC_HASH_CACHE[name] = (fingerprint, hashes)
    return hashes


def _strongest_clause(check: Optional[str], error_found: bool) -> str:
    """Human-readable "strongest completed level" suffix for details."""
    if check is None:
        return "no level completed"
    return "strongest completed level: %s (%s)" % (
        check, "error found" if error_found else "no error found")


def execute_case(case: CaseSpec,
                 spec: Optional[Circuit] = None) -> CaseRecord:
    """Run one campaign case and return its record.

    Never raises for per-case problems: setup failures yield a terminal
    ERROR record, and each check is isolated so one raising check
    degrades only its own column, not the case.

    When ``REPRO_TRACE_DIR`` is set (the environment is inherited by
    pool workers), the case runs under a fresh :class:`repro.obs.Tracer`
    and its events are written to ``$REPRO_TRACE_DIR/`` under the name
    :func:`repro.jobs.journal.trace_filename` derives from the case key.
    The journal record itself is byte-identical either way — tracing is
    a side channel, never part of the campaign's results.
    """
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if not trace_dir:
        return _execute_case(case, spec)
    tracer = Tracer()
    previous = set_tracer(tracer)
    span = tracer.span("case", benchmark=case.benchmark,
                       selection=case.selection,
                       error_index=case.error_index)
    try:
        record = _execute_case(case, spec)
        span.done(outcome=record.outcome, seconds=record.seconds)
    finally:
        set_tracer(previous)
        tracer.close_all()
    try:
        write_jsonl(tracer.events,
                    os.path.join(trace_dir, trace_filename(case)))
    except OSError:
        pass  # a full/readonly trace dir must not fail the case
    return record


def _execute_case(case: CaseSpec,
                  spec: Optional[Circuit] = None) -> CaseRecord:
    from ..experiments.runner import run_one_case

    start = time.perf_counter()
    tracer = get_tracer()
    # Static analysis state (all inert unless the case asks for it):
    # the preflight report, the possibly output-restricted pair the
    # checks actually run on, and the content-addressed verdict cache.
    report = None
    cache = None
    budget_cls = ""
    spec_digest = impl_digest = ""
    try:
        tuned, (n_inputs, n_outputs, spec_nodes) = _tuned_spec(
            case.benchmark, spec)
        partial = _carved_partial(case, tuned)
        mutated, mutation = insert_random_error(
            partial.circuit, random.Random(case.mutation_seed))
        impl = PartialImplementation(mutated, partial.boxes)
        run_spec, run_impl = tuned, impl
        if case.preflight or case.check_cache:
            from ..analysis.static.hashing import cone_hashes

            spec_hashes = _spec_cone_hashes(case.benchmark, tuned)
            impl_hashes = cone_hashes(impl.circuit, impl.boxes)
            spec_digest = spec_hashes.digest
            impl_digest = impl_hashes.digest
        if case.check_cache:
            from ..analysis.static.cache import (CheckCache,
                                                 budget_class)

            cache = CheckCache(case.check_cache)
            budget_cls = budget_class(case.node_limit,
                                      case.soft_timeout)
        if case.preflight:
            from ..analysis.static.preflight import (
                preflight as static_preflight, restrict_to_outputs)

            span = None if tracer is None else tracer.span("preflight")
            report = static_preflight(tuned, impl, spec_hashes,
                                      impl_hashes)
            if span is not None:
                span.done(**report.summary())
            if report.discharged and report.mismatch is None \
                    and not report.all_discharged:
                run_spec, run_impl = restrict_to_outputs(
                    tuned, impl, report.open_indices)
    except Exception as exc:
        return failed_record(case, exc,
                             seconds=time.perf_counter() - start)

    discharged = None if report is None else len(report.discharged)
    if report is not None and (report.mismatch is not None
                               or report.all_discharged):
        # The preflight decided the whole case: every check level
        # agrees statically, no BDD (and no cache entry) is needed.
        # ``seconds=0.0`` deliberately — measured preflight time would
        # make otherwise-identical campaign aggregations differ.
        mismatch = report.mismatch
        if mismatch is not None:
            found, detail = True, ("static preflight: %s"
                                   % mismatch.reason)
        else:
            found, detail = False, (
                "static preflight: all %d output cones discharged"
                % len(report.verdicts))
        return CaseRecord(
            case=case, outcome=OUTCOME_OK,
            checks={check: CheckOutcome(outcome=OUTCOME_OK,
                                        error_found=found,
                                        detail=detail)
                    for check in case.checks},
            seconds=time.perf_counter() - start,
            inputs=n_inputs, outputs=n_outputs, spec_nodes=spec_nodes,
            mutation=mutation.describe(), discharged=discharged)

    # One Budget per case: the cooperative soft deadline spans all the
    # case's checks, while the node ceiling governs each check's fresh
    # manager separately.  A budget kill degrades that check's column to
    # ``inconclusive`` carrying the strongest *completed* check's
    # verdict (ladder order == case.checks order) instead of poisoning
    # the whole case or waiting for the pool's SIGKILL hard deadline.
    budget = Budget.from_limits(node_limit=case.node_limit,
                                soft_timeout=case.soft_timeout)
    outcomes: Dict[str, CheckOutcome] = {}
    worst = OUTCOME_OK
    strongest_check: Optional[str] = None
    strongest_found = False
    out_of_time = False
    for check in case.checks:
        if out_of_time:
            outcomes[check] = CheckOutcome(
                outcome=OUTCOME_INCONCLUSIVE,
                error_found=strongest_found,
                detail="soft deadline exhausted before this check; %s"
                       % _strongest_clause(strongest_check,
                                           strongest_found))
            continue
        cache_key = None
        if cache is not None:
            cache_key = cache.key(
                spec_digest, impl_digest, check, budget=budget_cls,
                patterns=case.patterns if check == "r.p." else None,
                seed=case.case_seed if check == "r.p." else None,
                variant=",".join(
                    part for part in
                    ("preflight" if report is not None else "",
                     case.strategy or "") if part))
            payload = cache.get(cache_key)
            if tracer is not None:
                tracer.instant("check_cache", check=check,
                               hit=payload is not None)
            if payload is not None:
                try:
                    outcome = CheckOutcome.from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    outcome = None  # foreign/corrupt entry: run it
                if outcome is not None and outcome.outcome == OUTCOME_OK:
                    outcome.cached = True
                    outcomes[check] = outcome
                    strongest_check = check
                    strongest_found = outcome.error_found
                    continue
        check_start = time.perf_counter()
        try:
            result = run_one_case(run_spec, run_impl, (check,),
                                  case.patterns,
                                  seed=case.case_seed,
                                  budget=budget,
                                  backend=case.backend
                                  or "dict",
                                  strategy=case.strategy)[check]
            outcomes[check] = CheckOutcome(
                outcome=result.outcome,
                error_found=result.error_found,
                seconds=result.seconds,
                impl_nodes=int(result.stats.get("impl_nodes", 0)),
                peak_nodes=int(result.stats.get("peak_nodes", 0)),
                cache_hits=int(result.stats.get("cache_hits", 0)),
                cache_misses=int(result.stats.get("cache_misses", 0)),
                cache_evictions=int(
                    result.stats.get("cache_evictions", 0)),
                reorders=int(result.stats.get("reorders", 0)),
                gc_runs=int(result.stats.get("gc_runs", 0)),
                detail=result.detail,
                unique_load_factor=float(
                    result.stats.get("unique_load_factor", 0.0)),
                unique_probe_p95=int(
                    result.stats.get("unique_probe_p95", 0)),
                unique_resizes=int(
                    result.stats.get("unique_resizes", 0)),
                # Which engine answered a raced rung (portfolio/sat
                # strategies only).  The random-pattern check has its
                # own unrelated stats["engine"] ("packed"/"scalar"),
                # so the journal field is filled only for the rungs a
                # strategy actually governs — default journals keep
                # their exact pre-portfolio bytes.
                engine=str(result.stats.get("engine", ""))
                if case.strategy and check in ("0,1,X", "oe") else "")
            if result.outcome == OUTCOME_OK:
                strongest_check = check
                strongest_found = result.error_found
                if cache is not None:
                    cache.put(cache_key, outcomes[check].to_dict())
            elif result.outcome == OUTCOME_INCONCLUSIVE:
                if worst == OUTCOME_OK:
                    worst = OUTCOME_INCONCLUSIVE
            else:
                worst = OUTCOME_ERROR
        except BudgetExceededError as exc:
            outcomes[check] = CheckOutcome(
                outcome=OUTCOME_INCONCLUSIVE,
                error_found=strongest_found,
                seconds=time.perf_counter() - check_start,
                peak_nodes=exc.value if exc.resource == "live_nodes"
                else 0,
                detail="%s; %s" % (exc, _strongest_clause(
                    strongest_check, strongest_found)))
            if worst == OUTCOME_OK:
                worst = OUTCOME_INCONCLUSIVE
            if exc.resource == "wall_clock":
                # The deadline is per-case: later (more expensive)
                # checks cannot fit either; mark them without running.
                out_of_time = True
        except Exception as exc:
            outcomes[check] = CheckOutcome(
                outcome=OUTCOME_ERROR,
                detail="%s: %s" % (type(exc).__name__, exc))
            worst = OUTCOME_ERROR
    if out_of_time and worst == OUTCOME_OK:
        worst = OUTCOME_INCONCLUSIVE
    return CaseRecord(
        case=case, outcome=worst, checks=outcomes,
        seconds=time.perf_counter() - start,
        inputs=n_inputs, outputs=n_outputs, spec_nodes=spec_nodes,
        mutation=mutation.describe(), discharged=discharged)
