"""Convenience layer for constructing netlists programmatically.

:class:`CircuitBuilder` hands out fresh net names and offers word-level
helpers (adders, muxes, reduction trees) that the benchmark generators
are built from.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .gates import GateType
from .netlist import Circuit

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Fluent netlist construction with automatic net naming."""

    def __init__(self, name: str = "circuit",
                 max_fanin: Optional[int] = None) -> None:
        self.circuit = Circuit(name)
        self._counter = 0
        self._reserved: set = set()
        self.max_fanin = max_fanin

    # -- naming ---------------------------------------------------------

    def reserve(self, names: Iterable[str]) -> None:
        """Declare names :meth:`fresh` must never hand out (parser aid)."""
        self._reserved.update(names)

    def fresh(self, prefix: str = "n") -> str:
        """A net name not used so far."""
        while True:
            name = "%s%d" % (prefix, self._counter)
            self._counter += 1
            if (not self.circuit.drives(name)
                    and not self.circuit.is_input(name)
                    and name not in self._reserved):
                return name

    # -- ports ----------------------------------------------------------

    def input(self, name: str) -> str:
        """Declare one primary input."""
        return self.circuit.add_input(name)

    def inputs(self, prefix: str, count: int) -> List[str]:
        """Declare a bus of inputs ``prefix0 .. prefix<count-1>``."""
        return [self.circuit.add_input("%s%d" % (prefix, i))
                for i in range(count)]

    def interleaved_inputs(self, prefixes: Sequence[str],
                           count: int) -> List[List[str]]:
        """Declare several buses bit-interleaved: ``a0 b0 a1 b1 ...``.

        Interleaving operand buses gives word-level circuits (adders,
        comparators) linear-size BDDs under the declaration order, where
        bus-after-bus declaration is exponential.
        """
        buses: List[List[str]] = [[] for _ in prefixes]
        for i in range(count):
            for bus, prefix in zip(buses, prefixes):
                bus.append(self.circuit.add_input("%s%d" % (prefix, i)))
        return buses

    def output(self, net: str, name: Optional[str] = None) -> str:
        """Expose ``net`` as a primary output, buffering to rename."""
        if name is not None and name != net:
            net = self.gate(GateType.BUF, [net], out=name)
        self.circuit.add_output(net)
        return net

    def outputs(self, nets: Sequence[str], prefix: str = "") -> List[str]:
        """Expose several nets as outputs, optionally renamed by prefix."""
        result = []
        for i, net in enumerate(nets):
            name = "%s%d" % (prefix, i) if prefix else None
            result.append(self.output(net, name))
        return result

    # -- gates ------------------------------------------------------------

    def gate(self, gtype: GateType, inputs: Sequence[str],
             out: Optional[str] = None) -> str:
        """Add one gate; splits wide gates if ``max_fanin`` is set."""
        inputs = list(inputs)
        if (self.max_fanin is not None and len(inputs) > self.max_fanin
                and gtype in (GateType.AND, GateType.OR, GateType.XOR)):
            while len(inputs) > self.max_fanin:
                chunk = inputs[:self.max_fanin]
                inputs = [self._raw(gtype, chunk)] + inputs[self.max_fanin:]
            return self._raw(gtype, inputs, out)
        return self._raw(gtype, inputs, out)

    def _raw(self, gtype: GateType, inputs: Sequence[str],
             out: Optional[str] = None) -> str:
        if out is None:
            out = self.fresh()
        return self.circuit.add_gate(out, gtype, inputs)

    def not_(self, a: str, out: Optional[str] = None) -> str:
        """Inverter."""
        return self.gate(GateType.NOT, [a], out)

    def buf(self, a: str, out: Optional[str] = None) -> str:
        """Buffer."""
        return self.gate(GateType.BUF, [a], out)

    def and_(self, *nets: str, out: Optional[str] = None) -> str:
        """AND of one or more nets."""
        return self.gate(GateType.AND, nets, out)

    def or_(self, *nets: str, out: Optional[str] = None) -> str:
        """OR of one or more nets."""
        return self.gate(GateType.OR, nets, out)

    def nand_(self, *nets: str, out: Optional[str] = None) -> str:
        """NAND of one or more nets."""
        return self.gate(GateType.NAND, nets, out)

    def nor_(self, *nets: str, out: Optional[str] = None) -> str:
        """NOR of one or more nets."""
        return self.gate(GateType.NOR, nets, out)

    def xor_(self, *nets: str, out: Optional[str] = None) -> str:
        """XOR (parity) of one or more nets."""
        return self.gate(GateType.XOR, nets, out)

    def xnor_(self, *nets: str, out: Optional[str] = None) -> str:
        """XNOR of one or more nets."""
        return self.gate(GateType.XNOR, nets, out)

    def const(self, value: bool, out: Optional[str] = None) -> str:
        """Constant-0 or constant-1 net."""
        return self.gate(GateType.CONST1 if value else GateType.CONST0,
                         [], out)

    # -- derived logic ---------------------------------------------------

    def mux(self, sel: str, a: str, b: str,
            out: Optional[str] = None) -> str:
        """2:1 multiplexer: ``sel ? b : a``."""
        nsel = self.not_(sel)
        t0 = self.and_(nsel, a)
        t1 = self.and_(sel, b)
        return self.or_(t0, t1, out=out)

    def xor_tree(self, nets: Sequence[str],
                 out: Optional[str] = None) -> str:
        """Balanced tree of 2-input XORs (parity)."""
        return self._tree(GateType.XOR, nets, out)

    def and_tree(self, nets: Sequence[str],
                 out: Optional[str] = None) -> str:
        """Balanced tree of 2-input ANDs."""
        return self._tree(GateType.AND, nets, out)

    def or_tree(self, nets: Sequence[str],
                out: Optional[str] = None) -> str:
        """Balanced tree of 2-input ORs."""
        return self._tree(GateType.OR, nets, out)

    def _tree(self, gtype: GateType, nets: Sequence[str],
              out: Optional[str]) -> str:
        level = list(nets)
        if not level:
            raise ValueError("reduction tree of zero nets")
        if len(level) == 1:
            return self.buf(level[0], out) if out else level[0]
        while len(level) > 2:
            level = [self.gate(gtype, level[i:i + 2])
                     if i + 1 < len(level) else level[i]
                     for i in range(0, len(level), 2)]
        return self.gate(gtype, level, out)

    def half_adder(self, a: str, b: str) -> Tuple[str, str]:
        """Returns ``(sum, carry)``."""
        return self.xor_(a, b), self.and_(a, b)

    def full_adder(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        """Returns ``(sum, carry_out)``."""
        s1 = self.xor_(a, b)
        s = self.xor_(s1, cin)
        c1 = self.and_(a, b)
        c2 = self.and_(s1, cin)
        return s, self.or_(c1, c2)

    def ripple_adder(self, a_bits: Sequence[str], b_bits: Sequence[str],
                     cin: Optional[str] = None)\
            -> Tuple[List[str], str]:
        """Ripple-carry adder; returns ``(sum_bits, carry_out)``."""
        if len(a_bits) != len(b_bits):
            raise ValueError("operand width mismatch")
        sums: List[str] = []
        carry = cin
        for a, b in zip(a_bits, b_bits):
            if carry is None:
                s, carry = self.half_adder(a, b)
            else:
                s, carry = self.full_adder(a, b, carry)
            sums.append(s)
        return sums, carry

    def equal(self, a_bits: Sequence[str], b_bits: Sequence[str],
              out: Optional[str] = None) -> str:
        """Word equality comparator."""
        eqs = [self.xnor_(a, b) for a, b in zip(a_bits, b_bits)]
        return self.and_tree(eqs, out)

    def less_than(self, a_bits: Sequence[str], b_bits: Sequence[str],
                  out: Optional[str] = None) -> str:
        """Unsigned ``a < b``, LSB-first operands."""
        lt: Optional[str] = None
        for a, b in zip(a_bits, b_bits):  # LSB to MSB
            na = self.not_(a)
            bit_lt = self.and_(na, b)
            if lt is None:
                lt = bit_lt
            else:
                eq = self.xnor_(a, b)
                keep = self.and_(eq, lt)
                lt = self.or_(bit_lt, keep)
        if lt is None:
            return self.const(False, out)
        if out is not None:
            return self.buf(lt, out)
        return lt

    # -- finish ------------------------------------------------------------

    def build(self, validate: bool = True) -> Circuit:
        """Return the finished circuit, validating by default."""
        if validate:
            self.circuit.validate()
        return self.circuit
