"""Structural netlist transformations."""

from __future__ import annotations

from typing import Dict, List, Optional

from .gates import GateType
from .netlist import Circuit, CircuitError

__all__ = ["expand_to_two_input", "strip_buffers"]

_SPLIT_BASE = {
    GateType.AND: GateType.AND,
    GateType.OR: GateType.OR,
    GateType.XOR: GateType.XOR,
    GateType.NAND: GateType.AND,
    GateType.NOR: GateType.OR,
    GateType.XNOR: GateType.XOR,
}


def expand_to_two_input(circuit: Circuit,
                        name: Optional[str] = None) -> Circuit:
    """Rewrite every gate with fan-in > 2 into a tree of 2-input gates.

    The classic relation between ISCAS-85 C499 and C1355: identical
    function, different structure.  Inverting gate types keep their
    inversion at the final tree stage.
    """
    result = Circuit(name or circuit.name + "_2in")
    result.add_inputs(circuit.inputs)
    counter = [0]
    used = set(circuit.nets()) | set(circuit.free_nets())

    def fresh() -> str:
        while True:
            candidate = "x2_%d" % counter[0]
            counter[0] += 1
            if candidate not in used:
                used.add(candidate)
                return candidate

    for gate in circuit.gates:
        if len(gate.inputs) <= 2 or gate.gtype not in _SPLIT_BASE:
            result.add_gate(gate.output, gate.gtype, gate.inputs)
            continue
        base = _SPLIT_BASE[gate.gtype]
        level: List[str] = list(gate.inputs)
        while len(level) > 2:
            nxt: List[str] = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    net = fresh()
                    result.add_gate(net, base, level[i:i + 2])
                    nxt.append(net)
                else:
                    nxt.append(level[i])
            level = nxt
        result.add_gate(gate.output, gate.gtype, level)
    result.add_outputs(circuit.outputs)
    result.validate(allow_free=bool(circuit.free_nets()))
    return result


def strip_buffers(circuit: Circuit,
                  name: Optional[str] = None) -> Circuit:
    """Remove BUF gates by rewiring, except those naming primary outputs."""
    keep = set(circuit.outputs)
    forward: Dict[str, str] = {}
    for gate in circuit.gates:
        if gate.gtype is GateType.BUF and gate.output not in keep:
            forward[gate.output] = gate.inputs[0]

    def resolve(net: str) -> str:
        seen = set()
        while net in forward:
            if net in seen:
                raise CircuitError("buffer cycle at %r" % net)
            seen.add(net)
            net = forward[net]
        return net

    result = Circuit(name or circuit.name)
    result.add_inputs(circuit.inputs)
    for gate in circuit.gates:
        if gate.output in forward:
            continue
        result.add_gate(gate.output, gate.gtype,
                        [resolve(src) for src in gate.inputs])
    result.add_outputs(circuit.outputs)
    result.validate(allow_free=bool(circuit.free_nets()))
    return result
