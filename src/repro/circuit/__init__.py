"""Combinational gate-level netlists: model, builder, BLIF/bench I/O."""

from .gates import GateType, eval_gate
from .netlist import Circuit, CircuitError, CombinationalCycleError, Gate
from .builder import CircuitBuilder
from .srcloc import ParseEvent, SourceMap
from .blif import dumps_blif, loads_blif, read_blif, write_blif
from .iscas import dumps_bench, loads_bench, read_bench, write_bench
from .transform import expand_to_two_input, strip_buffers
from .optimize import (merge_duplicates, optimize, propagate_constants,
                       sweep_dead)
from .verilog import (dumps_verilog, loads_verilog, read_verilog,
                      write_verilog)
from .cone_extraction import extract_cone

__all__ = [
    "GateType",
    "eval_gate",
    "Circuit",
    "CircuitError",
    "CombinationalCycleError",
    "Gate",
    "CircuitBuilder",
    "ParseEvent",
    "SourceMap",
    "read_blif",
    "write_blif",
    "loads_blif",
    "dumps_blif",
    "read_bench",
    "write_bench",
    "loads_bench",
    "dumps_bench",
    "expand_to_two_input",
    "strip_buffers",
    "propagate_constants",
    "merge_duplicates",
    "sweep_dead",
    "optimize",
    "dumps_verilog",
    "write_verilog",
    "read_verilog",
    "loads_verilog",
    "extract_cone",
]
