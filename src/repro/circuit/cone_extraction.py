"""Cone extraction: cut a standalone sub-circuit out of a netlist.

Useful for debugging (inspect one output's logic in isolation), for
building abstraction boxes, and as the building block the diagnosis
workflows use when presenting a suspected region to a human.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .netlist import Circuit, CircuitError

__all__ = ["extract_cone"]


def extract_cone(circuit: Circuit, roots: Sequence[str],
                 stop_at: Iterable[str] = (),
                 name: Optional[str] = None) -> Circuit:
    """Standalone circuit computing ``roots`` from their support.

    The new circuit's inputs are the primary inputs / free nets the
    cone reaches, plus every net in ``stop_at`` (cut points: their
    driving logic is not copied).  Outputs are the requested roots, in
    order.
    """
    stops = set(stop_at)
    for net in roots:
        if not (circuit.drives(net) or circuit.is_input(net)
                or net in circuit.free_nets()):
            raise CircuitError("unknown root net %r" % net)

    needed: List[str] = []
    seen = set()
    stack = list(roots)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        needed.append(net)
        if net in stops or not circuit.drives(net):
            continue
        stack.extend(circuit.gate(net).inputs)

    result = Circuit(name or circuit.name + "_cone")
    leaves = [net for net in needed
              if net in stops or not circuit.drives(net)]
    # Preserve the original input declaration order where possible.
    original_order = {net: i for i, net in enumerate(circuit.inputs)}
    leaves.sort(key=lambda n: (original_order.get(n, 1 << 30), n))
    for net in leaves:
        result.add_input(net)
    for net in circuit.topological_order():
        if net in seen and net not in stops:
            gate = circuit.gate(net)
            result.add_gate(net, gate.gtype, gate.inputs)
    for net in roots:
        result.add_output(net)
    result.validate()
    return result
