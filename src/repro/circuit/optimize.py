"""Light netlist clean-up passes: constant propagation, structural
hashing, dead-gate removal.

Used to keep generated and mutated circuits lean before the symbolic
checks, and exercised by the test-suite as an equivalence-preserving
transformation (checked against the BDD equivalence checker).
All passes preserve the interface (inputs/outputs) and tolerate free
nets (Black Box outputs), which they never touch.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .gates import GateType
from .netlist import Circuit, CircuitError

__all__ = ["propagate_constants", "merge_duplicates", "sweep_dead",
           "optimize"]

_INVERSE = {
    GateType.AND: GateType.NAND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.NOR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
}

_TRUE = "\x01"   # symbolic constants used inside the passes
_FALSE = "\x00"


def _const_of(net: str) -> Optional[bool]:
    if net == _TRUE:
        return True
    if net == _FALSE:
        return False
    return None


def propagate_constants(circuit: Circuit,
                        name: Optional[str] = None) -> Circuit:
    """Fold constant gates through the netlist.

    CONST0/CONST1 gates and gates whose value is forced by controlling
    constant inputs are evaluated; downstream gates simplify.  Constants
    that remain visible (feeding outputs or surviving gates) are
    re-emitted as constant gates.
    """
    result = Circuit(name or circuit.name)
    result.add_inputs(circuit.inputs)
    free = set(circuit.free_nets())

    # Map from original net to either a replacement net or a constant.
    value: Dict[str, str] = {}

    def resolve(net: str) -> str:
        return value.get(net, net)

    const_nets: Dict[bool, str] = {}

    def const_net(bit: bool) -> str:
        if bit not in const_nets:
            base = "const1" if bit else "const0"
            candidate = base
            counter = 0
            existing = set(circuit.nets()) | free
            while candidate in existing:
                counter += 1
                candidate = "%s_%d" % (base, counter)
            result.add_gate(candidate,
                            GateType.CONST1 if bit else GateType.CONST0,
                            [])
            const_nets[bit] = candidate
        return const_nets[bit]

    for net in circuit.topological_order():
        gate = circuit.gate(net)
        ins = [resolve(src) for src in gate.inputs]
        consts = [_const_of(i) for i in ins]
        gtype = gate.gtype

        if gtype in (GateType.CONST0, GateType.CONST1):
            value[net] = _TRUE if gtype is GateType.CONST1 else _FALSE
            continue
        if gtype in (GateType.BUF, GateType.NOT):
            bit = consts[0]
            if bit is not None:
                out_bit = bit if gtype is GateType.BUF else not bit
                value[net] = _TRUE if out_bit else _FALSE
                continue
            if gtype is GateType.BUF:
                value[net] = ins[0]
                continue
            result.add_gate(net, GateType.NOT, ins)
            continue

        if gtype in (GateType.AND, GateType.NAND):
            if any(bit is False for bit in consts):
                value[net] = _FALSE if gtype is GateType.AND else _TRUE
                continue
            ins = [i for i, bit in zip(ins, consts) if bit is None]
        elif gtype in (GateType.OR, GateType.NOR):
            if any(bit is True for bit in consts):
                value[net] = _TRUE if gtype is GateType.OR else _FALSE
                continue
            ins = [i for i, bit in zip(ins, consts) if bit is None]
        elif gtype in (GateType.XOR, GateType.XNOR):
            flips = sum(1 for bit in consts if bit is True)
            ins = [i for i, bit in zip(ins, consts) if bit is None]
            if flips % 2:
                gtype = _INVERSE[gtype]

        if not ins:
            # All inputs were constants.
            neutral = {GateType.AND: True, GateType.NAND: False,
                       GateType.OR: False, GateType.NOR: True,
                       GateType.XOR: False, GateType.XNOR: True}[gtype]
            value[net] = _TRUE if neutral else _FALSE
            continue
        if len(ins) == 1 and gtype in (GateType.AND, GateType.OR):
            value[net] = ins[0]
            continue
        if len(ins) == 1 and gtype in (GateType.NAND, GateType.NOR):
            result.add_gate(net, GateType.NOT, ins)
            continue
        if len(ins) == 1 and gtype is GateType.XOR:
            value[net] = ins[0]
            continue
        if len(ins) == 1 and gtype is GateType.XNOR:
            result.add_gate(net, GateType.NOT, ins)
            continue
        result.add_gate(net, gtype, ins)

    # Re-materialize references to folded nets.
    fixed_gates = []
    for gate in result.gates:
        new_inputs = []
        changed = False
        for src in gate.inputs:
            bit = _const_of(src)
            if bit is not None:
                new_inputs.append(const_net(bit))
                changed = True
            else:
                new_inputs.append(src)
        if changed:
            fixed_gates.append((gate.output, gate.gtype,
                                tuple(new_inputs)))
    for output, gtype, new_inputs in fixed_gates:
        from .netlist import Gate

        result.replace_gate(Gate(output, gtype, new_inputs))

    for net in circuit.outputs:
        target = resolve(net)
        bit = _const_of(target)
        if bit is not None:
            target = const_net(bit)
        if target != net:
            if result.drives(net) or result.is_input(net):
                raise CircuitError("net collision folding %r" % net)
            result.add_gate(net, GateType.BUF, [target])
        result.add_output(net)
    result.validate(allow_free=bool(free))
    return result


def merge_duplicates(circuit: Circuit,
                     name: Optional[str] = None) -> Circuit:
    """Structural hashing: merge gates with identical type and inputs.

    Commutative gate inputs are sorted for matching, and buffers are
    resolved to their sources first, so gates that differ only through
    a BUF chain (``AND(a, b)`` vs ``AND(buf_of_a, b)``) merge too.
    Output nets are preserved via buffers when their driver merges (or
    elides) away.
    """
    result = Circuit(name or circuit.name)
    result.add_inputs(circuit.inputs)
    free = set(circuit.free_nets())
    replacement: Dict[str, str] = {}
    table: Dict[Tuple, str] = {}

    def resolve(net: str) -> str:
        seen = net
        while seen in replacement:
            seen = replacement[seen]
        return seen

    for net in circuit.topological_order():
        gate = circuit.gate(net)
        ins = tuple(resolve(src) for src in gate.inputs)
        if gate.gtype is GateType.BUF:
            # A buffer is the identity: point every reader straight at
            # the source, so duplicates behind buffer chains merge.
            replacement[net] = ins[0]
            continue
        if gate.gtype in (GateType.AND, GateType.OR, GateType.NAND,
                          GateType.NOR, GateType.XOR, GateType.XNOR):
            key = (gate.gtype, tuple(sorted(ins)))
        else:
            key = (gate.gtype, ins)
        existing = table.get(key)
        if existing is not None:
            replacement[net] = existing
            continue
        table[key] = net
        result.add_gate(net, gate.gtype, ins)

    for net in circuit.outputs:
        target = resolve(net)
        if target != net:
            result.add_gate(net, GateType.BUF, [target])
        result.add_output(net)
    result.validate(allow_free=bool(free))
    return result


def sweep_dead(circuit: Circuit, name: Optional[str] = None) -> Circuit:
    """Drop gates that no output (transitively) depends on."""
    live = circuit.cone(circuit.outputs)
    result = Circuit(name or circuit.name)
    result.add_inputs(circuit.inputs)
    for gate in circuit.gates:
        if gate.output in live:
            result.add_gate(gate.output, gate.gtype, gate.inputs)
    result.add_outputs(circuit.outputs)
    result.validate(allow_free=bool(result.free_nets()))
    return result


def optimize(circuit: Circuit, name: Optional[str] = None) -> Circuit:
    """Constant propagation + structural hashing + dead sweep, to a
    fixpoint (bounded)."""
    current = circuit
    for _ in range(4):
        before = current.num_gates
        current = sweep_dead(merge_duplicates(
            propagate_constants(current)))
        if current.num_gates == before:
            break
    if name:
        current.name = name
    return current
