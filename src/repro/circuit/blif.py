"""Reader/writer for a practical subset of Berkeley BLIF.

Supported constructs: ``.model``, ``.inputs``, ``.outputs``, ``.names``
(single-output PLA covers) and ``.end``.  Covers are translated into
AND/OR/NOT netlist structure; sequential elements are out of scope (the
paper is purely combinational).

The reader tracks line numbers: every :class:`CircuitError` names the
offending line, and an optional :class:`~repro.circuit.srcloc.SourceMap`
records net definition sites plus parse events for the linter.  With
``strict=False`` duplicate drivers / re-declared inputs are recorded as
events (keeping the *first* definition) instead of raising.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, \
    Tuple, Union

from .builder import CircuitBuilder
from .gates import GateType
from .netlist import Circuit, CircuitError
from .srcloc import SourceMap

__all__ = ["read_blif", "write_blif", "loads_blif", "dumps_blif"]


def _logical_lines(handle: Iterable[str])\
        -> Iterable[Tuple[int, str]]:
    """Join backslash continuations, strip comments and blanks.

    Yields ``(line_number, text)`` where the number is the first
    physical line of the logical line.
    """
    pending = ""
    pending_start = 0
    for number, raw in enumerate(handle, start=1):
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            if not pending:
                pending_start = number
            pending += line[:-1] + " "
            continue
        start = pending_start if pending else number
        line = (pending + line).strip()
        pending = ""
        if line:
            yield start, line
    if pending.strip():
        yield pending_start, pending.strip()


def _cover_to_gates(builder: CircuitBuilder, output: str,
                    input_nets: Sequence[str],
                    rows: Sequence[Tuple[str, str]]) -> None:
    """Translate one ``.names`` PLA cover into gates driving ``output``."""
    if not rows:
        # Empty cover = constant 0 in BLIF semantics.
        builder.const(False, output)
        return
    out_values = {out for _, out in rows}
    if len(out_values) != 1:
        raise CircuitError("mixed on/off cover for %r" % output)
    on_set = out_values.pop() == "1"
    if not input_nets:
        # Constant: a single row with empty input plane.
        builder.const(on_set, output)
        return

    inverters: Dict[str, str] = {}

    def inv(net: str) -> str:
        if net not in inverters:
            inverters[net] = builder.not_(net)
        return inverters[net]

    products: List[str] = []
    for pattern, _ in rows:
        if len(pattern) != len(input_nets):
            raise CircuitError("cover row %r has wrong width for %r"
                               % (pattern, output))
        literals = []
        for bit, net in zip(pattern, input_nets):
            if bit == "1":
                literals.append(net)
            elif bit == "0":
                literals.append(inv(net))
            elif bit != "-":
                raise CircuitError("bad cover character %r" % bit)
        if literals:
            products.append(literals[0] if len(literals) == 1
                            else builder.and_(*literals))
        else:
            # A row of all don't-cares makes the function constant.
            products = []
            builder.const(on_set, output)
            return
    if on_set:
        if len(products) == 1:
            builder.buf(products[0], output)
        else:
            builder.or_tree(products, output)
    else:
        if len(products) == 1:
            builder.not_(products[0], output)
        else:
            builder.not_(builder.or_tree(products), output)


def loads_blif(text: str, name: Optional[str] = None,
               source_map: Optional[SourceMap] = None,
               strict: bool = True) -> Circuit:
    """Parse BLIF from a string."""
    return read_blif(io.StringIO(text), name=name,
                     source_map=source_map, strict=strict)


def read_blif(source: Union[str, TextIO],
              name: Optional[str] = None,
              source_map: Optional[SourceMap] = None,
              strict: bool = True) -> Circuit:
    """Parse a combinational BLIF model from a path or open file.

    ``strict`` (default) rejects duplicate ``.names`` blocks driving the
    same net, re-declared inputs and covers that shadow an input.  With
    ``strict=False`` those findings are recorded as parse events on
    ``source_map`` (which then must be given) and the first definition
    is kept.
    """
    if isinstance(source, str):
        if source_map is not None and source_map.file is None:
            source_map.file = source
        with open(source) as handle:
            return read_blif(handle, name=name, source_map=source_map,
                             strict=strict)
    if not strict and source_map is None:
        raise ValueError("strict=False requires a source_map to record "
                         "the findings")

    builder = CircuitBuilder(name or "blif")
    outputs: List[str] = []
    covers: List[Tuple[int, str, List[str], List[Tuple[str, str]]]] = []
    current: Optional[Tuple[int, str, List[str],
                            List[Tuple[str, str]]]] = None
    input_lines: Dict[str, int] = {}
    cover_lines: Dict[str, int] = {}

    for lineno, line in _logical_lines(source):
        tokens = line.split()
        head = tokens[0]
        if head == ".model":
            if name is None and len(tokens) > 1:
                builder.circuit.name = tokens[1]
        elif head == ".inputs":
            for net in tokens[1:]:
                if net in input_lines:
                    message = ("duplicate input %r (first declared at "
                               "line %d)" % (net, input_lines[net]))
                    if strict:
                        raise CircuitError("line %d: %s"
                                           % (lineno, message))
                    source_map.record("duplicate-input", message,
                                      line=lineno, nets=(net,))
                    continue
                input_lines[net] = lineno
                builder.input(net)
                if source_map is not None:
                    source_map.define(net, lineno)
        elif head == ".outputs":
            outputs.extend(tokens[1:])
        elif head == ".names":
            output = tokens[-1]
            if output in cover_lines:
                message = ("duplicate .names driver for net %r (first "
                           "defined at line %d)"
                           % (output, cover_lines[output]))
                if strict:
                    raise CircuitError("line %d: %s" % (lineno, message))
                source_map.record("multiply-driven-net", message,
                                  line=lineno, nets=(output,))
                # Swallow the block's rows without building gates.
                current = (lineno, output, tokens[1:-1], [])
                continue
            if output in input_lines:
                message = (".names drives net %r which is a declared "
                           "input (line %d)"
                           % (output, input_lines[output]))
                if strict:
                    raise CircuitError("line %d: %s" % (lineno, message))
                source_map.record("shadowed-input", message,
                                  line=lineno, nets=(output,))
                current = (lineno, output, tokens[1:-1], [])
                continue
            cover_lines[output] = lineno
            current = (lineno, output, tokens[1:-1], [])
            covers.append(current)
            if source_map is not None:
                source_map.define(output, lineno)
        elif head == ".end":
            break
        elif head.startswith("."):
            raise CircuitError("line %d: unsupported BLIF construct %r"
                               % (lineno, head))
        else:
            if current is None:
                raise CircuitError("line %d: cover row outside .names: %r"
                                   % (lineno, line))
            if len(tokens) == 1:
                # Constant row: output plane only.
                current[3].append(("", tokens[0]))
            elif len(tokens) == 2:
                current[3].append((tokens[0], tokens[1]))
            else:
                raise CircuitError("line %d: malformed cover row %r"
                                   % (lineno, line))

    builder.reserve(output for _, output, _, _ in covers)
    for lineno, output, input_nets, rows in covers:
        try:
            _cover_to_gates(builder, output, input_nets, rows)
        except CircuitError as err:
            raise CircuitError("line %d: %s" % (lineno, err)) from None
    for net in outputs:
        if not strict and net in builder.circuit.outputs:
            continue
        builder.circuit.add_output(net)
    circuit = builder.circuit
    if strict:
        # In permissive (lint) mode structural problems — cycles above
        # all — are left for the linter to report with full context.
        circuit.validate(allow_free=True)
    return circuit


def _format_gate_cover(gate_type: GateType, arity: int) -> List[str]:
    """PLA rows implementing a gate type over ``arity`` inputs."""
    if gate_type is GateType.AND:
        return ["1" * arity + " 1"]
    if gate_type is GateType.NAND:
        return ["1" * arity + " 0"]
    if gate_type is GateType.OR:
        return ["-" * i + "1" + "-" * (arity - i - 1) + " 1"
                for i in range(arity)]
    if gate_type is GateType.NOR:
        return ["0" * arity + " 1"]
    if gate_type in (GateType.XOR, GateType.XNOR):
        want = 1 if gate_type is GateType.XOR else 0
        rows = []
        for m in range(1 << arity):
            bits = [(m >> i) & 1 for i in range(arity)]
            if sum(bits) % 2 == want:
                rows.append("".join(str(b) for b in bits) + " 1")
        return rows
    if gate_type is GateType.NOT:
        return ["0 1"]
    if gate_type is GateType.BUF:
        return ["1 1"]
    if gate_type is GateType.CONST1:
        return ["1"]
    if gate_type is GateType.CONST0:
        return []
    raise CircuitError("cannot express %s in BLIF" % gate_type)


def dumps_blif(circuit: Circuit) -> str:
    """Serialize a circuit to BLIF text.

    NAND/NOR covers use off-set rows where convenient; XOR gates expand
    to minterm covers, so keep their fan-in small when round-tripping.
    """
    out = ["# generated by repro", ".model %s" % circuit.name]
    out.append(".inputs %s" % " ".join(
        circuit.inputs + circuit.free_nets()))
    out.append(".outputs %s" % " ".join(circuit.outputs))
    for gate in circuit.gates:
        out.append(".names %s" % " ".join(list(gate.inputs)
                                          + [gate.output]))
        out.extend(_format_gate_cover(gate.gtype, len(gate.inputs)))
    out.append(".end")
    return "\n".join(out) + "\n"


def write_blif(circuit: Circuit, path: str) -> None:
    """Write a circuit to a BLIF file."""
    with open(path, "w") as handle:
        handle.write(dumps_blif(circuit))
