"""Reader/writer for the ISCAS-85/89 ``.bench`` netlist format.

The format used to distribute the C-series circuits the paper evaluates
on (C499, C880, C1355, C1908)::

    INPUT(x1)
    OUTPUT(f)
    g1 = AND(x1, x2)
    f  = NOT(g1)
"""

from __future__ import annotations

import io
import re
from typing import Dict, Optional, TextIO, Union

from .gates import GateType
from .netlist import Circuit, CircuitError
from .srcloc import SourceMap

__all__ = ["read_bench", "write_bench", "loads_bench", "dumps_bench"]

_GATE_NAMES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
}

_LINE_RE = re.compile(
    r"^\s*(?:(?P<port>INPUT|OUTPUT)\s*\(\s*(?P<pname>[^)\s]+)\s*\)"
    r"|(?P<out>\S+)\s*=\s*(?P<gate>[A-Za-z]+)\s*\(\s*(?P<args>[^)]*)\)"
    r")\s*$")


def loads_bench(text: str, name: Optional[str] = None,
                source_map: Optional[SourceMap] = None,
                strict: bool = True) -> Circuit:
    """Parse ``.bench`` text from a string."""
    return read_bench(io.StringIO(text), name=name,
                      source_map=source_map, strict=strict)


def read_bench(source: Union[str, TextIO],
               name: Optional[str] = None,
               source_map: Optional[SourceMap] = None,
               strict: bool = True) -> Circuit:
    """Parse a ``.bench`` netlist from a path or open file.

    ``strict`` (default) rejects duplicate gate definitions, re-declared
    inputs and gates shadowing an input, with line context in the error;
    with ``strict=False`` such findings are recorded as parse events on
    ``source_map`` (required in that mode) and the first definition is
    kept.
    """
    if isinstance(source, str):
        if source_map is not None and source_map.file is None:
            source_map.file = source
        with open(source) as handle:
            return read_bench(handle, name=name or source,
                              source_map=source_map, strict=strict)
    if not strict and source_map is None:
        raise ValueError("strict=False requires a source_map to record "
                         "the findings")

    circuit = Circuit(name or "bench")
    outputs = []
    input_lines: Dict[str, int] = {}
    gate_lines: Dict[str, int] = {}
    for lineno, raw in enumerate(source, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if not match:
            raise CircuitError("line %d: cannot parse bench line: %r"
                               % (lineno, line))
        if match.group("port"):
            net = match.group("pname")
            if match.group("port") == "INPUT":
                if net in input_lines:
                    message = ("duplicate INPUT(%s) (first declared at "
                               "line %d)" % (net, input_lines[net]))
                    if strict:
                        raise CircuitError("line %d: %s"
                                           % (lineno, message))
                    source_map.record("duplicate-input", message,
                                      line=lineno, nets=(net,))
                    continue
                input_lines[net] = lineno
                circuit.add_input(net)
                if source_map is not None:
                    source_map.define(net, lineno)
            else:
                outputs.append(net)
        else:
            out = match.group("out")
            gate_name = match.group("gate").upper()
            try:
                gtype = _GATE_NAMES[gate_name]
            except KeyError:
                raise CircuitError(
                    "line %d: unknown bench gate %r"
                    % (lineno, gate_name)) from None
            args = [a.strip() for a in match.group("args").split(",")
                    if a.strip()]
            if out in gate_lines:
                message = ("net %r is driven twice (first definition at "
                           "line %d)" % (out, gate_lines[out]))
                if strict:
                    raise CircuitError("line %d: %s" % (lineno, message))
                source_map.record("multiply-driven-net", message,
                                  line=lineno, nets=(out,))
                continue
            if out in input_lines:
                message = ("gate drives net %r which is a declared "
                           "INPUT (line %d)" % (out, input_lines[out]))
                if strict:
                    raise CircuitError("line %d: %s" % (lineno, message))
                source_map.record("shadowed-input", message,
                                  line=lineno, nets=(out,))
                continue
            gate_lines[out] = lineno
            try:
                circuit.add_gate(out, gtype, args)
            except CircuitError as err:
                raise CircuitError("line %d: %s" % (lineno, err)) \
                    from None
            if source_map is not None:
                source_map.define(out, lineno)
    for net in outputs:
        if not strict and net in circuit.outputs:
            continue
        circuit.add_output(net)
    if strict:
        # In permissive (lint) mode structural problems — cycles above
        # all — are left for the linter to report with full context.
        circuit.validate(allow_free=True)
    return circuit


def dumps_bench(circuit: Circuit) -> str:
    """Serialize a circuit to ``.bench`` text.

    Constant gates have no bench equivalent and are rejected; free nets
    (Black Box outputs) are emitted as extra ``INPUT`` declarations with a
    marker comment, which keeps the file loadable by standard tools.
    """
    lines = ["# %s" % circuit.name, "# generated by repro"]
    for net in circuit.inputs:
        lines.append("INPUT(%s)" % net)
    free = circuit.free_nets()
    if free:
        lines.append("# the following inputs are Black Box outputs")
        for net in free:
            lines.append("INPUT(%s)" % net)
    for net in circuit.outputs:
        lines.append("OUTPUT(%s)" % net)
    name_of = {v: k for k, v in _GATE_NAMES.items() if k not in
               ("INV", "BUFF")}
    for gate in circuit.gates:
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            raise CircuitError(
                "bench format cannot express constant gate %r"
                % gate.output)
        lines.append("%s = %s(%s)" % (
            gate.output, name_of[gate.gtype], ", ".join(gate.inputs)))
    return "\n".join(lines) + "\n"


def write_bench(circuit: Circuit, path: str) -> None:
    """Write a circuit to a ``.bench`` file."""
    with open(path, "w") as handle:
        handle.write(dumps_bench(circuit))
