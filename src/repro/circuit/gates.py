"""Gate types of the combinational netlist model.

All gates except ``NOT``/``BUF``/constants are n-ary (n >= 1); ``XOR`` of
many inputs is parity, ``XNOR`` its complement, matching common netlist
semantics (BLIF, ISCAS-85 bench format).
"""

from __future__ import annotations

import enum
from typing import Sequence

__all__ = ["GateType", "eval_gate", "INVERTIBLE", "VARIADIC"]


class GateType(enum.Enum):
    """Supported combinational gate functions."""

    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    NOT = "not"
    BUF = "buf"
    CONST0 = "const0"
    CONST1 = "const1"

    def arity_ok(self, n: int) -> bool:
        """Whether this gate type accepts ``n`` inputs."""
        if self in (GateType.CONST0, GateType.CONST1):
            return n == 0
        if self in (GateType.NOT, GateType.BUF):
            return n == 1
        return n >= 1

    @property
    def dual(self) -> "GateType":
        """The AND<->OR / NAND<->NOR dual (used by error insertion)."""
        pairs = {
            GateType.AND: GateType.OR,
            GateType.OR: GateType.AND,
            GateType.NAND: GateType.NOR,
            GateType.NOR: GateType.NAND,
            GateType.XOR: GateType.XNOR,
            GateType.XNOR: GateType.XOR,
        }
        if self not in pairs:
            raise ValueError("%s has no dual" % self)
        return pairs[self]


#: Gate types whose output is the complement of another type's.
INVERTIBLE = {
    GateType.AND: GateType.NAND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.NOR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.NOT: GateType.BUF,
    GateType.BUF: GateType.NOT,
    GateType.CONST0: GateType.CONST1,
    GateType.CONST1: GateType.CONST0,
}

#: Gate types that accept any number (>= 1) of inputs.
VARIADIC = {GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
            GateType.XOR, GateType.XNOR}


def eval_gate(gtype: GateType, inputs: Sequence[bool]) -> bool:
    """Boolean gate evaluation (the two-valued reference semantics)."""
    if gtype is GateType.AND:
        return all(inputs)
    if gtype is GateType.OR:
        return any(inputs)
    if gtype is GateType.NAND:
        return not all(inputs)
    if gtype is GateType.NOR:
        return not any(inputs)
    if gtype is GateType.XOR:
        return sum(inputs) % 2 == 1
    if gtype is GateType.XNOR:
        return sum(inputs) % 2 == 0
    if gtype is GateType.NOT:
        return not inputs[0]
    if gtype is GateType.BUF:
        return bool(inputs[0])
    if gtype is GateType.CONST0:
        return False
    if gtype is GateType.CONST1:
        return True
    raise ValueError("unknown gate type %r" % gtype)
