"""Source-location tracking for the text netlist parsers.

A :class:`SourceMap` records, for each net, the line of the construct
that defined it, plus *parse events* — findings (duplicate drivers,
re-declared inputs, shadowed names) the parsers notice while reading a
file.  The linter (:mod:`repro.analysis.lint`) turns parse events into
:class:`~repro.analysis.diagnostics.Diagnostic` records with file/line
context; the circuit layer itself stays free of any analysis dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ParseEvent", "SourceMap"]


@dataclass(frozen=True)
class ParseEvent:
    """One parser-level finding, in linter rule vocabulary.

    ``rule`` is the *name* of a lint rule (e.g. ``"multiply-driven-net"``,
    ``"duplicate-input"``, ``"shadowed-input"``); the analysis layer maps
    it to the full rule record with id and severity.
    """

    rule: str
    message: str
    line: Optional[int] = None
    nets: Tuple[str, ...] = ()


@dataclass
class SourceMap:
    """Net definition lines and parse events for one parsed file."""

    file: Optional[str] = None
    net_lines: Dict[str, int] = field(default_factory=dict)
    events: List[ParseEvent] = field(default_factory=list)

    def define(self, net: str, line: int) -> None:
        """Record the defining line of ``net`` (first definition wins)."""
        self.net_lines.setdefault(net, line)

    def line_of(self, net: str) -> Optional[int]:
        """Line where ``net`` was defined, if known."""
        return self.net_lines.get(net)

    def record(self, rule: str, message: str, line: Optional[int] = None,
               nets: Tuple[str, ...] = ()) -> None:
        """Append a parse event."""
        self.events.append(ParseEvent(rule, message, line, tuple(nets)))

    def __repr__(self) -> str:
        return "<SourceMap %s: %d nets, %d events>" % (
            self.file or "<string>", len(self.net_lines), len(self.events))
