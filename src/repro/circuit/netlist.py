"""Combinational gate-level netlist.

A :class:`Circuit` is a DAG of named nets.  Every net is driven either by
a primary input, by a gate, or — in partial implementations — by a Black
Box output declared as a *free net* (see :mod:`repro.partial.blackbox`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .gates import GateType, eval_gate

__all__ = ["Gate", "Circuit", "CircuitError", "CombinationalCycleError"]


class CircuitError(ValueError):
    """Structural problem in a netlist (cycle, undriven net, ...)."""


class CombinationalCycleError(CircuitError):
    """A combinational feedback loop, with the full cycle as witness.

    ``cycle`` lists the gate-output nets along the loop, first net
    repeated at the end: ``["a", "b", "c", "a"]``.
    """

    def __init__(self, cycle: Sequence[str]) -> None:
        self.cycle: List[str] = list(cycle)
        super().__init__("combinational cycle: %s"
                         % " -> ".join(self.cycle))


@dataclass(frozen=True)
class Gate:
    """One gate instance: ``output = gtype(inputs...)``."""

    output: str
    gtype: GateType
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.gtype.arity_ok(len(self.inputs)):
            raise CircuitError(
                "%s gate %r cannot take %d inputs"
                % (self.gtype.name, self.output, len(self.inputs)))


class Circuit:
    """A named combinational netlist with ordered inputs and outputs.

    Nets are identified by strings.  ``free_nets`` are nets read by gates
    but driven neither by an input nor by a gate — the representation of
    Black Box outputs in a partial implementation.  A complete circuit has
    no free nets.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._inputs: List[str] = []
        self._input_set: Set[str] = set()
        self._outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}
        self._topo_cache: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input net."""
        if name in self._input_set:
            raise CircuitError("duplicate input %r" % name)
        if name in self._gates:
            raise CircuitError("net %r is already driven by a gate" % name)
        self._inputs.append(name)
        self._input_set.add(name)
        return name

    def add_inputs(self, names: Iterable[str]) -> List[str]:
        """Declare several primary inputs in order."""
        return [self.add_input(n) for n in names]

    def add_gate(self, output: str, gtype: GateType,
                 inputs: Sequence[str]) -> str:
        """Add a gate driving net ``output``; returns the net name."""
        if output in self._gates:
            raise CircuitError("net %r is already driven by a gate" % output)
        if output in self._input_set:
            raise CircuitError("net %r is a primary input" % output)
        self._gates[output] = Gate(output, gtype, tuple(inputs))
        self._topo_cache = None
        return output

    def remove_gate(self, output: str) -> Gate:
        """Remove the gate driving ``output``; the net becomes free."""
        try:
            gate = self._gates.pop(output)
        except KeyError:
            raise CircuitError("no gate drives %r" % output) from None
        self._topo_cache = None
        return gate

    def replace_gate(self, gate: Gate) -> None:
        """Swap in a new gate for an existing driven net (mutations)."""
        if gate.output not in self._gates:
            raise CircuitError("no gate drives %r" % gate.output)
        self._gates[gate.output] = gate
        self._topo_cache = None

    def add_output(self, name: str) -> str:
        """Mark a net as primary output (may be any net, even an input)."""
        if name in self._outputs:
            raise CircuitError("duplicate output %r" % name)
        self._outputs.append(name)
        return name

    def add_outputs(self, names: Iterable[str]) -> List[str]:
        """Mark several nets as outputs in order."""
        return [self.add_output(n) for n in names]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def inputs(self) -> List[str]:
        """Primary input nets, in declaration order."""
        return list(self._inputs)

    @property
    def outputs(self) -> List[str]:
        """Primary output nets, in declaration order."""
        return list(self._outputs)

    @property
    def gates(self) -> List[Gate]:
        """All gates, in insertion order."""
        return list(self._gates.values())

    @property
    def num_gates(self) -> int:
        """Number of gates."""
        return len(self._gates)

    def gate(self, output: str) -> Gate:
        """The gate driving net ``output``."""
        try:
            return self._gates[output]
        except KeyError:
            raise CircuitError("no gate drives %r" % output) from None

    def is_input(self, net: str) -> bool:
        """Whether ``net`` is a primary input."""
        return net in self._input_set

    def drives(self, net: str) -> bool:
        """Whether some gate drives ``net``."""
        return net in self._gates

    def nets(self) -> List[str]:
        """All driven nets: inputs first, then gate outputs."""
        return self._inputs + list(self._gates)

    def free_nets(self) -> List[str]:
        """Nets that are read but driven by nothing (Black Box outputs)."""
        driven = self._input_set.union(self._gates)
        seen: Set[str] = set()
        free: List[str] = []
        for gate in self._gates.values():
            for net in gate.inputs:
                if net not in driven and net not in seen:
                    seen.add(net)
                    free.append(net)
        for net in self._outputs:
            if net not in driven and net not in seen:
                seen.add(net)
                free.append(net)
        return free

    def fanout_map(self) -> Dict[str, List[str]]:
        """Map from each net to the gate-output nets that read it."""
        fanout: Dict[str, List[str]] = {}
        for gate in self._gates.values():
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate.output)
        return fanout

    # ------------------------------------------------------------------
    # Topological structure
    # ------------------------------------------------------------------

    def topological_order(self) -> List[str]:
        """Gate output nets in topological order (inputs excluded).

        Raises :class:`CombinationalCycleError` (a :class:`CircuitError`)
        on combinational cycles, with the full cycle path as witness.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        order: List[str] = []
        state: Dict[str, int] = {}  # 1 = visiting, 2 = done
        for root in self._gates:
            if state.get(root):
                continue
            stack: List[Tuple[str, bool]] = [(root, False)]
            while stack:
                net, done = stack.pop()
                if done:
                    state[net] = 2
                    order.append(net)
                    continue
                st = state.get(net, 0)
                if st == 2:
                    continue
                if st == 1:
                    self._raise_cycle(net)
                state[net] = 1
                stack.append((net, True))
                for src in self._gates[net].inputs:
                    if src in self._gates and state.get(src, 0) != 2:
                        if state.get(src, 0) == 1:
                            self._raise_cycle(src)
                        stack.append((src, False))
        self._topo_cache = order
        return list(order)

    def _raise_cycle(self, net: str) -> None:
        """Raise with the actual cycle through ``net`` as witness."""
        cycle = self.find_cycle()
        if cycle is None:  # pragma: no cover - detector disagreement
            raise CircuitError("combinational cycle through %r" % net)
        raise CombinationalCycleError(cycle)

    def find_cycle(self) -> Optional[List[str]]:
        """One combinational cycle as a closed net path, or ``None``.

        Returns e.g. ``["a", "b", "c", "a"]`` where each gate reads the
        next net in the list as one of its fanins (fan-in direction),
        and the first net closes the loop.  Runs one O(V+E) DFS;
        :meth:`topological_order` calls this only on failure.
        """
        if self._topo_cache is not None:
            return None
        state: Dict[str, int] = {}  # 1 = on current path, 2 = done
        for root in self._gates:
            if state.get(root):
                continue
            # DFS with an explicit path so the cycle can be read off.
            path: List[str] = []
            iters = []
            state[root] = 1
            path.append(root)
            iters.append(iter(self._gates[root].inputs))
            while path:
                try:
                    src = next(iters[-1])
                except StopIteration:
                    done = path.pop()
                    iters.pop()
                    state[done] = 2
                    continue
                if src not in self._gates:
                    continue
                st = state.get(src, 0)
                if st == 1:
                    start = path.index(src)
                    return path[start:] + [src]
                if st == 0:
                    state[src] = 1
                    path.append(src)
                    iters.append(iter(self._gates[src].inputs))
        return None

    def levelize(self) -> Dict[str, int]:
        """Logic depth of each net (inputs and free nets at level 0)."""
        levels: Dict[str, int] = {net: 0 for net in self._inputs}
        for net in self.free_nets():
            levels[net] = 0
        for net in self.topological_order():
            gate = self._gates[net]
            levels[net] = 1 + max(
                (levels.get(src, 0) for src in gate.inputs), default=0)
        return levels

    def depth(self) -> int:
        """Maximum logic depth over all nets."""
        levels = self.levelize()
        return max(levels.values(), default=0)

    def cone(self, roots: Iterable[str]) -> Set[str]:
        """Transitive fan-in of ``roots``: every net they depend on."""
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            gate = self._gates.get(net)
            if gate is not None:
                stack.extend(gate.inputs)
        return seen

    def validate(self, allow_free: bool = False) -> None:
        """Check structural sanity; complete circuits have no free nets.

        Delegates to the error rules of :mod:`repro.analysis.lint` (the
        fast, errors-only profile) and raises :class:`CircuitError` on
        the first finding.  For the full rule set — including warnings
        like dead or degenerate gates — call
        :func:`repro.analysis.lint.lint_circuit` directly.
        """
        # Imported lazily: analysis sits above the circuit layer.
        from ..analysis.lint import structural_errors

        problems = structural_errors(self, allow_free=allow_free)
        if problems:
            if problems[0].rule.name == "combinational-cycle":
                raise CombinationalCycleError(problems[0].nets)
            raise CircuitError("; ".join(d.message for d in problems))

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def evaluate(self, assignment: Dict[str, bool],
                 all_nets: bool = False) -> Dict[str, bool]:
        """Two-valued simulation under a total input assignment.

        ``assignment`` must cover all primary inputs and all free nets.
        Returns output values, or every net's value if ``all_nets``.
        """
        values: Dict[str, bool] = {}
        for net in self._inputs:
            try:
                values[net] = bool(assignment[net])
            except KeyError:
                raise CircuitError("missing input value %r" % net) from None
        for net in self.free_nets():
            try:
                values[net] = bool(assignment[net])
            except KeyError:
                raise CircuitError(
                    "missing value for free net %r" % net) from None
        for net in self.topological_order():
            gate = self._gates[net]
            values[net] = eval_gate(
                gate.gtype, [values[src] for src in gate.inputs])
        if all_nets:
            return values
        return {net: values[net] for net in self._outputs}

    def evaluate_vector(self, bits: Sequence[bool]) -> List[bool]:
        """Evaluate with inputs given positionally; returns output bits."""
        if len(bits) != len(self._inputs):
            raise CircuitError("expected %d input bits, got %d"
                               % (len(self._inputs), len(bits)))
        out = self.evaluate(dict(zip(self._inputs, bits)))
        return [out[net] for net in self._outputs]

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep copy (gates are immutable and shared)."""
        other = Circuit(name or self.name)
        other._inputs = list(self._inputs)
        other._input_set = set(self._input_set)
        other._outputs = list(self._outputs)
        other._gates = dict(self._gates)
        return other

    def with_input_order(self, order: Sequence[str],
                         name: Optional[str] = None) -> "Circuit":
        """Copy with the primary inputs re-declared in ``order``.

        Purely an interface permutation — gate structure and semantics
        are untouched.  Useful because symbolic engines declare BDD
        variables in input-declaration order, so a good order (e.g. one
        found by sifting) can be baked into the circuit.
        """
        if sorted(order) != sorted(self._inputs):
            raise CircuitError(
                "order must be a permutation of the inputs")
        other = self.copy(name)
        other._inputs = list(order)
        return other

    def renamed(self, mapping: Dict[str, str],
                name: Optional[str] = None) -> "Circuit":
        """Copy with nets renamed via ``mapping`` (identity if absent)."""

        def m(net: str) -> str:
            return mapping.get(net, net)

        other = Circuit(name or self.name)
        other.add_inputs(m(n) for n in self._inputs)
        for gate in self._gates.values():
            other.add_gate(m(gate.output), gate.gtype,
                           [m(s) for s in gate.inputs])
        other.add_outputs(m(n) for n in self._outputs)
        return other

    def stats(self) -> Dict[str, int]:
        """Size summary used in experiment reports."""
        by_type: Dict[str, int] = {}
        for gate in self._gates.values():
            by_type[gate.gtype.name] = by_type.get(gate.gtype.name, 0) + 1
        return {
            "inputs": len(self._inputs),
            "outputs": len(self._outputs),
            "gates": len(self._gates),
            "depth": self.depth(),
            **{"gates_" + k.lower(): v for k, v in sorted(by_type.items())},
        }

    def __repr__(self) -> str:
        return "<Circuit %s: %d in, %d out, %d gates>" % (
            self.name, len(self._inputs), len(self._outputs),
            len(self._gates))
