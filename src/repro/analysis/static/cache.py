"""Content-addressed on-disk cache for check verdicts ("rung 0").

Entries are keyed by SHA-256 over::

    (cache format version,
     spec interface digest,   # canonical cone hashes, see .hashing
     impl interface digest,   # includes the Black Box interfaces
     check level,             # "random_pattern", "ie", ...
     budget class,            # node limit + soft timeout, canonical
     patterns, seed,          # random-pattern checks only
     variant)                 # e.g. "preflight" when the pair was
                              # statically restricted first

and the payload is the stored verdict dict, replayed *exactly* on a
hit (including its measured ``seconds`` and manager counters), so
warm-cache aggregation is byte-identical to the cold run that filled
the cache.

Invalidation is purely content-addressed: there is none to manage.
Renaming nets, reordering gate declarations or re-running an identical
campaign hits; any semantic change to a cone changes its hash and
misses.  Bumping :data:`CACHE_VERSION` (a key ingredient) retires
every existing entry when the canonicalization or payload format
changes.  Entries are one JSON file each under a two-level fan-out
directory; writes go through a temp file + :func:`os.replace`, so
concurrent workers (and concurrent campaigns) can share a cache
directory — last atomic write wins, and every candidate payload for a
key is identical by construction.

A cache must never fail a check: unreadable/corrupt entries count as
misses, failed writes are dropped silently.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

__all__ = ["CACHE_VERSION", "CheckCache", "budget_class"]

#: Bump to retire all existing entries (key scheme / payload change).
CACHE_VERSION = 1


def budget_class(node_limit: Optional[int] = None,
                 soft_timeout: Optional[float] = None) -> str:
    """Canonical text form of a resource-budget configuration.

    Part of every cache key: a verdict reached under one budget is not
    replayed under another (a bigger node ceiling may turn an
    inconclusive into a definite verdict).  ``repr`` for the float so
    the class survives JSON round trips unchanged.
    """
    return "nodes=%s;soft=%s" % (
        node_limit,
        repr(soft_timeout) if soft_timeout is not None else None)


class CheckCache:
    """Content-addressed store of check verdicts on disk.

    ``hits``/``misses``/``stores`` count this instance's traffic; the
    callers (ladder, campaign worker) surface them through stats and
    :mod:`repro.obs` events.
    """

    def __init__(self, root: str):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stores = 0
        os.makedirs(root, exist_ok=True)

    # -- keys ----------------------------------------------------------

    def key(self, spec_digest: str, impl_digest: str, check: str,
            budget: str = "", patterns: Optional[int] = None,
            seed: Optional[int] = None, variant: str = "") -> str:
        """The content address of one (pair, check, budget) verdict."""
        material = "\x1f".join([
            "v%d" % CACHE_VERSION, spec_digest, impl_digest, check,
            budget, str(patterns), str(seed), variant])
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> str:
        """On-disk location of a key's entry."""
        return os.path.join(self.root, key[:2], key + ".json")

    # -- traffic -------------------------------------------------------

    def get(self, key: str) -> Optional[Dict]:
        """The stored payload, or ``None`` (counted as hit/miss)."""
        try:
            with open(self.path_for(key), "r", encoding="utf-8")\
                    as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict) -> None:
        """Store a payload atomically; failures are silent (a full or
        read-only cache directory must never fail the check)."""
        path = self.path_for(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w", encoding="utf-8", dir=os.path.dirname(path),
                prefix=".tmp-", suffix=".json", delete=False)
            try:
                with handle:
                    json.dump(payload, handle, sort_keys=True,
                              separators=(",", ":"))
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.stores += 1

    def stats(self) -> Dict[str, int]:
        """Traffic counters of this instance."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}

    # -- housekeeping --------------------------------------------------

    def _entries(self):
        """Yield ``(path, size, atime)`` for every entry on disk.

        Unstat-able files (concurrently pruned by another process) are
        skipped — housekeeping has the same never-fail contract as
        traffic.
        """
        try:
            fanouts = sorted(os.listdir(self.root))
        except OSError:
            return
        for fanout in fanouts:
            subdir = os.path.join(self.root, fanout)
            try:
                names = sorted(os.listdir(subdir))
            except (OSError, NotADirectoryError):
                continue
            for name in names:
                if not name.endswith(".json") \
                        or name.startswith(".tmp-"):
                    continue
                path = os.path.join(subdir, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                yield path, info.st_size, info.st_atime

    def info(self) -> Dict[str, int]:
        """On-disk footprint: entry count and total payload bytes."""
        entries = 0
        total = 0
        for _path, size, _atime in self._entries():
            entries += 1
            total += size
        return {"entries": entries, "bytes": total}

    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used entries until the cache fits.

        Eviction order is oldest access time first (``atime``; falls
        back to mtime semantics on ``noatime`` mounts, which still
        orders by write age).  Deleting an entry another process is
        reading is safe — the reader counts it as a miss and re-checks.
        Returns ``{"removed", "removed_bytes", "entries", "bytes"}``
        describing what was evicted and what remains.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries = list(self._entries())
        total = sum(size for _p, size, _a in entries)
        removed = 0
        removed_bytes = 0
        entries.sort(key=lambda entry: (entry[2], entry[0]))
        for path, size, _atime in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
            removed_bytes += size
        return {"removed": removed, "removed_bytes": removed_bytes,
                "entries": len(entries) - removed, "bytes": total}

    def __repr__(self) -> str:
        return "<CheckCache %s: %d hits, %d misses, %d stores>" % (
            self.root, self.hits, self.misses, self.stores)
