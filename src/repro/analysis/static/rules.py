"""The S-rule lint family: findings from the static cone analysis.

These rules need the canonical cone hashes (and, for partial
implementations, the box observability analysis), so they live here
rather than in :mod:`repro.analysis.lint`; they report through the
same :mod:`repro.analysis.diagnostics` machinery and are documented in
the rule catalog (``docs/linting.md``).  They are opt-in — plain
``lint_circuit``/``lint_partial`` and the diagnostics the check ladder
attaches are unchanged — via :func:`lint_static`, the ``--static``
flag of the lint CLI, or the static-analysis CI job.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Union

from ...circuit.netlist import Circuit
from ...partial.blackbox import BlackBox, PartialImplementation
from ..diagnostics import LintReport
from .hashing import cone_hashes
from .preflight import _reach

__all__ = ["lint_static"]


def lint_static(target: Union[Circuit, PartialImplementation],
                boxes: Sequence[BlackBox] = (),
                file: Optional[str] = None) -> LintReport:
    """Static-analysis lint pass over a circuit or partial.

    Emits the S-rule family:

    * ``S001`` *constant-output* — a primary output whose cone folds
      to a constant (suspicious in a specification, and it makes every
      check against it trivial).
    * ``S002`` *duplicate-output-cone* — two primary outputs with the
      same canonical cone hash compute the same function.
    * ``S003`` *unobservable-box* — a Black Box none of whose outputs
      reaches any primary output cone: it cannot influence any
      verdict, so checking proves nothing about it.
    """
    if isinstance(target, PartialImplementation):
        circuit = target.circuit
        boxes = target.boxes
    else:
        circuit = target
    report = LintReport()
    hashes = cone_hashes(circuit, boxes)

    seen_const: Set[str] = set()
    for net, constant in zip(hashes.outputs, hashes.constants):
        if constant is None or net in seen_const:
            continue
        seen_const.add(net)
        report.add("constant-output",
                   "primary output %r is constant %d" % (net, constant),
                   nets=[net],
                   hint="a constant output makes every equivalence "
                        "check against it trivial; check the cone's "
                        "logic", file=file)

    groups: Dict[str, List[str]] = {}
    for net, digest in zip(hashes.outputs, hashes.hashes):
        group = groups.setdefault(digest, [])
        if net not in group:
            group.append(net)
    for nets in groups.values():
        if len(nets) > 1:
            report.add("duplicate-output-cone",
                       "outputs %s have structurally identical cones"
                       % ", ".join(repr(n) for n in nets),
                       nets=nets,
                       hint="they compute the same function; one cone "
                            "(or the duplication) may be unintended",
                       file=file)

    if boxes:
        owner: Dict[str, BlackBox] = {}
        for box in boxes:
            for net in box.outputs:
                owner[net] = box
        observed: Set[str] = set()
        for net in circuit.outputs:
            observed.update(_reach(circuit, owner, net)[1])
        for box in boxes:
            if box.name not in observed:
                report.add("unobservable-box",
                           "no output of Black Box %r reaches a "
                           "primary output" % box.name,
                           nets=list(box.outputs),
                           hint="the box cannot influence any check "
                                "verdict; its cone is dead logic",
                           file=file)
    return report
