"""Static preflight: decide or shrink checks before any BDD exists.

The preflight combines three cheap structural analyses over a
(specification, partial implementation) pair:

1. **Canonical cone hashing** (:mod:`.hashing`) — a box-free
   implementation cone with the same hash as its specification cone is
   functionally identical, so the output is *discharged*: every check
   of the ladder would accept it, under every Black Box substitution.
2. **Ternary abstract interpretation** — 0,1,X constant propagation
   with every primary input and every Black Box output set to ``X``
   (:func:`repro.sim.ternary.simulate_ternary`).  An output that is
   definite under all-``X`` inputs is a constant function; two definite
   constants that differ are a counterexample valid for *every* box
   substitution and *every* input vector.
3. **Support/observability analysis** — which primary inputs and which
   Black Boxes each implementation cone depends on.  An output whose
   cone reaches no box is independent of the unknowns (``X``-free):
   when its hash still differs from the spec's, a plain miter — the
   cheap symbolic 0,1,X rung — decides it exactly.  A box reached by
   no output cone is *unobservable*: it cannot influence any verdict.

Per output the verdict is one of:

``equivalent``
    statically discharged (hash-equal box-free cone, or equal
    constants); sound to drop from every check.
``mismatch``
    both cones are definite constants and they differ; the report
    carries a concrete counterexample (any input vector works).
``miter``
    the cone is box-free but hashes differently; route it to the
    cheap miter instead of the expensive exact rungs.
``open``
    the cone depends on at least one Black Box; the ladder must
    decide it.

All of this is linear-ish in circuit size and never builds a BDD.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...circuit.netlist import Circuit
from ...partial.blackbox import BlackBox, PartialImplementation
from ...sim.logic3 import ONE, X, ZERO
from ...sim.ternary import simulate_ternary
from .hashing import ConeHashes, cone_hashes

__all__ = ["STATUS_EQUIVALENT", "STATUS_MISMATCH", "STATUS_MITER",
           "STATUS_OPEN", "OutputVerdict", "PreflightReport",
           "preflight", "restrict_to_outputs"]

STATUS_EQUIVALENT = "equivalent"
STATUS_MISMATCH = "mismatch"
STATUS_MITER = "miter"
STATUS_OPEN = "open"


@dataclass(frozen=True)
class OutputVerdict:
    """Static classification of one output position."""

    index: int
    spec_output: str
    impl_output: str
    status: str
    reason: str
    spec_hash: str
    impl_hash: str
    #: Constant value of the cone when statically certain, else None.
    spec_constant: Optional[bool]
    impl_constant: Optional[bool]
    #: Primary inputs the implementation cone depends on.
    support: Tuple[str, ...]
    #: Black Boxes the implementation cone depends on.
    boxes: Tuple[str, ...]


@dataclass(frozen=True)
class PreflightReport:
    """Everything the preflight learned about one (spec, partial) pair."""

    spec_hashes: ConeHashes
    impl_hashes: ConeHashes
    verdicts: Tuple[OutputVerdict, ...]
    #: Boxes no output cone depends on: they cannot influence any
    #: verdict (reported as lint rule S003 by :mod:`.rules`).
    unobservable_boxes: Tuple[str, ...]
    #: Concrete witness for the first ``mismatch`` verdict (any input
    #: vector works for a constant mismatch; this one is all-False).
    counterexample: Optional[Dict[str, bool]]
    failing_output: Optional[str]
    seconds: float

    @property
    def mismatch(self) -> Optional[OutputVerdict]:
        """The first statically-proven error, if any."""
        for verdict in self.verdicts:
            if verdict.status == STATUS_MISMATCH:
                return verdict
        return None

    @property
    def discharged(self) -> Tuple[int, ...]:
        """Indices of statically discharged (equivalent) outputs."""
        return tuple(v.index for v in self.verdicts
                     if v.status == STATUS_EQUIVALENT)

    @property
    def open_indices(self) -> Tuple[int, ...]:
        """Indices the ladder still has to decide (incl. miter routes)."""
        return tuple(v.index for v in self.verdicts
                     if v.status in (STATUS_MITER, STATUS_OPEN))

    @property
    def miter_indices(self) -> Tuple[int, ...]:
        """Box-free outputs a plain miter decides exactly."""
        return tuple(v.index for v in self.verdicts
                     if v.status == STATUS_MITER)

    @property
    def all_discharged(self) -> bool:
        """True when every output is statically equivalent."""
        return all(v.status == STATUS_EQUIVALENT for v in self.verdicts)

    @property
    def box_free(self) -> bool:
        """True when no output cone depends on any Black Box: the
        symbolic 0,1,X rung is then an exact miter for the pair."""
        return all(not v.boxes for v in self.verdicts)

    def summary(self) -> Dict[str, int]:
        """Counters for stats/obs annotations."""
        return {
            "outputs": len(self.verdicts),
            "discharged": len(self.discharged),
            "mismatches": sum(1 for v in self.verdicts
                              if v.status == STATUS_MISMATCH),
            "miter_routed": len(self.miter_indices),
            "open": sum(1 for v in self.verdicts
                        if v.status == STATUS_OPEN),
            "unobservable_boxes": len(self.unobservable_boxes),
        }


def _reach(circuit: Circuit, owner: Dict[str, BlackBox],
           root: str) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(primary inputs, box names) the cone of ``root`` depends on.

    Walks *through* Black Boxes: a box output's dependencies are the
    box's inputs, so box-to-box wiring is followed transitively.
    """
    support: Set[str] = set()
    boxes: Set[str] = set()
    seen: Set[str] = set()
    stack = [root]
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        if circuit.is_input(net):
            support.add(net)
            continue
        box = owner.get(net)
        if box is not None:
            boxes.add(box.name)
            stack.extend(box.inputs)
        elif circuit.drives(net):
            stack.extend(circuit.gate(net).inputs)
        # an unowned free net has no dependencies
    return tuple(sorted(support)), tuple(sorted(boxes))


def _ternary_constant(value: int) -> Optional[bool]:
    if value == ZERO:
        return False
    if value == ONE:
        return True
    return None


def preflight(spec: Circuit, partial: PartialImplementation,
              spec_hashes: Optional[ConeHashes] = None,
              impl_hashes: Optional[ConeHashes] = None)\
        -> PreflightReport:
    """Statically classify every output of a (spec, partial) pair.

    ``spec_hashes``/``impl_hashes`` accept precomputed
    :func:`~repro.analysis.static.hashing.cone_hashes` results so
    callers that already hashed the pair (the check cache) don't pay
    twice.
    """
    started = time.perf_counter()
    partial.validate_against(spec)
    impl = partial.circuit
    if spec_hashes is None:
        spec_hashes = cone_hashes(spec)
    if impl_hashes is None:
        impl_hashes = cone_hashes(impl, partial.boxes)

    # Ternary abstract interpretation: all inputs X, all boxes X.  The
    # hash-level constant folding subsumes these constants (it also
    # catches e.g. AND(x, NOT x)); the ternary pass is the independent
    # semantic engine the fold is cross-checked against in the tests.
    all_x = {net: X for net in spec.inputs}
    spec3 = simulate_ternary(spec, all_x)
    impl3 = simulate_ternary(impl, dict(all_x))

    owner: Dict[str, BlackBox] = {}
    for box in partial.boxes:
        for net in box.outputs:
            owner[net] = box

    verdicts: List[OutputVerdict] = []
    observed: Set[str] = set()
    counterexample: Optional[Dict[str, bool]] = None
    failing_output: Optional[str] = None
    for index, impl_out in enumerate(impl.outputs):
        spec_out = spec.outputs[index]
        spec_hash = spec_hashes.hashes[index]
        impl_hash = impl_hashes.hashes[index]
        spec_const = spec_hashes.constants[index]
        if spec_const is None:
            spec_const = _ternary_constant(spec3[spec_out])
        impl_const = impl_hashes.constants[index]
        if impl_const is None:
            impl_const = _ternary_constant(impl3[impl_out])
        support, boxes = _reach(impl, owner, impl_out)
        observed.update(boxes)

        if impl_hash == spec_hash:
            status, reason = STATUS_EQUIVALENT, (
                "constant %d cone" % impl_const
                if impl_const is not None else "hash-equal cone")
        elif spec_const is not None and impl_const is not None:
            if spec_const == impl_const:
                status, reason = STATUS_EQUIVALENT, (
                    "both cones constant %d" % spec_const)
            else:
                status, reason = STATUS_MISMATCH, (
                    "implementation is constant %d, specification "
                    "constant %d — every input vector and every box "
                    "substitution exposes the error"
                    % (impl_const, spec_const))
                if counterexample is None:
                    counterexample = {net: False for net in spec.inputs}
                    failing_output = spec_out
        elif not boxes:
            status, reason = STATUS_MITER, (
                "cone is independent of every Black Box but differs "
                "structurally; a plain miter decides it exactly")
        else:
            status, reason = STATUS_OPEN, (
                "cone depends on %s" % ", ".join(boxes))
        verdicts.append(OutputVerdict(
            index=index, spec_output=spec_out, impl_output=impl_out,
            status=status, reason=reason,
            spec_hash=spec_hash, impl_hash=impl_hash,
            spec_constant=spec_const, impl_constant=impl_const,
            support=support, boxes=boxes))

    unobservable = tuple(box.name for box in partial.boxes
                         if box.name not in observed)
    return PreflightReport(
        spec_hashes=spec_hashes, impl_hashes=impl_hashes,
        verdicts=tuple(verdicts), unobservable_boxes=unobservable,
        counterexample=counterexample, failing_output=failing_output,
        seconds=time.perf_counter() - started)


def restrict_to_outputs(spec: Circuit, partial: PartialImplementation,
                        keep: Sequence[int])\
        -> Tuple[Circuit, PartialImplementation]:
    """The (spec, partial) pair restricted to the output positions in
    ``keep`` — the undecided outputs after a partial discharge.

    Both circuits keep the **full primary-input interface**, so
    counterexamples found on the restricted pair remain total
    assignments of the original inputs, and
    ``validate_against`` keeps holding.  Boxes whose outputs feed no
    kept cone are dropped (they are unobservable in the restricted
    pair); gates are kept exactly when a kept cone or a kept box input
    needs them.
    """
    keep = sorted(set(keep))
    impl = partial.circuit

    spec_roots = [spec.outputs[j] for j in keep]
    spec_live = spec.cone(spec_roots)
    spec_r = Circuit(spec.name + "_open")
    spec_r.add_inputs(spec.inputs)
    for gate in spec.gates:
        if gate.output in spec_live:
            spec_r.add_gate(gate.output, gate.gtype, gate.inputs)
    spec_r.add_outputs(spec_roots)
    spec_r.validate()

    owner: Dict[str, BlackBox] = {}
    for box in partial.boxes:
        for net in box.outputs:
            owner[net] = box
    impl_roots = [impl.outputs[j] for j in keep]
    live: Set[str] = set()
    kept_boxes: List[BlackBox] = []
    kept_names: Set[str] = set()
    stack = list(impl_roots)
    while stack:
        net = stack.pop()
        if net in live:
            continue
        live.add(net)
        box = owner.get(net)
        if box is not None:
            if box.name not in kept_names:
                kept_names.add(box.name)
                kept_boxes.append(box)
            stack.extend(box.inputs)
        elif impl.drives(net):
            stack.extend(impl.gate(net).inputs)

    impl_r = Circuit(impl.name + "_open")
    impl_r.add_inputs(impl.inputs)
    for gate in impl.gates:
        if gate.output in live:
            impl_r.add_gate(gate.output, gate.gtype, gate.inputs)
    impl_r.add_outputs(impl_roots)
    ordered = [box for box in partial.boxes if box.name in kept_names]
    return spec_r, PartialImplementation(impl_r, ordered)
