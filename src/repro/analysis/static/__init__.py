"""Static netlist analysis: cone hashing, preflight, check cache.

Everything in this package works *before* any BDD exists:

``hashing``
    Canonical SHA-256 content hashes for output cones, invariant under
    net renaming, gate declaration order, buffer chains and the
    NAND/NOR/XNOR spellings of the base operators.
``preflight``
    A ternary (0,1,X) abstract interpretation plus support and
    observability analysis over a (spec, partial) pair that statically
    discharges output cones, produces counterexamples for constant
    mismatches, and reports unobservable Black Boxes.
``cache``
    A content-addressed on-disk store for check verdicts keyed by
    (spec cone hash, impl cone hash, check level, budget class) —
    "rung 0" of the check ladder.
``rules``
    The S-rule lint family (constant outputs, duplicate cones,
    unobservable boxes) on top of the hashes, reported through
    :mod:`repro.analysis.diagnostics`.

See ``docs/static-analysis.md`` for a guided tour.
"""

from .cache import CACHE_VERSION, CheckCache, budget_class
from .hashing import ConeHashes, cone_hashes, circuit_digest
from .preflight import (STATUS_EQUIVALENT, STATUS_MISMATCH, STATUS_MITER,
                        STATUS_OPEN, OutputVerdict, PreflightReport,
                        preflight, restrict_to_outputs)
from .rules import lint_static

__all__ = [
    "ConeHashes", "cone_hashes", "circuit_digest",
    "OutputVerdict", "PreflightReport", "preflight",
    "restrict_to_outputs",
    "STATUS_EQUIVALENT", "STATUS_MISMATCH", "STATUS_MITER", "STATUS_OPEN",
    "CheckCache", "budget_class", "CACHE_VERSION",
    "lint_static",
]
