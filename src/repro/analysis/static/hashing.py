"""Canonical cone hashing: content addresses for output cones.

Every output cone of a :class:`~repro.circuit.netlist.Circuit` (or of a
partial implementation's circuit plus its Black Boxes) is reduced
bottom-up to a canonical term and hashed with SHA-256.  The reduction
normalizes away exactly the differences that cannot change the cone's
function:

* **net renaming** — primary inputs are addressed by their position in
  the declared input order, internal nets never appear in the hash;
* **gate declaration order** — hashing walks data dependencies, not the
  gate list;
* **buffer chains** — ``BUF`` is the identity and ``NOT`` folds into a
  polarity bit, so inserting buffers or double inverters is invisible;
* **operator spelling** — terms are polarity-normalized over the base
  operators ``AND`` and ``XOR``: ``NAND``/``NOR``/``XNOR`` become a
  negation bit, and ``OR`` is rewritten by De Morgan
  (``OR(a, b) = NOT(AND(NOT a, NOT b))``);
* **commutative input order** — children of ``AND``/``XOR`` terms are
  sorted by hash;
* **constants** — ``CONST0``/``CONST1`` and controlling or cancelling
  inputs fold (``AND(x, 0) = 0``, ``AND(x, NOT x) = 0``,
  ``XOR(x, x) = 0``, duplicate ``AND`` inputs collapse, ...), so a
  cone that is a constant function of its inputs *hashes as* that
  constant.

Black Box instances are opaque: the output ``k`` of box ``B`` hashes as
``H("box", B.name, k, input cone hashes in pin order)``.  A complete
(specification) cone therefore can only ever collide with a box-free
implementation cone — which is exactly the situation in which hash
equality is a sound equivalence certificate.

Associativity is *not* normalized: ``AND(a, AND(b, c))`` and
``AND(a, b, c)`` hash differently.  Hash equality implies functional
equivalence (modulo SHA-256 collisions); inequality implies nothing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...circuit.gates import GateType
from ...circuit.netlist import Circuit
from ...partial.blackbox import BlackBox

__all__ = ["ConeHashes", "cone_hashes", "circuit_digest"]

#: A canonical reference: (term digest, polarity bit).
Ref = Tuple[str, bool]


def _h(*parts: str) -> str:
    return hashlib.sha256(
        "\x1f".join(parts).encode("utf-8")).hexdigest()


#: Digest of the constant-FALSE term; TRUE is its negation.
_CONST = _h("const")


def _serialize(ref: Ref) -> str:
    digest, neg = ref
    return digest + ("-" if neg else "+")


def _and_ref(kids: Sequence[Ref], neg: bool) -> Ref:
    """Canonical ``AND`` over ``kids``; ``neg`` makes it a ``NAND``."""
    seen: Dict[str, bool] = {}
    out: List[Ref] = []
    for digest, n in kids:
        if digest == _CONST:
            if n:
                continue            # AND(..., 1, ...) — neutral
            return (_CONST, neg)    # AND(..., 0, ...) = 0
        prev = seen.get(digest)
        if prev is None:
            seen[digest] = n
            out.append((digest, n))
        elif prev != n:
            return (_CONST, neg)    # AND(..., x, NOT x, ...) = 0
        # an exact duplicate child is simply dropped
    if not out:
        return (_CONST, not neg)    # empty AND = 1
    if len(out) == 1:
        digest, n = out[0]
        return (digest, n != neg)
    out.sort(key=lambda ref: (ref[0], ref[1]))
    return (_h("and", *[_serialize(ref) for ref in out]), neg)


def _xor_ref(kids: Sequence[Ref], neg: bool) -> Ref:
    """Canonical ``XOR``; negated children and ``neg`` fold into the
    output polarity, identical children cancel pairwise."""
    counts: Dict[str, int] = {}
    for digest, n in kids:
        if n:
            neg = not neg
        if digest == _CONST:
            continue                # XOR with 0 — neutral
        counts[digest] = counts.get(digest, 0) + 1
    live = sorted(d for d, c in counts.items() if c % 2)
    if not live:
        return (_CONST, neg)
    if len(live) == 1:
        return (live[0], neg)
    return (_h("xor", *live), neg)


def _gate_ref(gtype: GateType, kids: Sequence[Ref]) -> Ref:
    if gtype is GateType.CONST0:
        return (_CONST, False)
    if gtype is GateType.CONST1:
        return (_CONST, True)
    if gtype is GateType.BUF:
        return kids[0]
    if gtype is GateType.NOT:
        digest, neg = kids[0]
        return (digest, not neg)
    if gtype is GateType.AND:
        return _and_ref(kids, neg=False)
    if gtype is GateType.NAND:
        return _and_ref(kids, neg=True)
    if gtype in (GateType.OR, GateType.NOR):
        # De Morgan: OR(a, b) = NOT(AND(NOT a, NOT b)).
        inverted = [(digest, not neg) for digest, neg in kids]
        digest, neg = _and_ref(inverted, neg=False)
        return (digest, neg if gtype is GateType.NOR else not neg)
    if gtype is GateType.XOR:
        return _xor_ref(kids, neg=False)
    if gtype is GateType.XNOR:
        return _xor_ref(kids, neg=True)
    raise ValueError("unknown gate type %r" % gtype)


@dataclass(frozen=True)
class ConeHashes:
    """Cone hashes of one circuit interface, in output order.

    ``constants[j]`` is the constant value of output ``j`` when its
    cone *folded* to a constant during hashing (``None`` otherwise) —
    a sound "is constant" certificate, never a guess.
    """

    outputs: Tuple[str, ...]
    hashes: Tuple[str, ...]
    constants: Tuple[Optional[bool], ...]
    #: SHA-256 over the ordered cone hashes: one content address for
    #: the whole interface.
    digest: str

    def hash_of(self, output: str) -> str:
        """Cone hash of a named output (first occurrence)."""
        return self.hashes[self.outputs.index(output)]

    def by_output(self) -> Dict[str, str]:
        """``{output net: cone hash}`` (last wins on duplicates)."""
        return dict(zip(self.outputs, self.hashes))


def cone_hashes(circuit: Circuit,
                boxes: Sequence[BlackBox] = ()) -> ConeHashes:
    """Canonical cone hash for every output of ``circuit``.

    ``boxes`` supplies Black Box interfaces for free nets (pass
    ``partial.boxes`` for a partial implementation).  Free nets *not*
    claimed by a box hash by their name — the only construct whose
    hash is rename-sensitive, since nothing else identifies it.
    """
    owner: Dict[str, Tuple[BlackBox, int]] = {}
    for box in boxes:
        for index, net in enumerate(box.outputs):
            owner[net] = (box, index)

    refs: Dict[str, Ref] = {}
    for index, net in enumerate(circuit.inputs):
        refs[net] = (_h("var", "%d" % index), False)

    def children_of(net: str) -> Tuple[str, ...]:
        entry = owner.get(net)
        if entry is not None:
            return entry[0].inputs
        if circuit.drives(net):
            return circuit.gate(net).inputs
        return ()

    def make_ref(net: str) -> Ref:
        entry = owner.get(net)
        if entry is not None:
            box, index = entry
            return (_h("box", box.name, "%d" % index,
                       *[_serialize(refs[src]) for src in box.inputs]),
                    False)
        if circuit.drives(net):
            gate = circuit.gate(net)
            return _gate_ref(gate.gtype,
                             [refs[src] for src in gate.inputs])
        return (_h("free", net), False)

    def ensure(net: str) -> None:
        # Iterative post-order DFS: deep cones must not hit the
        # recursion limit.  Cycle safety comes from the netlist/box
        # validation the callers have already run.
        stack = [(net, False)]
        while stack:
            current, expanded = stack.pop()
            if current in refs:
                continue
            if expanded:
                refs[current] = make_ref(current)
            else:
                stack.append((current, True))
                for src in children_of(current):
                    if src not in refs:
                        stack.append((src, False))

    hashes: List[str] = []
    constants: List[Optional[bool]] = []
    for net in circuit.outputs:
        ensure(net)
        digest, neg = refs[net]
        hashes.append(_h("cone", _serialize((digest, neg))))
        constants.append(neg if digest == _CONST else None)
    return ConeHashes(outputs=tuple(circuit.outputs),
                      hashes=tuple(hashes),
                      constants=tuple(constants),
                      digest=_h("interface", *hashes))


def circuit_digest(circuit: Circuit,
                   boxes: Sequence[BlackBox] = ()) -> str:
    """One content address for a whole circuit interface."""
    return cone_hashes(circuit, boxes).digest
