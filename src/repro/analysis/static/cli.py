"""The ``cache`` CLI: inspect and prune a check-verdict cache.

Dispatched from ``python -m repro.experiments cache ...`` (the same
early-dispatch arrangement as ``lint`` and ``trace``)::

    python -m repro.experiments cache info  /var/cache/repro
    python -m repro.experiments cache prune /var/cache/repro \\
        --max-bytes 50000000

``info`` prints the entry count, total bytes and this run's traffic
counters; ``prune`` evicts least-recently-used entries until the cache
fits under ``--max-bytes``.  Both are safe against concurrent campaign
workers and a running service sharing the directory: a pruned entry a
reader races with simply counts as a miss and is re-proved.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .cache import CheckCache

__all__ = ["main"]


def _fmt_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return "%.1f %s" % (size, unit) if unit != "B" \
                else "%d B" % count
        size /= 1024
    return "%d B" % count  # pragma: no cover - unreachable


def main(argv: Optional[List[str]] = None) -> int:
    """``cache`` subcommand dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments cache",
        description="Inspect and prune a content-addressed "
                    "check-verdict cache directory "
                    "(see docs/static-analysis.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="entry count and on-disk size")
    info.add_argument("cache_dir", metavar="DIR")
    info.add_argument("--format", choices=("text", "json"),
                      default="text")

    prune = sub.add_parser("prune",
                           help="evict least-recently-used entries "
                                "down to a byte budget")
    prune.add_argument("cache_dir", metavar="DIR")
    prune.add_argument("--max-bytes", type=int, required=True,
                       metavar="N",
                       help="target total size; 0 empties the cache")
    prune.add_argument("--format", choices=("text", "json"),
                       default="text")

    args = parser.parse_args(argv)
    if args.max_bytes < 0 if args.command == "prune" else False:
        parser.error("--max-bytes must be >= 0")
    cache = CheckCache(args.cache_dir)
    if args.command == "info":
        report = cache.info()
        if args.format == "json":
            print(json.dumps(report, sort_keys=True))
        else:
            print("%s: %d entries, %s"
                  % (args.cache_dir, report["entries"],
                     _fmt_bytes(report["bytes"])))
        return 0
    report = cache.prune(args.max_bytes)
    if args.format == "json":
        print(json.dumps(report, sort_keys=True))
    else:
        print("%s: removed %d entries (%s); %d entries (%s) remain"
              % (args.cache_dir, report["removed"],
                 _fmt_bytes(report["removed_bytes"]),
                 report["entries"], _fmt_bytes(report["bytes"])))
    return 0


if __name__ == "__main__":
    sys.exit(main())
