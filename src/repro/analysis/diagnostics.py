"""Structured diagnostics for the netlist linter and BDD sanitizer.

Every finding is a :class:`Diagnostic` bound to one entry of the fixed
:data:`RULES` catalog (stable id, name, default severity).  Reports
aggregate diagnostics and render them for humans (``clang``-style
``file:line: severity[ID] message``) or machines (JSON).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Type, Union

__all__ = ["Severity", "Rule", "RULES", "RULES_BY_ID", "RULES_BY_NAME",
           "rule", "Diagnostic", "LintReport"]


class Severity(enum.IntEnum):
    """Diagnostic severity; comparisons follow increasing gravity."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One catalog entry: stable id, human name, default severity."""

    id: str
    name: str
    severity: Severity
    summary: str


#: The rule catalog (documented in ``docs/linting.md``).  Ids are stable
#: across releases; ``L``-rules are netlist-structural, ``B``-rules
#: concern the Black Box interface of partial implementations, ``D``-rules
#: come from the BDD sanitizer, ``P``-rules from the file loaders, and
#: ``S``-rules from the static cone analysis (:mod:`repro.analysis.static`).
RULES: Tuple[Rule, ...] = (
    Rule("L001", "combinational-cycle", Severity.ERROR,
         "gates form a combinational feedback loop"),
    Rule("L002", "multiply-driven-net", Severity.ERROR,
         "more than one construct drives the same net"),
    Rule("L003", "undriven-net", Severity.ERROR,
         "a net is read but driven by nothing"),
    Rule("L004", "dangling-output", Severity.ERROR,
         "a primary output is driven by nothing"),
    Rule("L005", "dead-gate", Severity.WARNING,
         "a gate feeds no primary output cone"),
    Rule("L006", "degenerate-gate", Severity.WARNING,
         "a gate is trivially reducible (1-input AND/OR, duplicate "
         "fanins, ...)"),
    Rule("L007", "duplicate-input", Severity.ERROR,
         "the same primary input is declared twice"),
    Rule("L008", "shadowed-input", Severity.ERROR,
         "a declared input name is also driven by logic"),
    Rule("B001", "box-output-collision", Severity.ERROR,
         "a Black Box output collides with an already-driven net"),
    Rule("B002", "free-net-without-box", Severity.ERROR,
         "a free net is not claimed by any Black Box"),
    Rule("B003", "box-feedback", Severity.ERROR,
         "Black Boxes form a dependency cycle"),
    Rule("B004", "box-cone-overlap", Severity.WARNING,
         "two Black Boxes have overlapping input cones; the input exact "
         "check is only an approximation (Theorem 2.2 needs b = 1)"),
    Rule("B005", "unread-box-output", Severity.INFO,
         "a Black Box output is read by nothing"),
    Rule("D001", "bdd-invariant", Severity.ERROR,
         "a BddManager internal invariant is violated"),
    Rule("P001", "parse-error", Severity.ERROR,
         "the file could not be parsed as a netlist"),
    Rule("S001", "constant-output", Severity.WARNING,
         "a primary output cone folds to a constant"),
    Rule("S002", "duplicate-output-cone", Severity.INFO,
         "two primary outputs have structurally identical cones"),
    Rule("S003", "unobservable-box", Severity.WARNING,
         "no output of a Black Box reaches any primary output cone"),
)

RULES_BY_ID: Dict[str, Rule] = {r.id: r for r in RULES}
RULES_BY_NAME: Dict[str, Rule] = {r.name: r for r in RULES}


def rule(key: str) -> Rule:
    """Look up a rule by id (``"L001"``) or name (``"combinational-cycle"``)."""
    found = RULES_BY_ID.get(key) or RULES_BY_NAME.get(key)
    if found is None:
        raise KeyError("unknown lint rule %r" % key)
    return found


@dataclass(frozen=True)
class Diagnostic:
    """One linter/sanitizer finding.

    Attributes
    ----------
    rule:
        The catalog entry this finding instantiates.
    message:
        Specific, human-readable description.
    nets:
        The nets involved; for ``combinational-cycle`` this is the full
        cycle path (first net repeated at the end).
    hint:
        A short fix suggestion, possibly empty.
    file / line:
        Source location when the circuit came from a parsed file.
    """

    rule: Rule
    message: str
    nets: Tuple[str, ...] = ()
    hint: str = ""
    file: Optional[str] = None
    line: Optional[int] = None

    @property
    def severity(self) -> Severity:
        """Severity inherited from the rule."""
        return self.rule.severity

    @property
    def rule_id(self) -> str:
        """Stable id of the rule (e.g. ``"L001"``)."""
        return self.rule.id

    def format(self) -> str:
        """``file:line: severity[ID/name] message (hint)``."""
        where = ""
        if self.file is not None:
            where = self.file
            if self.line is not None:
                where += ":%d" % self.line
            where += ": "
        elif self.line is not None:
            where = "line %d: " % self.line
        text = "%s%s[%s/%s] %s" % (where, self.severity, self.rule.id,
                                   self.rule.name, self.message)
        if self.hint:
            text += "  (hint: %s)" % self.hint
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "rule": self.rule.id,
            "name": self.rule.name,
            "severity": str(self.severity),
            "message": self.message,
            "nets": list(self.nets),
            "hint": self.hint,
            "file": self.file,
            "line": self.line,
        }

    def __repr__(self) -> str:
        return "<Diagnostic %s>" % self.format()


@dataclass
class LintReport:
    """An ordered collection of diagnostics with severity accessors."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, rule_key: Union[str, Rule], message: str,
            nets: Iterable[str] = (), hint: str = "",
            file: Optional[str] = None,
            line: Optional[int] = None) -> Diagnostic:
        """Append a diagnostic for ``rule_key`` (id, name or Rule)."""
        entry = rule_key if isinstance(rule_key, Rule) else rule(rule_key)
        diag = Diagnostic(entry, message, tuple(nets), hint, file, line)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: Union["LintReport",
                                  Iterable[Diagnostic]]) -> None:
        """Append all diagnostics of another report/iterable."""
        if isinstance(other, LintReport):
            other = other.diagnostics
        self.diagnostics.extend(other)

    # -- selection -----------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        """Error-severity findings."""
        return [d for d in self.diagnostics
                if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Warning-severity findings."""
        return [d for d in self.diagnostics
                if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding is present."""
        return not self.errors

    def by_rule(self, key: str) -> List[Diagnostic]:
        """All findings of one rule (by id or name)."""
        entry = rule(key)
        return [d for d in self.diagnostics if d.rule is entry]

    def rule_ids(self) -> List[str]:
        """Sorted unique rule ids present in the report."""
        return sorted({d.rule.id for d in self.diagnostics})

    # -- rendering -----------------------------------------------------

    def format(self) -> str:
        """All findings, one per line."""
        return "\n".join(d.format() for d in self.diagnostics)

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON array of the diagnostics."""
        return json.dumps([d.to_dict() for d in self.diagnostics],
                          indent=indent)

    def raise_if_errors(self,
                        exc_type: Type[Exception] = ValueError) -> None:
        """Raise ``exc_type`` summarising the error findings, if any."""
        errors = self.errors
        if errors:
            raise exc_type("; ".join(d.message for d in errors))

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __repr__(self) -> str:
        return "<LintReport %d findings (%d errors, %d warnings)>" % (
            len(self.diagnostics), len(self.errors), len(self.warnings))
