"""Rule-based static analysis of netlists and partial implementations.

The linter answers the question the paper leaves implicit: *is this
partial netlist well-formed enough for any check verdict to mean
anything?*  Structural defects — combinational cycles, multiply-driven
or floating nets, Black Box cones that overlap — silently change which
rung of the five-check ladder is sound, so every entry point of the
library runs (at least the error rules of) this pass first.

All rules complete in one topological sweep plus a constant number of
linear passes: O(V + E) in the gate count.  See ``docs/linting.md`` for
the rule catalog.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from ..circuit.gates import GateType, VARIADIC
from ..circuit.netlist import Circuit, CircuitError
from ..circuit.srcloc import SourceMap
from ..partial.blackbox import BlackBox, PartialImplementation
from .diagnostics import Diagnostic, LintReport

__all__ = ["lint_circuit", "lint_boxes", "lint_partial",
           "structural_errors"]

#: Gate families for the degenerate-gate rule.
_IDEMPOTENT = {GateType.AND, GateType.OR, GateType.NAND, GateType.NOR}
_PARITY = {GateType.XOR, GateType.XNOR}


def _source_events(report: LintReport,
                   source: Optional[SourceMap]) -> None:
    """Convert parser events into diagnostics with file/line context."""
    if source is None:
        return
    for event in source.events:
        report.add(event.rule, event.message, nets=event.nets,
                   file=source.file, line=event.line)


def _loc(source: Optional[SourceMap], net: str):
    """(file, line) of ``net``'s definition, if tracked."""
    if source is None:
        return None, None
    return source.file, source.line_of(net)


def _lint_cycle(report: LintReport, circuit: Circuit,
                source: Optional[SourceMap]) -> bool:
    """Combinational-cycle rule; returns True when the DAG is sound."""
    try:
        # Reuses (and on success populates) the topological-order cache,
        # so back-to-back validate()/topological_order() stay one sweep.
        circuit.topological_order()
        return True
    except CircuitError as err:
        cycle = list(getattr(err, "cycle", ()))
    file, line = _loc(source, cycle[0]) if cycle else (None, None)
    report.add("combinational-cycle",
               "combinational cycle: %s" % " -> ".join(cycle),
               nets=cycle,
               hint="break the loop with a register or rewire one of "
                    "the gates on the path",
               file=file, line=line)
    return False


def _lint_driving(report: LintReport, circuit: Circuit, allow_free: bool,
                  source: Optional[SourceMap]) -> None:
    """Undriven-net and dangling-output rules."""
    if allow_free:
        return
    read: Set[str] = set()
    for gate in circuit.gates:
        read.update(gate.inputs)
    for net in circuit.free_nets():
        file, line = _loc(source, net)
        if net in read:
            report.add("undriven-net",
                       "net %r is read but driven by nothing" % net,
                       nets=(net,),
                       hint="drive it with a gate or declare it as a "
                            "primary input (or a Black Box output)",
                       file=file, line=line)
        else:
            report.add("dangling-output",
                       "primary output %r is driven by nothing" % net,
                       nets=(net,),
                       hint="drive the output or drop it from the "
                            "output list",
                       file=file, line=line)


def _lint_degenerate(report: LintReport, circuit: Circuit,
                     source: Optional[SourceMap]) -> None:
    """Degenerate-gate rule: trivially reducible gate instances."""
    for gate in circuit.gates:
        gtype, inputs = gate.gtype, gate.inputs
        file, line = _loc(source, gate.output)
        if gtype in VARIADIC and len(inputs) == 1:
            acts_as = ("BUF" if gtype in (GateType.AND, GateType.OR,
                                          GateType.XOR) else "NOT")
            report.add("degenerate-gate",
                       "1-input %s gate %r acts as %s"
                       % (gtype.name, gate.output, acts_as),
                       nets=(gate.output,),
                       hint="replace it with an explicit %s" % acts_as,
                       file=file, line=line)
            continue
        if len(set(inputs)) == len(inputs):
            continue
        if gtype in _PARITY:
            report.add("degenerate-gate",
                       "%s gate %r repeats a fanin; duplicated parity "
                       "inputs cancel" % (gtype.name, gate.output),
                       nets=(gate.output,),
                       hint="drop the duplicated fanin pair",
                       file=file, line=line)
        elif gtype in _IDEMPOTENT:
            report.add("degenerate-gate",
                       "%s gate %r repeats a fanin; duplicates are "
                       "redundant" % (gtype.name, gate.output),
                       nets=(gate.output,),
                       hint="drop the duplicated fanin",
                       file=file, line=line)


def _lint_dead_gates(report: LintReport, circuit: Circuit,
                     source: Optional[SourceMap],
                     extra_roots: Iterable[str] = ()) -> None:
    """Dead-gate rule: gates outside every primary output cone.

    ``extra_roots`` marks additional live cone roots — in a partial
    implementation a gate feeding only Black Box *inputs* is not dead.
    """
    roots = list(circuit.outputs) + [r for r in extra_roots
                                     if circuit.drives(r)]
    if not roots:
        return
    live = circuit.cone(roots)
    for gate in circuit.gates:
        if gate.output not in live:
            file, line = _loc(source, gate.output)
            report.add("dead-gate",
                       "gate %r feeds no primary output" % gate.output,
                       nets=(gate.output,),
                       hint="remove the gate or connect its cone to an "
                            "output",
                       file=file, line=line)


def lint_circuit(circuit: Circuit, allow_free: bool = False,
                 source: Optional[SourceMap] = None,
                 errors_only: bool = False,
                 live_roots: Iterable[str] = ()) -> LintReport:
    """Run all netlist rules over one circuit.

    ``allow_free`` suppresses the undriven-net rules (free nets are the
    representation of Black Box outputs; use :func:`lint_partial` to
    check them against a box list instead).  ``errors_only`` skips the
    warning/info rules — this is the fast profile
    :meth:`repro.circuit.netlist.Circuit.validate` delegates to.
    ``live_roots`` adds cone roots beyond the primary outputs for the
    dead-gate rule (Black Box inputs, for partial implementations).
    """
    report = LintReport()
    _source_events(report, source)
    acyclic = _lint_cycle(report, circuit, source)
    _lint_driving(report, circuit, allow_free, source)
    if errors_only:
        return report
    _lint_degenerate(report, circuit, source)
    if acyclic:
        _lint_dead_gates(report, circuit, source, live_roots)
    return report


# ----------------------------------------------------------------------
# Black Box interface rules
# ----------------------------------------------------------------------


def _box_dependencies(circuit: Circuit, boxes: Sequence[BlackBox],
                      owner: Dict[str, str]) -> Dict[str, Set[str]]:
    """Which boxes each box transitively reads (via its input cones)."""
    deps: Dict[str, Set[str]] = {}
    for box in boxes:
        cone = circuit.cone(box.inputs)
        deps[box.name] = {owner[net] for net in cone if net in owner}
    return deps


def lint_boxes(circuit: Circuit,
               boxes: Sequence[BlackBox]) -> LintReport:
    """Black-Box interface rules for ``boxes`` over ``circuit``.

    Works on a raw ``(circuit, boxes)`` pair so that models too broken
    for the :class:`~repro.partial.blackbox.PartialImplementation`
    constructor can still be diagnosed.
    """
    report = LintReport()
    owner: Dict[str, str] = {}
    for box in boxes:
        for net in box.outputs:
            if circuit.drives(net):
                report.add("box-output-collision",
                           "output %r of Black Box %r is already driven "
                           "by a gate" % (net, box.name),
                           nets=(net,),
                           hint="rename the box output or remove the "
                                "driving gate")
            elif circuit.is_input(net):
                report.add("box-output-collision",
                           "output %r of Black Box %r is a primary "
                           "input" % (net, box.name),
                           nets=(net,),
                           hint="rename the box output")
            elif net in owner:
                report.add("box-output-collision",
                           "net %r is driven by Black Boxes %r and %r"
                           % (net, owner[net], box.name),
                           nets=(net,),
                           hint="give each box its own output nets")
            else:
                owner[net] = box.name

    unowned = [net for net in circuit.free_nets() if net not in owner]
    for net in unowned:
        report.add("free-net-without-box",
                   "free net %r is not an output of any Black Box" % net,
                   nets=(net,),
                   hint="assign the net to a box or drive it with logic")

    if report.errors:
        # Dependency analysis below assumes a well-formed owner map.
        return report

    deps = _box_dependencies(circuit, boxes, owner)
    for box in boxes:
        if box.name in deps[box.name]:
            report.add("box-feedback",
                       "Black Box %r feeds back into itself" % box.name,
                       nets=box.outputs,
                       hint="cut the loop: a box may not read its own "
                            "cone")
    # Mutual (non-self) cycles: Kahn over the box dependency graph.
    placed: Set[str] = set()
    remaining = [b.name for b in boxes if b.name not in deps[b.name]]
    while remaining:
        progress = [n for n in remaining if deps[n] - {n} <= placed]
        if not progress:
            report.add("box-feedback",
                       "cyclic dependency among Black Boxes: %s"
                       % ", ".join(sorted(remaining)),
                       nets=(),
                       hint="order the boxes so each reads only earlier "
                            "ones")
            break
        placed.update(progress)
        remaining = [n for n in remaining if n not in placed]

    # Theorem 2.2: input-exact is exact only for b = 1.  With b >= 2 and
    # overlapping input cones the check degrades to an approximation.
    if len(boxes) >= 2:
        cones = {box.name: circuit.cone(box.inputs) for box in boxes}
        for i, first in enumerate(boxes):
            for second in boxes[i + 1:]:
                shared = cones[first.name] & cones[second.name]
                if not shared:
                    continue
                sample = sorted(shared)[:4]
                report.add(
                    "box-cone-overlap",
                    "Black Boxes %r and %r have overlapping input cones "
                    "(shared: %s%s); with b >= 2 boxes the input exact "
                    "check is only an approximation — Theorem 2.2 "
                    "exactness needs a single box"
                    % (first.name, second.name, ", ".join(sample),
                       ", ..." if len(shared) > len(sample) else ""),
                    nets=sample,
                    hint="a 'no error' verdict no longer guarantees an "
                         "extension exists; merge the boxes or treat "
                         "the verdict as one-sided")
    read: Set[str] = set()
    for gate in circuit.gates:
        read.update(gate.inputs)
    for box in boxes:
        for net in box.outputs:
            if net not in read and net not in circuit.outputs:
                report.add("unread-box-output",
                           "output %r of Black Box %r is read by "
                           "nothing; it cannot influence the primary "
                           "outputs" % (net, box.name),
                           nets=(net,))
    return report


def lint_partial(partial: Union[PartialImplementation, Circuit],
                 boxes: Optional[Sequence[BlackBox]] = None,
                 source: Optional[SourceMap] = None) -> LintReport:
    """Full lint of a partial implementation (netlist + box rules).

    Accepts either a constructed
    :class:`~repro.partial.blackbox.PartialImplementation` or a raw
    ``(circuit, boxes)`` pair.
    """
    if isinstance(partial, PartialImplementation):
        circuit, box_list = partial.circuit, partial.boxes
    else:
        circuit, box_list = partial, list(boxes or ())
    box_inputs = [net for box in box_list for net in box.inputs]
    report = lint_circuit(circuit, allow_free=True, source=source,
                          live_roots=box_inputs)
    report.extend(lint_boxes(circuit, box_list))
    return report


def structural_errors(circuit: Circuit,
                      allow_free: bool = False) -> List[Diagnostic]:
    """The error findings of the fast profile (used by ``validate``)."""
    return lint_circuit(circuit, allow_free=allow_free,
                        errors_only=True).errors
