"""File-level lint driver: permissive parsing + lint in one call.

Dispatches on the file extension to the matching reader (``.blif``,
``.bench``, ``.v``), parses in permissive mode so that recoverable
defects (duplicate drivers, shadowed inputs, ...) become diagnostics
with file/line context instead of aborting the parse, and runs the full
rule set over the result.  Unrecoverable parse failures are reported as
rule ``P001`` findings rather than exceptions, so a batch lint over many
files always completes.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Optional, TextIO, Tuple, Union

from ..circuit.blif import read_blif
from ..circuit.iscas import read_bench
from ..circuit.netlist import Circuit, CircuitError
from ..circuit.srcloc import SourceMap
from ..circuit.verilog import read_verilog
from .diagnostics import LintReport
from .lint import lint_circuit

__all__ = ["READERS", "reader_for", "load_for_lint", "lint_path"]

#: Extension -> reader.  All readers share the
#: ``(source, name=..., source_map=..., strict=...)`` signature.
READERS: Dict[str, Callable[..., Circuit]] = {
    ".blif": read_blif,
    ".bench": read_bench,
    ".v": read_verilog,
}

_LINE_PREFIX = re.compile(r"^line (\d+): ")


def reader_for(path: str) -> Callable[..., Circuit]:
    """The reader matching ``path``'s extension; KeyError when unknown."""
    for extension, reader in READERS.items():
        if path.endswith(extension):
            return reader
    raise KeyError(
        "no netlist reader for %r (expected one of: %s)"
        % (path, ", ".join(sorted(READERS))))


def load_for_lint(path: str,
                  text: Optional[Union[str, TextIO]] = None)\
        -> Tuple[Optional[Circuit], SourceMap, LintReport]:
    """Parse ``path`` permissively; parse failures become diagnostics.

    Returns ``(circuit, source_map, parse_report)`` where ``circuit`` is
    ``None`` exactly when the parse failed (the report then carries one
    ``P001`` finding).  ``text`` optionally supplies the content (string
    or open file) so callers can lint unsaved buffers under a file name.
    """
    reader = reader_for(path)
    source_map = SourceMap(file=path)
    report = LintReport()
    try:
        if text is None:
            circuit = reader(path, source_map=source_map, strict=False)
        else:
            import io

            handle = io.StringIO(text) if isinstance(text, str) else text
            circuit = reader(handle, name=path, source_map=source_map,
                             strict=False)
    except CircuitError as err:
        message = str(err)
        match = _LINE_PREFIX.match(message)
        line = int(match.group(1)) if match else None
        if match:
            message = message[match.end():]
        report.add("parse-error", message,
                   hint="fix the syntax; permissive parsing only "
                        "recovers from semantic defects",
                   file=path, line=line)
        return None, source_map, report
    return circuit, source_map, report


def lint_path(path: str, allow_free: bool = False,
              text: Optional[Union[str, TextIO]] = None) -> LintReport:
    """Parse + lint one netlist file; never raises on bad content.

    ``allow_free`` suppresses the undriven-net rules for files whose
    free nets stand for Black Box outputs (the convention the
    ``.bench``/Verilog writers use).  IO errors and unknown extensions
    still raise — the file itself, not its content, is the problem.
    """
    circuit, source_map, report = load_for_lint(path, text=text)
    if circuit is None:
        return report
    report.extend(lint_circuit(circuit, allow_free=allow_free,
                               source=source_map))
    return report
