"""Opt-in BDD manager sanitizer with structured diagnostics.

:meth:`repro.bdd.manager.BddManager.check_invariants` started life as a
test-only helper raising bare ``AssertionError``.  This module promotes
it into a runtime sanitizer: with ``BddManager(debug_checks=True)`` or
``REPRO_DEBUG=1`` in the environment, the manager re-verifies every
internal invariant after each garbage collection and each dynamic
reordering and raises :class:`BddInvariantError` carrying
:class:`~repro.analysis.diagnostics.Diagnostic` records (rule ``D001``)
instead of asserting.
"""

from __future__ import annotations

from typing import List, Union

from ..bdd.function import Bdd
from ..bdd.manager import BddManager
from .diagnostics import Diagnostic, LintReport, rule

__all__ = ["BddInvariantError", "sanitize_manager", "invariant_error",
           "enable_debug_checks"]


class BddInvariantError(RuntimeError):
    """Raised by the sanitizer when manager invariants are violated.

    ``diagnostics`` holds one ``D001`` record per violated invariant;
    ``phase`` names the maintenance step that exposed the corruption
    (``"gc"``, ``"reorder"`` or ``"manual"``).
    """

    def __init__(self, phase: str,
                 diagnostics: List[Diagnostic]) -> None:
        self.phase = phase
        self.diagnostics = list(diagnostics)
        super().__init__(
            "BDD invariants violated after %s:\n%s"
            % (phase, "\n".join(d.format() for d in self.diagnostics)))


def _diagnostics(phase: str, violations: List[str]) -> List[Diagnostic]:
    entry = rule("bdd-invariant")
    return [Diagnostic(entry, "after %s: %s" % (phase, message),
                       hint="the manager state is corrupt; this is a "
                            "repro.bdd bug — please report it")
            for message in violations]


def invariant_error(manager: BddManager, phase: str,
                    violations: List[str]) -> BddInvariantError:
    """Build the error the manager's debug hook raises (internal API)."""
    return BddInvariantError(phase, _diagnostics(phase, violations))


def sanitize_manager(manager: Union[Bdd, BddManager],
                     phase: str = "manual") -> LintReport:
    """Run all invariant checks once; return findings instead of raising.

    Accepts either the high-level :class:`~repro.bdd.function.Bdd`
    wrapper or a raw manager.
    """
    if isinstance(manager, Bdd):
        manager = manager.manager
    manager.n_selfchecks += 1
    report = LintReport()
    report.extend(_diagnostics(phase, manager.invariant_violations()))
    return report


def enable_debug_checks(manager: Union[Bdd, BddManager],
                        enabled: bool = True) -> None:
    """Toggle the after-GC/after-reorder sanitizer on a live manager."""
    if isinstance(manager, Bdd):
        manager = manager.manager
    manager.debug_checks = bool(enabled)
