"""``python -m repro.experiments lint`` — batch netlist linting.

Exit status: 0 when every file parses and has no error-severity
finding, 1 when any error finding (including parse errors) is present,
2 when a file cannot be read at all (missing, unknown extension).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .diagnostics import LintReport, Severity
from .loader import lint_path

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments lint",
        description="Lint netlist files (.blif, .bench, .v) for "
                    "structural defects.")
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="netlist files to lint")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (default: text)")
    parser.add_argument("--allow-free", action="store_true",
                        help="treat free nets as Black Box outputs "
                             "instead of undriven-net errors")
    parser.add_argument("--static", action="store_true",
                        help="additionally run the static cone "
                             "analysis (S-rules: constant outputs, "
                             "duplicate cones; needs a structurally "
                             "clean netlist)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress informational findings")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the exit status instead of calling exit."""
    options = _build_parser().parse_args(argv)
    combined = LintReport()
    unreadable = False
    for path in options.files:
        try:
            if options.static:
                from .loader import load_for_lint
                from .lint import lint_circuit
                from .static import lint_static

                circuit, source_map, report = load_for_lint(path)
                if circuit is not None:
                    report.extend(lint_circuit(
                        circuit, allow_free=options.allow_free,
                        source=source_map))
                    # The cone walk needs a structurally sound
                    # netlist (no cycles, no multiply-driven nets).
                    if report.ok:
                        report.extend(lint_static(circuit, file=path))
            else:
                report = lint_path(path, allow_free=options.allow_free)
        except (OSError, KeyError, UnicodeDecodeError) as err:
            unreadable = True
            message = err.args[0] if isinstance(err, KeyError) else err
            print("%s: unreadable: %s" % (path, message),
                  file=sys.stderr)
            continue
        combined.extend(report)

    diagnostics = [d for d in combined
                   if not (options.quiet and d.severity < Severity.WARNING)]
    if options.format == "json":
        shown = LintReport(diagnostics)
        print(shown.to_json(indent=2))
    else:
        for diag in diagnostics:
            print(diag.format())
        errors, warnings = combined.errors, combined.warnings
        if diagnostics or errors or warnings:
            print("%d error(s), %d warning(s)"
                  % (len(errors), len(warnings)))
    if unreadable:
        return 2
    return 0 if combined.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
