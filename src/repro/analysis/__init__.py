"""Static analysis: netlist linter, BDD sanitizer, lint CLI.

This layer sits above :mod:`repro.circuit`, :mod:`repro.bdd` and
:mod:`repro.partial` and is what ``Circuit.validate`` and the check
ladder delegate their pre-flight diagnostics to.  See
``docs/linting.md`` for the rule catalog.
"""

from .bddcheck import BddInvariantError, enable_debug_checks, \
    sanitize_manager
from .diagnostics import Diagnostic, LintReport, Rule, RULES, Severity, \
    rule
from .lint import lint_boxes, lint_circuit, lint_partial
from .loader import lint_path, load_for_lint
from .static import (CheckCache, ConeHashes, PreflightReport,
                     cone_hashes, circuit_digest, lint_static, preflight)

__all__ = [
    "Severity", "Rule", "RULES", "rule", "Diagnostic", "LintReport",
    "lint_circuit", "lint_boxes", "lint_partial",
    "lint_path", "load_for_lint",
    "BddInvariantError", "sanitize_manager", "enable_debug_checks",
    "ConeHashes", "cone_hashes", "circuit_digest",
    "PreflightReport", "preflight", "CheckCache", "lint_static",
]
