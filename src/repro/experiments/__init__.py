"""Experiment harness regenerating the paper's tables."""

from .runner import (CHECKS, BenchmarkRow, ExperimentConfig, run_one_case,
                     run_benchmark_row, run_table)
from .tables import average_row, format_detection_summary, format_table
from .sweep import SweepPoint, format_sweep, run_fraction_sweep
from .export import rows_to_csv, rows_to_dict, rows_to_json
from .stats import detection_interval, wilson_interval
from .paper_reference import (PAPER_TABLE1, PAPER_TABLE2,
                              format_comparison)

__all__ = [
    "CHECKS",
    "BenchmarkRow",
    "ExperimentConfig",
    "run_one_case",
    "run_benchmark_row",
    "run_table",
    "average_row",
    "format_detection_summary",
    "format_table",
    "SweepPoint",
    "run_fraction_sweep",
    "format_sweep",
    "rows_to_dict",
    "rows_to_json",
    "rows_to_csv",
    "wilson_interval",
    "detection_interval",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "format_comparison",
]
