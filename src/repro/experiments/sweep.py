"""Parameter sweeps: detection ratio as a function of the boxed fraction.

Section 3 of the paper reports that repeating the experiments with 40%
instead of 10% of the gates in Black Boxes "lead[s] to comparable
results" (table deferred to the technical report).  This module turns
that remark into a measured data series: detection ratio per check as
the boxed fraction grows — the natural "figure" of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..circuit.netlist import Circuit
from .runner import CHECKS, ExperimentConfig, run_benchmark_row

__all__ = ["SweepPoint", "run_fraction_sweep", "format_sweep"]


@dataclass
class SweepPoint:
    """Detection ratios for one boxed-gate fraction."""

    fraction: float
    detection: Dict[str, float] = field(default_factory=dict)
    mean_seconds: Dict[str, float] = field(default_factory=dict)
    #: checks without a verdict at this fraction (timeouts + errors)
    degraded: int = 0


def run_fraction_sweep(name: str, spec: Circuit,
                       fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
                       num_boxes: int = 1,
                       selections: int = 1, errors: int = 6,
                       patterns: int = 300, seed: int = 2001,
                       checks: Sequence[str] = CHECKS,
                       progress: Optional[Callable[[str], None]] = None,
                       jobs: int = 1,
                       timeout: Optional[float] = None,
                       journal: Optional[str] = None,
                       resume: Optional[str] = None,
                       node_limit: Optional[int] = None,
                       soft_timeout: Optional[float] = None,
                       shards: int = 0,
                       fleet_config=None)\
        -> List[SweepPoint]:
    """Detection ratio per check over a range of boxed fractions.

    ``jobs``/``timeout``/``journal``/``resume``/``shards`` route each
    fraction's campaign through the :mod:`repro.jobs` engine; one
    journal can hold the whole sweep, since the boxed fraction is part
    of every case key.  On the parallel/fleet path ``name`` must be a
    factory benchmark (workers rebuild the spec by name).
    """
    use_engine = jobs > 1 or shards or timeout is not None \
        or journal or resume
    points: List[SweepPoint] = []
    for fraction in fractions:
        config = ExperimentConfig(
            fraction=fraction, num_boxes=num_boxes,
            selections=selections, errors=errors, patterns=patterns,
            seed=seed, checks=checks, node_limit=node_limit,
            soft_timeout=soft_timeout)
        if use_engine:
            from ..jobs.engine import run_campaign

            row = run_campaign(config, benchmarks=[name], jobs=jobs,
                               timeout=timeout, journal=journal,
                               resume=resume, progress=progress,
                               spec_overrides={name: spec},
                               shards=shards,
                               fleet_config=fleet_config).rows[name]
        else:
            row = run_benchmark_row(name, spec, config,
                                    progress=progress)
        point = SweepPoint(fraction=fraction, degraded=row.degraded_cases)
        for check in checks:
            point.detection[check] = row.detection_ratio(check)
            point.mean_seconds[check] = row.runtime[check]
        points.append(point)
    return points


def format_sweep(name: str, points: Sequence[SweepPoint],
                 checks: Sequence[str] = CHECKS) -> str:
    """ASCII rendering of the sweep series (one row per fraction)."""
    lines = ["Detection vs boxed fraction — %s" % name,
             "fraction  " + " ".join("%7s" % c for c in checks)]
    for point in points:
        lines.append("%7.0f%%  " % (100 * point.fraction) + " ".join(
            "%6.0f%%" % point.detection[c] for c in checks))
    return "\n".join(lines)
