"""Machine-readable export of experiment results (JSON / CSV)."""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence

from .runner import BenchmarkRow
from .stats import detection_interval

__all__ = ["rows_to_dict", "rows_to_json", "rows_to_csv"]


def rows_to_dict(rows: Sequence[BenchmarkRow],
                 intervals: bool = True) -> List[Dict]:
    """Plain-dict form of table rows, one entry per circuit."""
    out: List[Dict] = []
    for row in rows:
        entry: Dict = {
            "circuit": row.circuit,
            "inputs": row.inputs,
            "outputs": row.outputs,
            "spec_nodes": row.spec_nodes,
            "cases": row.cases,
            "wall_seconds": row.wall_seconds,
            "checks": {},
        }
        if row.strongest_valid:
            entry["best_effort"] = {
                "strongest_detected": row.strongest_detected,
                "strongest_valid": row.strongest_valid,
            }
        cache_hits = sum(row.check_cache_hits.values())
        if cache_hits or row.discharged_outputs:
            entry["static"] = {
                "check_cache_hits": {
                    check: hits for check, hits
                    in row.check_cache_hits.items() if hits},
                "discharged_outputs": row.discharged_outputs,
            }
        for check in row.detected:
            valid = row.valid.get(check, row.cases)
            record = {
                "detection_percent": row.detection_ratio(check),
                "mean_impl_nodes": row.impl_nodes.get(check, 0.0),
                "mean_peak_nodes": row.peak_nodes.get(check, 0.0),
                "mean_seconds": row.runtime.get(check, 0.0),
                "p50_seconds": row.runtime_p50.get(check, 0.0),
                "p95_seconds": row.runtime_p95.get(check, 0.0),
                "reorders": row.reorders.get(check, 0),
                "gc_runs": row.gc_runs.get(check, 0),
                "cache_hits": row.cache_hits.get(check, 0),
                "cache_misses": row.cache_misses.get(check, 0),
                "cache_evictions": row.cache_evictions.get(check, 0),
                "cache_hit_rate": row.cache_hit_rate(check),
                "inconclusive": row.inconclusive.get(check, 0),
                "valid_cases": valid,
                "timeouts": row.timeouts.get(check, 0),
                "errors": row.check_errors.get(check, 0),
            }
            if intervals and valid:
                low, high = detection_interval(
                    row.detected[check], valid)
                record["detection_ci95"] = [low, high]
            sat_wins = row.sat_wins.get(check, 0)
            bdd_wins = row.bdd_wins.get(check, 0)
            if sat_wins or bdd_wins:
                # Only present on portfolio/SAT-strategy campaigns, so
                # default-campaign exports are unchanged.
                record["engine_wins"] = {"sat": sat_wins,
                                         "bdd": bdd_wins}
            entry["checks"][check] = record
        out.append(entry)
    return out


def rows_to_json(rows: Sequence[BenchmarkRow],
                 intervals: bool = True, indent: int = 2) -> str:
    """JSON rendering of table rows."""
    return json.dumps(rows_to_dict(rows, intervals=intervals),
                      indent=indent, sort_keys=True)


def rows_to_csv(rows: Sequence[BenchmarkRow]) -> str:
    """Flat CSV rendering (one line per circuit x check)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["circuit", "inputs", "outputs", "spec_nodes",
                     "cases", "check", "detection_percent",
                     "mean_impl_nodes", "mean_peak_nodes",
                     "mean_seconds", "cache_hits", "cache_misses",
                     "cache_evictions", "cache_hit_rate",
                     "p50_seconds", "p95_seconds", "reorders",
                     "gc_runs", "inconclusive", "valid_cases",
                     "timeouts", "errors"])
    for row in rows:
        for check in row.detected:
            writer.writerow([
                row.circuit, row.inputs, row.outputs, row.spec_nodes,
                row.cases, check,
                "%.2f" % row.detection_ratio(check),
                "%.1f" % row.impl_nodes.get(check, 0.0),
                "%.1f" % row.peak_nodes.get(check, 0.0),
                "%.4f" % row.runtime.get(check, 0.0),
                row.cache_hits.get(check, 0),
                row.cache_misses.get(check, 0),
                row.cache_evictions.get(check, 0),
                "%.4f" % row.cache_hit_rate(check),
                "%.4f" % row.runtime_p50.get(check, 0.0),
                "%.4f" % row.runtime_p95.get(check, 0.0),
                row.reorders.get(check, 0),
                row.gc_runs.get(check, 0),
                row.inconclusive.get(check, 0),
                row.valid.get(check, row.cases),
                row.timeouts.get(check, 0),
                row.check_errors.get(check, 0)])
    return buffer.getvalue()
