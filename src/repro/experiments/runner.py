"""Experiment driver reproducing the paper's evaluation (Section 3).

For each benchmark circuit: carve a fraction of the gates into Black
Boxes (several random selections), insert random errors into the kept
logic, and run all five checks on every mutated partial implementation.
Reported per circuit, averaged over selections: detection ratio per
check, BDD node counts (specification, implementation, peak during
check) and run times — the columns of Tables 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bdd import default_bdd
from ..circuit.netlist import Circuit
from ..obs import ManagerSnapshot, get_tracer, unique_table_summary
from ..core.input_exact import input_exact_from_context
from ..core.local_check import local_check_from_context
from ..core.output_exact import output_exact_from_context
from ..core.common import prepare_context
from ..core.random_pattern import check_random_patterns
from ..core.result import CheckResult
from ..core.symbolic01x import check_symbolic_01x
from ..generators.benchmarks import BENCHMARK_FACTORIES
from ..partial.blackbox import PartialImplementation
from ..sim.symbolic import symbolic_simulate

# NOTE: repro.jobs imports this module at import time (for
# BenchmarkRow / run_one_case), so everything from repro.jobs must be
# imported lazily inside functions here.

__all__ = ["CHECKS", "ExperimentConfig", "BenchmarkRow", "run_one_case",
           "run_benchmark_row", "run_table"]

#: Check short names in paper column order.
CHECKS = ("r.p.", "0,1,X", "loc.", "oe", "ie")

_CHECK_KEYS = {
    "r.p.": "random_pattern",
    "0,1,X": "symbolic_01x",
    "loc.": "local",
    "oe": "output_exact",
    "ie": "input_exact",
}


@dataclass
class ExperimentConfig:
    """Parameters of one table experiment.

    The paper's setting is ``selections=5, errors=100, patterns=5000``;
    the defaults here are scaled down so a full table regenerates in
    minutes of pure-Python time.  Pass ``full=True`` factory for the
    paper-scale campaign.
    """

    fraction: float = 0.1
    num_boxes: int = 1
    selections: int = 2
    errors: int = 10
    patterns: int = 500
    seed: int = 2001
    checks: Sequence[str] = CHECKS
    benchmarks: Optional[Sequence[str]] = None
    #: In-process resource governance (see :mod:`repro.resilience`):
    #: per-check live BDD node ceiling and cooperative per-case
    #: wall-clock deadline.  ``None`` disables the respective limit;
    #: a governed check that overruns degrades to ``inconclusive``
    #: instead of running away or being SIGKILLed.
    node_limit: Optional[int] = None
    soft_timeout: Optional[float] = None
    #: Static analysis (see :mod:`repro.analysis.static` and
    #: ``docs/static-analysis.md``): run the cone-hash/ternary
    #: preflight before each case's checks, and/or replay verdicts
    #: from a content-addressed check cache rooted at ``check_cache``.
    preflight: bool = False
    check_cache: Optional[str] = None
    #: BDD backend for the symbolic checks (``"dict"`` / ``"arena"`` /
    #: ``"legacy"``, see :mod:`repro.bdd.backends`).  ``None`` consults
    #: ``$REPRO_BDD_BACKEND`` at case-enumeration time; the resolved
    #: name is recorded in every case spec so journals stay
    #: deterministic.
    backend: Optional[str] = None
    #: Engine strategy for the symbolic 0,1,X and output exact checks
    #: (see :mod:`repro.core.portfolio` and ``docs/sat.md``):
    #: ``None``/``"bdd"`` runs the BDD algorithms, ``"sat"`` the SAT
    #: encodings, ``"portfolio"`` races both deterministically and
    #: keeps the first answer (winner journaled per check).
    strategy: Optional[str] = None

    @classmethod
    def paper_scale(cls, **overrides) -> "ExperimentConfig":
        """The paper's original campaign size (slow in pure Python)."""
        params = dict(selections=5, errors=100, patterns=5000)
        params.update(overrides)
        return cls(**params)


@dataclass
class BenchmarkRow:
    """One row of a results table (aggregated over all cases).

    A campaign may degrade gracefully: cases whose check was killed at
    a deadline (``timeouts``) or raised (``check_errors``) are excluded
    from the per-check denominators (``valid``) and from the node/time
    averages, and counted separately so tables can report them.
    """

    circuit: str
    inputs: int
    outputs: int
    spec_nodes: int
    cases: int = 0
    detected: Dict[str, float] = field(default_factory=dict)
    impl_nodes: Dict[str, float] = field(default_factory=dict)
    peak_nodes: Dict[str, float] = field(default_factory=dict)
    #: mean seconds per case, per check
    runtime: Dict[str, float] = field(default_factory=dict)
    #: seconds-per-case distribution tails over valid cases, per check
    #: (nearest-rank percentiles — deterministic, no interpolation)
    runtime_p50: Dict[str, float] = field(default_factory=dict)
    runtime_p95: Dict[str, float] = field(default_factory=dict)
    #: total dynamic-reordering passes / garbage collections, per check
    #: (summed over valid cases, from the per-check manager counters)
    reorders: Dict[str, int] = field(default_factory=dict)
    gc_runs: Dict[str, int] = field(default_factory=dict)
    #: total computed-table hits / misses / evictions, per check
    #: (summed over valid cases; see :meth:`cache_hit_rate`)
    cache_hits: Dict[str, int] = field(default_factory=dict)
    cache_misses: Dict[str, int] = field(default_factory=dict)
    cache_evictions: Dict[str, int] = field(default_factory=dict)
    #: arena-backend unique-table health, per check: mean load factor
    #: over valid cases, worst 95th-percentile probe length, total
    #: resizes (all zero on the dict backend)
    unique_load_factor: Dict[str, float] = field(default_factory=dict)
    unique_probe_p95: Dict[str, int] = field(default_factory=dict)
    unique_resizes: Dict[str, int] = field(default_factory=dict)
    #: cases with a usable verdict, per check (defaults to ``cases``)
    valid: Dict[str, int] = field(default_factory=dict)
    #: cases killed at the campaign deadline, per check
    timeouts: Dict[str, int] = field(default_factory=dict)
    #: cases whose check raised, per check
    check_errors: Dict[str, int] = field(default_factory=dict)
    #: cases stopped cooperatively at a resource budget, per check
    #: (their best-effort verdict lives in the strongest-level fold)
    inconclusive: Dict[str, int] = field(default_factory=dict)
    #: budget-degraded cases whose strongest *completed* level still
    #: detected the error (numerator) / reached any verdict at all
    #: (denominator) — the best-effort detection the tables footnote
    strongest_detected: int = 0
    strongest_valid: int = 0
    #: verdicts replayed from the content-addressed check cache, per
    #: check (the replayed numbers are byte-identical to an execution,
    #: so these cases also count in ``valid`` and the averages)
    check_cache_hits: Dict[str, int] = field(default_factory=dict)
    #: portfolio race outcomes, per check: how many valid cases each
    #: engine answered first (all zero without ``strategy=``; see
    #: :mod:`repro.core.portfolio`)
    sat_wins: Dict[str, int] = field(default_factory=dict)
    bdd_wins: Dict[str, int] = field(default_factory=dict)
    #: output cones the static preflight discharged, summed over cases
    discharged_outputs: int = 0
    #: total wall-clock spent on this row's cases
    wall_seconds: float = 0.0

    def detection_ratio(self, check: str) -> float:
        """Fraction of inserted errors the check reported, in percent.

        Timed-out / errored cases do not count as "not detected": the
        denominator is the number of cases with a usable verdict.
        """
        denominator = self.valid.get(check, self.cases)
        if not denominator:
            return 0.0
        return 100.0 * self.detected.get(check, 0) / denominator

    def cache_hit_rate(self, check: str) -> float:
        """Computed-table hit rate of one check, over its valid cases."""
        hits = self.cache_hits.get(check, 0)
        lookups = hits + self.cache_misses.get(check, 0)
        if not lookups:
            return 0.0
        return hits / lookups

    @property
    def degraded_cases(self) -> int:
        """Check executions without an authoritative verdict
        (timeouts + errors + budget-inconclusive)."""
        return (sum(self.timeouts.values())
                + sum(self.check_errors.values())
                + sum(self.inconclusive.values()))


def run_one_case(spec: Circuit, partial: PartialImplementation,
                 checks: Sequence[str], patterns: int,
                 seed: int, budget=None,
                 bdd_factory=None,
                 rp_engine: str = "packed",
                 backend: Optional[str] = None,
                 strategy: Optional[str] = None)\
        -> Dict[str, CheckResult]:
    """All requested checks on one (spec, partial) pair.

    Each symbolic check runs on a fresh BDD manager so that the node and
    peak statistics are attributable to that check alone (matching how
    the paper reports per-check peaks).  ``bdd_factory`` supplies those
    managers (default :func:`~repro.bdd.function.default_bdd`); the
    before/after benchmark passes the legacy reference factory here,
    together with ``rp_engine="scalar"`` so its "before" side also runs
    the historic one-pattern-at-a-time random-pattern engine.
    ``backend`` is the declarative equivalent (``"dict"`` / ``"arena"``
    / ``"legacy"``, see :mod:`repro.bdd.backends`) used by campaign
    workers, which ship case *coordinates* instead of callables; it is
    mutually exclusive with ``bdd_factory``.

    A ``budget`` (:class:`repro.resilience.budget.Budget`) is attached
    to every fresh manager; an overrunning check raises
    ``BudgetExceededError`` for the caller (the campaign worker) to
    degrade into an ``inconclusive`` outcome.  Because each check gets
    its own manager, the node ceiling governs each check separately
    while the wall clock spans the whole case.

    ``strategy`` selects the engine for the symbolic 0,1,X and output
    exact checks (``None``/``"bdd"``, ``"sat"``, ``"portfolio"`` —
    see :mod:`repro.core.portfolio`); the winning engine lands in the
    result's ``stats["engine"]``.
    """
    from ..core.portfolio import (normalize_strategy,
                                  race_output_exact, race_symbolic_01x)

    strategy = normalize_strategy(strategy)
    if bdd_factory is None:
        from ..bdd.backends import default_bdd_for_backend

        bdd_factory = default_bdd_for_backend(backend)
    elif backend is not None:
        raise ValueError("pass either bdd_factory= or backend=, "
                         "not both")
    tracer = get_tracer()
    results: Dict[str, CheckResult] = {}
    for short in checks:
        try:
            key = _CHECK_KEYS[short]
        except KeyError:
            raise ValueError("unknown check %r (choose from %s)"
                             % (short, ", ".join(CHECKS))) from None
        span = None if tracer is None \
            else tracer.span("check:%s" % key)
        try:
            if key == "random_pattern":
                results[short] = check_random_patterns(
                    spec, partial, patterns=patterns, seed=seed,
                    budget=budget, engine=rp_engine)
                if span is not None:
                    result = results[short]
                    span.note(verdict=result.outcome,
                              error_found=result.error_found,
                              seconds=result.seconds)
            else:
                bdd = bdd_factory()
                if budget is not None:
                    budget.start()
                    bdd.set_budget(budget)
                if tracer is not None:
                    bdd.set_tracer(tracer)
                before = ManagerSnapshot.capture(bdd)
                if key == "symbolic_01x":
                    if strategy is not None:
                        results[short] = race_symbolic_01x(
                            spec, partial, bdd, budget=budget,
                            strategy=strategy)
                    else:
                        results[short] = check_symbolic_01x(
                            spec, partial, bdd)
                elif key == "output_exact" and strategy is not None:
                    results[short] = race_output_exact(
                        spec, partial, bdd, budget=budget,
                        strategy=strategy)
                else:
                    ctx = prepare_context(spec, partial, bdd)
                    if key == "local":
                        results[short] = local_check_from_context(ctx)
                    elif key == "output_exact":
                        results[short] = output_exact_from_context(ctx)
                    else:
                        results[short] = input_exact_from_context(ctx)
                _attach_cache_stats(results[short], bdd, before)
                if span is not None:
                    result = results[short]
                    span.note(verdict=result.outcome,
                              error_found=result.error_found,
                              seconds=result.seconds,
                              peak_nodes=bdd.peak_live_nodes,
                              cache_hits=result.stats["cache_hits"],
                              cache_misses=result.stats["cache_misses"])
        finally:
            if span is not None:
                span.done()
    return results


def _attach_cache_stats(result: CheckResult, bdd,
                        before: Optional[ManagerSnapshot] = None)\
        -> None:
    """Fold the manager's computed-table traffic into ``result.stats``.

    The traffic is the *delta* against the ``before`` snapshot taken
    when this check started on the manager.  For the usual fresh
    manager the delta equals the totals; when a caller reuses one
    manager across consecutive checks (a custom ``bdd_factory``), the
    snapshot keeps each check's numbers its own — attributing the
    cumulative totals to every check double-counted the earlier
    checks' traffic (regression-tested in
    ``tests/obs/test_ladder_tracing.py``).  The maintenance deltas
    (``gc_runs``, ``reorders``) ride along for campaign aggregation.
    """
    if before is None:
        before = ManagerSnapshot()
    result.stats.update(before.delta(ManagerSnapshot.capture(bdd)))
    result.stats.update(unique_table_summary(bdd))


def _tune_spec(spec: Circuit) -> Tuple[Circuit, int]:
    """Sift the specification once; bake the order into the circuit.

    Returns ``(spec with tuned input order, spec BDD node count)``.
    Re-declaring the inputs in the sifted order warm-starts every
    subsequent per-case BDD manager, which cuts the dynamic-reordering
    cost of the campaign dramatically (the checks still reorder when a
    particular case blows up).
    """
    bdd = default_bdd()
    fns = symbolic_simulate(spec, bdd)
    roots = [fns[n].node for n in spec.outputs]
    bdd.reorder()
    nodes = bdd.manager.size(roots)
    input_set = set(spec.inputs)
    tuned = [v for v in bdd.var_order if v in input_set]
    return spec.with_input_order(tuned), nodes


def run_benchmark_row(name: str, spec: Circuit,
                      config: ExperimentConfig,
                      progress: Optional[Callable[[str], None]] = None)\
        -> BenchmarkRow:
    """Run the full campaign for one benchmark circuit, in-process.

    Cases are enumerated and executed through :mod:`repro.jobs`, so the
    per-case seeds are derived from coordinates (benchmark, selection,
    error index) rather than consumed from a shared sequential stream:
    re-running any subset of the campaign — or sharding it across
    workers — reproduces exactly the same cases.
    """
    from ..jobs.aggregate import row_from_records
    from ..jobs.spec import enumerate_cases
    from ..jobs.worker import execute_case

    records = []
    for case in enumerate_cases(config, benchmarks=[name]):
        records.append(execute_case(case, spec=spec))
        if progress is not None:
            progress("%s sel %d/%d err %d/%d" % (
                name, case.selection + 1, config.selections,
                case.error_index + 1, config.errors))
    return row_from_records(name, records, config.checks)


def run_table(config: ExperimentConfig,
              progress: Optional[Callable[[str], None]] = None,
              jobs: int = 1,
              timeout: Optional[float] = None,
              journal: Optional[str] = None,
              resume: Optional[str] = None,
              shards: int = 0,
              fleet_config=None) -> List[BenchmarkRow]:
    """Run the campaign for every benchmark (one table of the paper).

    ``jobs``/``timeout``/``journal``/``resume``/``shards`` route
    execution through the :mod:`repro.jobs` engine (parallel workers,
    per-case deadlines, checkpoint/resume, or the supervised shard
    fleet); the defaults keep the historic in-process serial path.
    All paths aggregate identically.  ``fleet_config`` (a
    :class:`repro.fleet.FleetConfig`) overrides fleet supervision
    knobs — ``--no-steal`` and drill pacing come through here.
    """
    names = list(config.benchmarks or BENCHMARK_FACTORIES)
    if jobs > 1 or shards or timeout is not None or journal or resume:
        from ..jobs.engine import run_campaign

        result = run_campaign(config, benchmarks=names, jobs=jobs,
                              timeout=timeout, journal=journal,
                              resume=resume, progress=progress,
                              shards=shards,
                              fleet_config=fleet_config)
        return [result.rows[name] for name in names]
    rows: List[BenchmarkRow] = []
    for name in names:
        spec = BENCHMARK_FACTORIES[name]()
        rows.append(run_benchmark_row(name, spec, config,
                                      progress=progress))
    return rows
