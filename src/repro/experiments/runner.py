"""Experiment driver reproducing the paper's evaluation (Section 3).

For each benchmark circuit: carve a fraction of the gates into Black
Boxes (several random selections), insert random errors into the kept
logic, and run all five checks on every mutated partial implementation.
Reported per circuit, averaged over selections: detection ratio per
check, BDD node counts (specification, implementation, peak during
check) and run times — the columns of Tables 1 and 2.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bdd import default_bdd
from ..circuit.netlist import Circuit
from ..core.input_exact import input_exact_from_context
from ..core.local_check import local_check_from_context
from ..core.output_exact import output_exact_from_context
from ..core.common import prepare_context
from ..core.random_pattern import check_random_patterns
from ..core.result import CheckResult
from ..core.symbolic01x import check_symbolic_01x
from ..generators.benchmarks import BENCHMARK_FACTORIES
from ..partial.blackbox import PartialImplementation
from ..partial.extraction import make_partial
from ..partial.mutations import insert_random_error
from ..sim.symbolic import symbolic_simulate

__all__ = ["CHECKS", "ExperimentConfig", "BenchmarkRow", "run_one_case",
           "run_benchmark_row", "run_table"]

#: Check short names in paper column order.
CHECKS = ("r.p.", "0,1,X", "loc.", "oe", "ie")

_CHECK_KEYS = {
    "r.p.": "random_pattern",
    "0,1,X": "symbolic_01x",
    "loc.": "local",
    "oe": "output_exact",
    "ie": "input_exact",
}


@dataclass
class ExperimentConfig:
    """Parameters of one table experiment.

    The paper's setting is ``selections=5, errors=100, patterns=5000``;
    the defaults here are scaled down so a full table regenerates in
    minutes of pure-Python time.  Pass ``full=True`` factory for the
    paper-scale campaign.
    """

    fraction: float = 0.1
    num_boxes: int = 1
    selections: int = 2
    errors: int = 10
    patterns: int = 500
    seed: int = 2001
    checks: Sequence[str] = CHECKS
    benchmarks: Optional[Sequence[str]] = None

    @classmethod
    def paper_scale(cls, **overrides) -> "ExperimentConfig":
        """The paper's original campaign size (slow in pure Python)."""
        params = dict(selections=5, errors=100, patterns=5000)
        params.update(overrides)
        return cls(**params)


@dataclass
class BenchmarkRow:
    """One row of a results table (aggregated over all cases)."""

    circuit: str
    inputs: int
    outputs: int
    spec_nodes: int
    cases: int = 0
    detected: Dict[str, float] = field(default_factory=dict)
    impl_nodes: Dict[str, float] = field(default_factory=dict)
    peak_nodes: Dict[str, float] = field(default_factory=dict)
    #: mean seconds per case, per check
    runtime: Dict[str, float] = field(default_factory=dict)

    def detection_ratio(self, check: str) -> float:
        """Fraction of inserted errors the check reported, in percent."""
        if not self.cases:
            return 0.0
        return 100.0 * self.detected.get(check, 0) / self.cases


def run_one_case(spec: Circuit, partial: PartialImplementation,
                 checks: Sequence[str], patterns: int,
                 seed: int) -> Dict[str, CheckResult]:
    """All requested checks on one (spec, partial) pair.

    Each symbolic check runs on a fresh BDD manager so that the node and
    peak statistics are attributable to that check alone (matching how
    the paper reports per-check peaks).
    """
    results: Dict[str, CheckResult] = {}
    for short in checks:
        try:
            key = _CHECK_KEYS[short]
        except KeyError:
            raise ValueError("unknown check %r (choose from %s)"
                             % (short, ", ".join(CHECKS))) from None
        if key == "random_pattern":
            results[short] = check_random_patterns(
                spec, partial, patterns=patterns, seed=seed)
        elif key == "symbolic_01x":
            results[short] = check_symbolic_01x(spec, partial,
                                                default_bdd())
        else:
            ctx = prepare_context(spec, partial, default_bdd())
            if key == "local":
                results[short] = local_check_from_context(ctx)
            elif key == "output_exact":
                results[short] = output_exact_from_context(ctx)
            else:
                results[short] = input_exact_from_context(ctx)
    return results


def _tune_spec(spec: Circuit) -> Tuple[Circuit, int]:
    """Sift the specification once; bake the order into the circuit.

    Returns ``(spec with tuned input order, spec BDD node count)``.
    Re-declaring the inputs in the sifted order warm-starts every
    subsequent per-case BDD manager, which cuts the dynamic-reordering
    cost of the campaign dramatically (the checks still reorder when a
    particular case blows up).
    """
    bdd = default_bdd()
    fns = symbolic_simulate(spec, bdd)
    roots = [fns[n].node for n in spec.outputs]
    bdd.reorder()
    nodes = bdd.manager.size(roots)
    input_set = set(spec.inputs)
    tuned = [v for v in bdd.var_order if v in input_set]
    return spec.with_input_order(tuned), nodes


def run_benchmark_row(name: str, spec: Circuit,
                      config: ExperimentConfig,
                      progress: Optional[Callable[[str], None]] = None)\
        -> BenchmarkRow:
    """Run the full campaign for one benchmark circuit."""
    spec, spec_nodes = _tune_spec(spec)
    row = BenchmarkRow(circuit=name, inputs=len(spec.inputs),
                       outputs=len(spec.outputs),
                       spec_nodes=spec_nodes)
    for check in config.checks:
        row.detected[check] = 0
        row.impl_nodes[check] = 0.0
        row.peak_nodes[check] = 0.0
        row.runtime[check] = 0.0

    master = random.Random("%d/%s" % (config.seed, name))
    for selection in range(config.selections):
        partial = make_partial(spec, fraction=config.fraction,
                               num_boxes=config.num_boxes,
                               seed=master.randrange(1 << 30))
        mut_rng = random.Random(master.randrange(1 << 30))
        for error_index in range(config.errors):
            mutated, _ = insert_random_error(partial.circuit, mut_rng)
            case = PartialImplementation(mutated, partial.boxes)
            results = run_one_case(spec, case, config.checks,
                                   config.patterns,
                                   seed=master.randrange(1 << 30))
            row.cases += 1
            for check, result in results.items():
                row.detected[check] += int(result.error_found)
                row.impl_nodes[check] += result.stats.get("impl_nodes", 0)
                row.peak_nodes[check] += result.stats.get("peak_nodes", 0)
                row.runtime[check] += result.seconds
            if progress is not None:
                progress("%s sel %d/%d err %d/%d" % (
                    name, selection + 1, config.selections,
                    error_index + 1, config.errors))
    for check in config.checks:
        if row.cases:
            row.impl_nodes[check] /= row.cases
            row.peak_nodes[check] /= row.cases
            row.runtime[check] /= row.cases
    return row


def run_table(config: ExperimentConfig,
              progress: Optional[Callable[[str], None]] = None)\
        -> List[BenchmarkRow]:
    """Run the campaign for every benchmark (one table of the paper)."""
    names = list(config.benchmarks or BENCHMARK_FACTORIES)
    rows: List[BenchmarkRow] = []
    for name in names:
        spec = BENCHMARK_FACTORIES[name]()
        rows.append(run_benchmark_row(name, spec, config,
                                      progress=progress))
    return rows
