"""Statistics helpers for detection-ratio reporting.

The paper reports plain detection percentages over 500 cases per row;
our scaled-down campaigns have far fewer cases, so the harness can also
report Wilson score intervals to make the uncertainty visible when
comparing against the paper's numbers.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["wilson_interval", "detection_interval", "mean", "stddev"]


def wilson_interval(successes: int, trials: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)`` in [0, 1]; the default ``z`` gives a 95%
    interval.  Well-behaved for the small ``trials`` of quick campaigns
    (unlike the normal approximation).
    """
    if trials <= 0:
        raise ValueError("need at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, center - margin), min(1.0, center + margin))


def detection_interval(detected: float, cases: int,
                       z: float = 1.96) -> Tuple[float, float]:
    """Wilson interval for a detection ratio, in percent."""
    low, high = wilson_interval(int(round(detected)), cases, z=z)
    return (100.0 * low, 100.0 * high)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (errors on empty input)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values)
                     / (len(values) - 1))
