"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro.experiments table1
    python -m repro.experiments table2 --errors 20 --selections 3
    python -m repro.experiments table2 --stats   # + computed-table traffic
    python -m repro.experiments table40 --benchmarks alu4,comp
    python -m repro.experiments figures
    python -m repro.experiments table1 --paper-scale   # hours, faithful
    python -m repro.experiments lint examples/circuits/*.blif
    python -m repro.experiments trace record --benchmark C880
    python -m repro.experiments trace diff before.json after.json
    python -m repro.experiments cache info .check-cache
    python -m repro.experiments cache prune .check-cache --max-bytes 5000000

Campaigns shard across cores, checkpoint, and resume (docs/parallel.md)::

    python -m repro.experiments table1 --jobs 8 --timeout 120 \\
        --journal table1.jsonl
    python -m repro.experiments table1 --jobs 8 --resume table1.jsonl
    python -m repro.experiments table1 --format json > table1.json

All progress goes to stderr; stdout carries only the table (or the
--format json/csv export), so redirection is always clean.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core.ladder import CHECK_ORDER, run_ladder
from ..generators.benchmarks import BENCHMARK_NAMES
from ..jobs.journal import JournalWriteError
from ..generators.paper_examples import ALL_FIGURES
from .runner import ExperimentConfig, run_table
from .tables import format_table

__all__ = ["main"]

_TABLES = {
    "table1": dict(fraction=0.1, num_boxes=1,
                   title="Table 1: 10% of the gates in one Black Box"),
    "table2": dict(fraction=0.1, num_boxes=5,
                   title="Table 2: 10% of the gates in five Black Boxes"),
    "table40": dict(fraction=0.4, num_boxes=1,
                    title="40% variant: 40% of the gates in one Black "
                          "Box (Section 3, tech-report experiment)"),
}


def _run_figures() -> int:
    print("Paper figures (Sections 2.1-2.2.3): first check that finds "
          "the inserted error\n")
    for name, (factory, expected) in ALL_FIGURES.items():
        spec, partial = factory()
        results = run_ladder(spec, partial,
                             checks=[c for c in CHECK_ORDER
                                     if c != "random_pattern"],
                             stop_at_first_error=False)
        first = next((r.check for r in results if r.error_found), None)
        status = "OK" if first == expected else "MISMATCH"
        print("%-9s expected %-12s found-by %-12s [%s]"
              % (name, expected or "-", first or "-", status))
    return 0


def _interrupted(progress_done, args) -> int:
    """Ctrl-C handling: flush progress, print a resume hint, exit 130.

    The journal writer appends (and flushes) each record as it lands
    and the engine closes it on the way out, so everything completed
    before the interrupt is already safe on disk.
    """
    progress_done()
    journal = args.journal or args.resume
    if journal:
        print("interrupted — completed cases are safe in %s; rerun "
              "with --resume %s to continue" % (journal, journal),
              file=sys.stderr)
    else:
        print("interrupted — no journal was active; rerun with "
              "--journal FILE to make campaigns resumable",
              file=sys.stderr)
    return 130


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # The linter has its own option set (files, --format, ...) that
        # clashes with the experiment flags, so it dispatches early.
        from ..analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "trace":
        # Likewise the observability tool (record/summary/diff).
        from ..obs.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "cache":
        # And the check-cache housekeeping tool (info/prune).
        from ..analysis.static.cli import main as cache_main

        return cache_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation of 'Checking Equivalence "
                    "for Partial Implementations' (DAC 2001)")
    parser.add_argument("experiment",
                        choices=sorted(_TABLES) + ["figures", "sweep"],
                        help="which table/figure set to regenerate "
                             "(also: 'lint FILE...' runs the netlist "
                             "linter, 'trace record|summary|diff' "
                             "the observability tool, and 'cache "
                             "info|prune' the check-cache tool, see "
                             "their '--help')")
    parser.add_argument("--selections", type=int, default=None,
                        help="random Black Box selections per circuit "
                             "(paper: 5)")
    parser.add_argument("--errors", type=int, default=None,
                        help="error insertions per selection (paper: 100)")
    parser.add_argument("--patterns", type=int, default=None,
                        help="random patterns for the r.p. check "
                             "(paper: 5000)")
    parser.add_argument("--seed", type=int, default=2001)
    parser.add_argument("--benchmarks", type=str, default=None,
                        help="comma-separated circuit subset (default: "
                             "all: %s)" % ",".join(BENCHMARK_NAMES))
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's campaign size "
                             "(5 selections x 100 errors x 5000 patterns)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the campaign "
                             "(default 1 = in-process serial; results "
                             "are bit-identical either way)")
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="run the campaign on a supervised fleet "
                             "of N shard processes with work-stealing "
                             "and crash recovery (docs/parallel.md); "
                             "shard journals live in "
                             "<journal>.fleet/; results are "
                             "bit-identical to a serial run; mutually "
                             "exclusive with --jobs")
    parser.add_argument("--no-steal", action="store_true",
                        help="disable work-stealing between shards "
                             "(with --shards); every case runs on its "
                             "home shard unless its shard dies, which "
                             "makes fault drills deterministic")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-case wall-clock deadline; an overdue "
                             "case is killed and recorded as TIMEOUT "
                             "instead of aborting the campaign")
    parser.add_argument("--soft-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="cooperative per-case deadline: the case "
                             "stops itself and records the strongest "
                             "completed check's verdict as INCONCLUSIVE "
                             "instead of being killed (defaults to "
                             "0.9 x --timeout when --timeout is given)")
    parser.add_argument("--node-limit", type=int, default=None,
                        metavar="NODES",
                        help="max live BDD nodes per check; an "
                             "overrunning check degrades to "
                             "INCONCLUSIVE with per-level stats")
    parser.add_argument("--backend", choices=("dict", "arena", "legacy"),
                        default=None,
                        help="BDD backend for the symbolic checks: "
                             "'dict' (pure Python, default), 'arena' "
                             "(numpy struct-of-arrays, fastest; "
                             "requires numpy) or 'legacy' (frozen PR-4 "
                             "reference).  Defaults to "
                             "$REPRO_BDD_BACKEND, else 'dict'.  The "
                             "resolved backend is recorded in every "
                             "case spec, so journals are deterministic")
    parser.add_argument("--strategy", choices=("bdd", "portfolio",
                                               "sat"),
                        default=None,
                        help="engine for the symbolic 0,1,X and "
                             "output exact checks: 'bdd' (default), "
                             "'sat' (CDCL miter / CEGAR encodings) or "
                             "'portfolio' (race both under "
                             "deterministic step quanta; first answer "
                             "wins and the winning engine is "
                             "journaled per check — see docs/sat.md)")
    parser.add_argument("--preflight", action="store_true",
                        help="run the static cone-hash/ternary "
                             "preflight before each case's checks; "
                             "statically decided cases never build a "
                             "BDD (see docs/static-analysis.md)")
    parser.add_argument("--check-cache", metavar="DIR", default=None,
                        help="content-addressed check-verdict cache "
                             "directory; verdicts already proven for "
                             "an identical (spec, impl, check, budget) "
                             "are replayed byte-identically instead of "
                             "re-running")
    parser.add_argument("--journal", metavar="FILE", default=None,
                        help="append per-case results to a JSONL "
                             "checkpoint as they complete")
    parser.add_argument("--resume", metavar="FILE", default=None,
                        help="skip cases already completed in this "
                             "journal, then continue appending to it")
    parser.add_argument("--trace-dir", metavar="DIR", default=None,
                        help="write one JSONL trace per case into DIR "
                             "(sets REPRO_TRACE_DIR, inherited by "
                             "worker processes; inspect with 'trace "
                             "summary', see docs/observability.md)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    parser.add_argument("--format", choices=("table", "json", "csv"),
                        default="table",
                        help="stdout format (progress stays on stderr)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="additionally write results as JSON")
    parser.add_argument("--csv", metavar="FILE", default=None,
                        help="additionally write results as CSV")
    parser.add_argument("--stats", action="store_true",
                        help="also print computed-table traffic per "
                             "check (hits/misses/evictions, hit rate)")
    parser.add_argument("--compare", action="store_true",
                        help="also print a measured-vs-paper comparison "
                             "(tables 1 and 2 only)")
    args = parser.parse_args(argv)
    from ..bdd import arena_available, resolve_backend

    if resolve_backend(args.backend) == "arena" and not arena_available():
        # Fail at the front door with the structured diagnostic — not
        # with an ImportError traceback from deep inside a worker.
        from ..bdd.arena import ArenaUnavailableError

        diag = ArenaUnavailableError().diagnostic
        print("error: %s: %s\nhint: %s"
              % (diag["error"], diag["reason"], diag["hint"]),
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.shards < 0:
        parser.error("--shards must be >= 1 (0 disables the fleet)")
    if args.shards and args.jobs > 1:
        parser.error("--shards and --jobs are mutually exclusive: "
                     "with a fleet, parallelism is the shard count")
    if args.no_steal and not args.shards:
        parser.error("--no-steal requires --shards")
    fleet_config = None
    if args.no_steal:
        from ..fleet import FleetConfig

        # from_env keeps REPRO_FLEET_HEARTBEAT pacing applicable (the
        # CI fault drills set both).
        fleet_config = FleetConfig.from_env(steal=False)
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.soft_timeout is not None and args.soft_timeout <= 0:
        parser.error("--soft-timeout must be positive")
    if args.node_limit is not None and args.node_limit <= 0:
        parser.error("--node-limit must be positive")
    if args.trace_dir:
        import os

        os.makedirs(args.trace_dir, exist_ok=True)
        # Environment, not a parameter: spawn-based pool workers inherit
        # it, so per-case tracing works identically for --jobs N.
        os.environ["REPRO_TRACE_DIR"] = args.trace_dir
    if args.soft_timeout is None and args.timeout is not None:
        # Give the cooperative path a head start on the SIGKILL hard
        # deadline, so a governed case degrades to INCONCLUSIVE (with
        # its strongest completed verdict) instead of dying as TIMEOUT.
        args.soft_timeout = 0.9 * args.timeout

    if args.experiment == "figures":
        return _run_figures()

    # Progress — every path, including the worker pool's per-case
    # reporting — writes to stderr only, so piping stdout (the table or
    # a --format json/csv export) never picks up progress lines.
    progress = None
    if not args.quiet:
        def progress(message: str) -> None:
            print("\r%-70s" % message[:70], end="", file=sys.stderr,
                  flush=True)

    def progress_done() -> None:
        if progress is not None:
            print(file=sys.stderr)

    if args.experiment == "sweep":
        from ..generators.benchmarks import BENCHMARK_FACTORIES
        from .sweep import format_sweep, run_fraction_sweep

        names = ([n.strip() for n in args.benchmarks.split(",")]
                 if args.benchmarks else ["alu4", "comp"])
        unknown = set(names) - set(BENCHMARK_NAMES)
        if unknown:
            parser.error("unknown benchmarks: %s" % ", ".join(unknown))
        for bench_name in names:
            try:
                points = run_fraction_sweep(
                    bench_name, BENCHMARK_FACTORIES[bench_name](),
                    errors=args.errors or 6,
                    selections=args.selections or 1,
                    patterns=args.patterns or 300, seed=args.seed,
                    progress=progress, jobs=args.jobs,
                    timeout=args.timeout, journal=args.journal,
                    resume=args.resume,
                    node_limit=args.node_limit,
                    soft_timeout=args.soft_timeout,
                    shards=args.shards,
                    fleet_config=fleet_config)
            except KeyboardInterrupt:
                return _interrupted(progress_done, args)
            except JournalWriteError as exc:
                progress_done()
                print("error: %s" % exc, file=sys.stderr)
                return 1
            progress_done()
            print(format_sweep(bench_name, points))
            print()
        return 0

    table = _TABLES[args.experiment]
    overrides = dict(fraction=table["fraction"],
                     num_boxes=table["num_boxes"], seed=args.seed)
    if args.benchmarks:
        names = [n.strip() for n in args.benchmarks.split(",")]
        unknown = set(names) - set(BENCHMARK_NAMES)
        if unknown:
            parser.error("unknown benchmarks: %s" % ", ".join(unknown))
        overrides["benchmarks"] = names
    for attr in ("selections", "errors", "patterns", "node_limit",
                 "soft_timeout", "check_cache", "backend", "strategy"):
        value = getattr(args, attr)
        if value is not None:
            overrides[attr] = value
    if args.preflight:
        overrides["preflight"] = True
    if args.paper_scale:
        config = ExperimentConfig.paper_scale(**overrides)
    else:
        config = ExperimentConfig(**overrides)

    try:
        rows = run_table(config, progress=progress, jobs=args.jobs,
                         timeout=args.timeout, journal=args.journal,
                         resume=args.resume, shards=args.shards,
                         fleet_config=fleet_config)
    except KeyboardInterrupt:
        return _interrupted(progress_done, args)
    except JournalWriteError as exc:
        progress_done()
        print("error: %s" % exc, file=sys.stderr)
        return 1
    progress_done()
    if args.json:
        from .export import rows_to_json

        with open(args.json, "w") as handle:
            handle.write(rows_to_json(rows))
    if args.csv:
        from .export import rows_to_csv

        with open(args.csv, "w") as handle:
            handle.write(rows_to_csv(rows))
    if args.format == "json":
        from .export import rows_to_json

        print(rows_to_json(rows))
        return 0
    if args.format == "csv":
        from .export import rows_to_csv

        print(rows_to_csv(rows), end="")
        return 0
    print(format_table(
        rows,
        "%s  (%d selections x %d errors, %d patterns, seed %d)"
        % (table["title"], config.selections, config.errors,
           config.patterns, config.seed)))
    if args.stats:
        from .tables import format_cache_stats

        print()
        print(format_cache_stats(rows, checks=config.checks))
    if args.compare and args.experiment in ("table1", "table2"):
        from .paper_reference import (PAPER_TABLE1, PAPER_TABLE2,
                                      format_comparison)

        reference = PAPER_TABLE1 if args.experiment == "table1" \
            else PAPER_TABLE2
        print()
        print("measured vs paper (detection ratios):")
        print(format_comparison(rows, reference))
    return 0


if __name__ == "__main__":
    sys.exit(main())
