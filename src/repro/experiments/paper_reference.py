"""The paper's published numbers (DAC 2001, Tables 1 and 2).

Detection-ratio columns as printed in the paper; the random-pattern
("r.p.") column is only legible for the average rows of the source
scan, so per-circuit entries carry ``None`` there.  Used to render
measured-vs-paper comparisons.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .runner import BenchmarkRow

__all__ = ["PAPER_TABLE1", "PAPER_TABLE2", "format_comparison"]

#: circuit -> {check -> percent}; None where the scan is not legible.
PAPER_TABLE1: Dict[str, Dict[str, Optional[float]]] = {
    "alu4":  {"r.p.": None, "0,1,X": 95, "loc.": 95, "oe": 96, "ie": 96},
    "apex3": {"r.p.": None, "0,1,X": 97, "loc.": 97, "oe": 98, "ie": 98},
    "C499":  {"r.p.": None, "0,1,X": 88, "loc.": 88, "oe": 88, "ie": 96},
    "C880":  {"r.p.": None, "0,1,X": 62, "loc.": 65, "oe": 68, "ie": 80},
    "C1355": {"r.p.": None, "0,1,X": 59, "loc.": 59, "oe": 69, "ie": 80},
    "C1908": {"r.p.": None, "0,1,X": 87, "loc.": 91, "oe": 92, "ie": 92},
    "comp":  {"r.p.": None, "0,1,X": 63, "loc.": 65, "oe": 67, "ie": 90},
    "term1": {"r.p.": None, "0,1,X": 95, "loc.": 95, "oe": 95, "ie": 95},
    "average": {"r.p.": 63, "0,1,X": 81, "loc.": 82, "oe": 84,
                "ie": 91},
}

PAPER_TABLE2: Dict[str, Dict[str, Optional[float]]] = {
    "alu4":  {"r.p.": None, "0,1,X": 92, "loc.": 92, "oe": 94, "ie": 94},
    "apex3": {"r.p.": None, "0,1,X": 96, "loc.": 96, "oe": 98, "ie": 98},
    "C499":  {"r.p.": None, "0,1,X": 88, "loc.": 88, "oe": 88, "ie": 96},
    "C880":  {"r.p.": None, "0,1,X": 54, "loc.": 66, "oe": 72, "ie": 87},
    "C1355": {"r.p.": None, "0,1,X": 44, "loc.": 46, "oe": 58, "ie": 75},
    "C1908": {"r.p.": None, "0,1,X": 75, "loc.": 80, "oe": 82, "ie": 88},
    "comp":  {"r.p.": None, "0,1,X": 43, "loc.": 54, "oe": 57, "ie": 83},
    "term1": {"r.p.": None, "0,1,X": 87, "loc.": 88, "oe": 88, "ie": 92},
    "average": {"r.p.": 53, "0,1,X": 72, "loc.": 76, "oe": 80,
                "ie": 89},
}


def format_comparison(rows: Sequence[BenchmarkRow],
                      reference: Dict[str, Dict[str, Optional[float]]],
                      checks: Sequence[str] = ("0,1,X", "loc.", "oe",
                                               "ie")) -> str:
    """Side-by-side measured vs. paper detection ratios.

    Shape indicators per row: whether both series are monotone and
    whether the biggest jump lands on the same check.
    """
    from .tables import average_row

    lines = ["circuit    " + "  ".join(
        "%13s" % ("%s meas/papr" % c) for c in checks) + "   shape"]
    body = list(rows) + [average_row(rows)]
    for row in body:
        ref = reference.get(row.circuit)
        cells = []
        measured = [row.detection_ratio(c) for c in checks]
        for check, value in zip(checks, measured):
            paper = ref.get(check) if ref else None
            cells.append("%13s" % (
                "%3.0f%% /%4.0f%%" % (value, paper)
                if paper is not None else "%3.0f%% /   ?" % value))
        shape = ""
        if ref and all(ref.get(c) is not None for c in checks):
            paper_series = [float(ref[c]) for c in checks]
            both_monotone = (measured == sorted(measured)
                             and paper_series == sorted(paper_series))
            shape = "monotone" if both_monotone else "check!"
        lines.append("%-9s  %s   %s" % (row.circuit,
                                        "  ".join(cells), shape))
    return "\n".join(lines)
