"""Paper-style text rendering of experiment results."""

from __future__ import annotations

from typing import Sequence

from .runner import CHECKS, BenchmarkRow

__all__ = ["format_table", "average_row", "format_detection_summary",
           "format_cache_stats"]


def average_row(rows: Sequence[BenchmarkRow]) -> BenchmarkRow:
    """The "average" line the paper prints under each table."""
    if not rows:
        raise ValueError("no rows to average")
    avg = BenchmarkRow(circuit="average", inputs=0, outputs=0,
                       spec_nodes=0)
    checks = list(rows[0].detected)
    avg.cases = 1
    for check in checks:
        avg.detected[check] = 0
        ratios = [row.detection_ratio(check) for row in rows]
        avg.impl_nodes[check] = sum(
            row.impl_nodes[check] for row in rows) / len(rows)
        avg.peak_nodes[check] = sum(
            row.peak_nodes[check] for row in rows) / len(rows)
        avg.runtime[check] = sum(
            row.runtime[check] for row in rows) / len(rows)
        avg.timeouts[check] = sum(
            row.timeouts.get(check, 0) for row in rows)
        avg.check_errors[check] = sum(
            row.check_errors.get(check, 0) for row in rows)
        avg.inconclusive[check] = sum(
            row.inconclusive.get(check, 0) for row in rows)
        avg.check_cache_hits[check] = sum(
            row.check_cache_hits.get(check, 0) for row in rows)
        # Encode the average ratio via detected/cases = ratio/100.
        avg.detected[check] = sum(ratios) / len(ratios)
    avg.strongest_detected = sum(row.strongest_detected for row in rows)
    avg.strongest_valid = sum(row.strongest_valid for row in rows)
    avg.discharged_outputs = sum(row.discharged_outputs for row in rows)
    avg.wall_seconds = sum(row.wall_seconds for row in rows)
    avg.cases = 100  # so detection_ratio() returns the mean percentage
    # avg.valid stays empty so detection_ratio falls back to cases.
    return avg


def _degradation_note(row: BenchmarkRow) -> str:
    """Per-check breakdown of a row's missing verdicts, or ""."""
    parts = []
    for check in row.detected:
        t = row.timeouts.get(check, 0)
        e = row.check_errors.get(check, 0)
        i = row.inconclusive.get(check, 0)
        if t or e or i:
            detail = []
            if t:
                detail.append("%d timeout%s" % (t, "s" if t > 1 else ""))
            if e:
                detail.append("%d error%s" % (e, "s" if e > 1 else ""))
            if i:
                detail.append("%d inconclusive" % i)
            parts.append("%s: %s" % (check, ", ".join(detail)))
    return "; ".join(parts)


def format_table(rows: Sequence[BenchmarkRow], title: str,
                 checks: Sequence[str] = CHECKS) -> str:
    """Render rows in the layout of the paper's Tables 1 and 2.

    Campaigns that ran with a deadline may have degraded cases; those
    rows gain a trailing ``t/o err`` column plus footnotes, so a table
    with missing verdicts is visibly different from a clean one.
    """
    sym_checks = [c for c in checks if c != "r.p."]
    degraded = any(row.degraded_cases for row in rows)
    header_1 = ("circuit  in out  #nodes | detected errors | "
                "avg #nodes impl/peak | run time [s]"
                + (" | degraded" if degraded else ""))
    lines = [title, "=" * len(title), header_1, "-" * len(header_1)]
    det_hdr = " ".join("%7s" % c for c in checks)
    node_hdr = " ".join("%9s" % c for c in sym_checks)
    time_hdr = " ".join("%8s" % c for c in checks)
    header_2 = ("%-8s %3s %3s %7s | %s | %s | %s"
                % ("", "", "", "spec", det_hdr, node_hdr, time_hdr))
    if degraded:
        header_2 += " | %4s %4s %4s" % ("t/o", "err", "inc")
    lines.append(header_2)
    body_rows = list(rows)
    body_rows.append(average_row(rows))
    footnotes = []
    for row in body_rows:
        det = " ".join("%6.0f%%" % row.detection_ratio(c) for c in checks)
        nodes = " ".join("%9s" % ("%d/%d" % (row.impl_nodes[c],
                                             row.peak_nodes[c]))
                         for c in sym_checks)
        times = " ".join("%8.2f" % row.runtime[c] for c in checks)
        if row.circuit == "average":
            head = "%-8s %3s %3s %7s" % ("average", "", "", "")
        else:
            head = "%-8s %3d %3d %7d" % (row.circuit, row.inputs,
                                         row.outputs, row.spec_nodes)
        line = "%s | %s | %s | %s" % (head, det, nodes, times)
        if degraded:
            line += " | %4d %4d %4d" % (sum(row.timeouts.values()),
                                        sum(row.check_errors.values()),
                                        sum(row.inconclusive.values()))
            if row.circuit != "average" and row.degraded_cases:
                note = _degradation_note(row)
                if row.strongest_valid:
                    note += ("; best-effort (strongest completed "
                             "level): %d/%d detected"
                             % (row.strongest_detected,
                                row.strongest_valid))
                footnotes.append("  %s — %s" % (row.circuit, note))
        lines.append(line)
    if footnotes:
        lines.append("degraded checks (excluded from detection "
                     "denominators and node/time averages):")
        lines.extend(footnotes)
    cache_hits = sum(sum(row.check_cache_hits.values())
                     for row in rows)
    discharged = sum(row.discharged_outputs for row in rows)
    if cache_hits or discharged:
        lines.append("static analysis: %d check-cache hit(s), %d "
                     "output cone(s) statically discharged"
                     % (cache_hits, discharged))
    winners = []
    for check in checks:
        sat = sum(row.sat_wins.get(check, 0) for row in rows)
        bdd = sum(row.bdd_wins.get(check, 0) for row in rows)
        if sat or bdd:
            winners.append("%s: sat %d / bdd %d" % (check, sat, bdd))
    if winners:
        lines.append("portfolio winners (first engine to answer, "
                     "per check): " + "; ".join(winners))
    return "\n".join(lines)


def format_cache_stats(rows: Sequence[BenchmarkRow],
                       checks: Sequence[str] = CHECKS) -> str:
    """Computed-table traffic per circuit and check (``--stats`` view).

    The random-pattern check runs no symbolic operations, so only the
    symbolic columns are shown.  Totals are summed over the row's valid
    cases; the hit rate is hits / (hits + misses) over those totals.
    """
    sym_checks = [c for c in checks if c != "r.p."]
    title = ("computed-table traffic (hits/misses/evictions, "
             "hit rate over valid cases)")
    lines = [title, "-" * len(title)]
    lines.append("circuit   " + " ".join("%26s" % c for c in sym_checks))
    for row in rows:
        cells = []
        for check in sym_checks:
            cells.append("%26s" % (
                "%d/%d/%d %5.1f%%" % (
                    row.cache_hits.get(check, 0),
                    row.cache_misses.get(check, 0),
                    row.cache_evictions.get(check, 0),
                    100.0 * row.cache_hit_rate(check))))
        lines.append("%-9s " % row.circuit + " ".join(cells))
    if any(row.unique_load_factor.get(check, 0.0)
           or row.unique_resizes.get(check, 0)
           for row in rows for check in sym_checks):
        sub = ("arena unique table (load factor, probe p95, resizes "
               "over valid cases)")
        lines += ["", sub, "-" * len(sub)]
        lines.append("circuit   "
                     + " ".join("%26s" % c for c in sym_checks))
        for row in rows:
            cells = ["%26s" % ("%.2f lf / p95 %d / %d rs" % (
                row.unique_load_factor.get(check, 0.0),
                row.unique_probe_p95.get(check, 0),
                row.unique_resizes.get(check, 0)))
                for check in sym_checks]
            lines.append("%-9s " % row.circuit + " ".join(cells))
    return "\n".join(lines)


def format_detection_summary(rows: Sequence[BenchmarkRow],
                             checks: Sequence[str] = CHECKS) -> str:
    """Compact detection-only view (the paper's headline numbers)."""
    lines = ["circuit   " + " ".join("%7s" % c for c in checks)]
    for row in list(rows) + [average_row(rows)]:
        lines.append("%-9s " % row.circuit + " ".join(
            "%6.0f%%" % row.detection_ratio(c) for c in checks))
    return "\n".join(lines)
