"""Bounded equivalence checks for sequential circuits with Black Boxes.

Realizes the paper's second future-work direction for bounded depth:
two machines are compared over their first ``k`` cycles from reset by
checking the time-frame expansions combinationally.  For partial
designs the per-frame box copies make every reported error sound (a
fortiori: if even frame-varying boxes cannot fix the design, neither
can a fixed one).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..circuit.netlist import CircuitError
from ..core.equivalence import EquivalenceResult, check_equivalence
from ..core.ladder import CHECK_ORDER, run_ladder
from ..core.result import CheckResult
from ..partial.blackbox import BlackBox
from .sequential import SequentialCircuit
from .unroll import unroll, unroll_partial

__all__ = ["check_bounded_equivalence", "check_sequential_partial"]


def check_bounded_equivalence(spec: SequentialCircuit,
                              impl: SequentialCircuit,
                              frames: int) -> EquivalenceResult:
    """Bounded (k-cycle) equivalence of two complete machines.

    Compares all outputs over ``frames`` cycles from the reset states.
    Inputs must have the same names; latch counts may differ freely.
    """
    if spec.inputs != impl.inputs:
        raise CircuitError("primary input lists differ")
    if len(spec.outputs) != len(impl.outputs):
        raise CircuitError("output counts differ")
    spec_u = unroll(spec, frames)
    impl_u = unroll(impl, frames)
    return check_equivalence(spec_u, impl_u)


def check_sequential_partial(spec: SequentialCircuit,
                             impl: SequentialCircuit,
                             boxes: Sequence[BlackBox],
                             frames: int,
                             checks: Sequence[str] = CHECK_ORDER,
                             patterns: int = 500,
                             seed: Optional[int] = None,
                             stop_at_first_error: bool = True)\
        -> List[CheckResult]:
    """Bounded Black Box equivalence check of a partial machine.

    ``boxes`` describe the unknown regions of ``impl``'s combinational
    core (per-cycle interfaces); the check unrolls both designs over
    ``frames`` cycles and runs the requested ladder rungs.

    A reported error is definitive for the bound: no implementation of
    the boxes — not even one that changed every cycle — makes the first
    ``frames`` cycles match the specification.  "No error" is bounded
    *and* relaxed (frame-independent boxes), so it neither proves full
    sequential correctness nor exact extendability.
    """
    if spec.inputs != impl.inputs:
        raise CircuitError("primary input lists differ")
    if len(spec.outputs) != len(impl.outputs):
        raise CircuitError("output counts differ")
    spec_u = unroll(spec, frames)
    partial_u = unroll_partial(impl, frames, list(boxes))
    return run_ladder(spec_u, partial_u, checks=checks,
                      patterns=patterns, seed=seed,
                      stop_at_first_error=stop_at_first_error)
