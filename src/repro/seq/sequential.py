"""Sequential (latched) circuits on top of the combinational model.

The paper's future work asks "how the methods can be extended to verify
also sequential circuits containing Black Boxes"; this subpackage
provides the bounded answer: a sequential netlist model, time-frame
expansion, and bounded Black Box equivalence checking
(:mod:`repro.seq.unroll`, :mod:`repro.seq.check`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..circuit.netlist import Circuit, CircuitError

__all__ = ["Latch", "SequentialCircuit"]


@dataclass(frozen=True)
class Latch:
    """One state element: ``state`` is the Q output net (a primary input
    of the combinational core), ``next_state`` the D input net (a core
    net), ``init`` the reset value."""

    state: str
    next_state: str
    init: bool = False


class SequentialCircuit:
    """A Mealy machine: combinational core + latches.

    The core circuit's inputs are the primary inputs *plus* one input
    per latch (its ``state`` net); the core computes the primary outputs
    and each latch's ``next_state`` net.  Black Boxes in the core (free
    nets) make a *partial* sequential design.
    """

    def __init__(self, core: Circuit, latches: Sequence[Latch],
                 name: Optional[str] = None) -> None:
        self.name = name or core.name
        self.core = core
        self.latches = list(latches)
        self._validate()

    def _validate(self) -> None:
        seen_states = set()
        seen_next = set()
        free = set(self.core.free_nets())
        for latch in self.latches:
            if latch.state in seen_states:
                raise CircuitError("latch output %r declared twice"
                                   % latch.state)
            if latch.next_state in seen_next:
                raise CircuitError("net %r drives two latches"
                                   % latch.next_state)
            seen_states.add(latch.state)
            seen_next.add(latch.next_state)
            if not self.core.is_input(latch.state):
                raise CircuitError(
                    "latch output %r must be a core input" % latch.state)
            # The next-state net may be a gate output, a pass-through
            # input, an already-free net, or a net only the latch reads
            # (then it is a Black Box output of a partial design: the
            # latch is its sole reader).  Completeness is enforced where
            # it matters — simulate() and unroll() reject missing
            # drivers with a precise error.
        self.core.validate(allow_free=bool(self.core.free_nets()))

    @property
    def inputs(self) -> List[str]:
        """Primary inputs (core inputs minus latch outputs)."""
        states = {latch.state for latch in self.latches}
        return [net for net in self.core.inputs if net not in states]

    @property
    def outputs(self) -> List[str]:
        """Primary outputs of the machine."""
        return self.core.outputs

    @property
    def state_names(self) -> List[str]:
        """Latch output nets, in declaration order."""
        return [latch.state for latch in self.latches]

    def initial_state(self) -> Dict[str, bool]:
        """The reset assignment of all latches."""
        return {latch.state: latch.init for latch in self.latches}

    def simulate(self, input_sequence: Iterable[Dict[str, bool]],
                 state: Optional[Dict[str, bool]] = None)\
            -> List[Dict[str, bool]]:
        """Cycle-accurate simulation; returns outputs per cycle.

        Requires a complete core (no Black Boxes).
        """
        missing = [latch.next_state for latch in self.latches
                   if not (self.core.drives(latch.next_state)
                           or self.core.is_input(latch.next_state))]
        if self.core.free_nets() or missing:
            raise CircuitError("cannot simulate a partial sequential "
                               "design; give the boxes functions first")
        current = dict(state or self.initial_state())
        trace: List[Dict[str, bool]] = []
        for step_inputs in input_sequence:
            assignment = dict(step_inputs)
            assignment.update(current)
            values = self.core.evaluate(assignment, all_nets=True)
            trace.append({net: values[net] for net in self.outputs})
            current = {latch.state: values[latch.next_state]
                       for latch in self.latches}
        return trace

    def __repr__(self) -> str:
        return "<SequentialCircuit %s: %d in, %d out, %d latches, " \
            "%d gates>" % (self.name, len(self.inputs),
                           len(self.outputs), len(self.latches),
                           self.core.num_gates)
