"""Sequential circuits with Black Boxes: bounded checking via unrolling.

The paper's future-work direction ("how the methods can be extended to
verify also sequential circuits containing Black Boxes"), implemented
for bounded depth: model a Mealy machine, expand ``k`` time frames into
a combinational circuit, and run the ladder on the expansion.
"""

from .sequential import Latch, SequentialCircuit
from .unroll import frame_net, unroll, unroll_partial
from .check import check_bounded_equivalence, check_sequential_partial
from .reachability import (MachineEncoding, SequentialEquivalenceResult,
                           check_unbounded_equivalence, encode_machine,
                           reachable_states)

__all__ = [
    "Latch",
    "SequentialCircuit",
    "frame_net",
    "unroll",
    "unroll_partial",
    "check_bounded_equivalence",
    "check_sequential_partial",
    "MachineEncoding",
    "SequentialEquivalenceResult",
    "encode_machine",
    "reachable_states",
    "check_unbounded_equivalence",
]
