"""Time-frame expansion of sequential circuits.

``unroll`` turns ``k`` clock cycles of a machine into one combinational
circuit: frame-local copies of the core, latches replaced by wires from
the previous frame (constants at the reset frame).  Black Boxes are
duplicated per frame — see :mod:`repro.seq.check` for what that means
for soundness.
"""

from __future__ import annotations

from typing import List, Optional

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit, CircuitError
from ..partial.blackbox import BlackBox, PartialImplementation
from .sequential import SequentialCircuit

__all__ = ["frame_net", "unroll", "unroll_partial"]


def frame_net(net: str, frame: int) -> str:
    """Name of a core net's copy in time frame ``frame`` (0-based)."""
    return "%s@%d" % (net, frame)


def _build_frames(seq: SequentialCircuit, frames: int,
                  result: Circuit) -> None:
    """Emit ``frames`` copies of the core into ``result``."""
    if frames < 1:
        raise CircuitError("need at least one time frame")
    states = {latch.state: latch for latch in seq.latches}

    def source_name(net: str, frame: int) -> str:
        latch = states.get(net)
        if latch is None:
            return frame_net(net, frame)
        if frame == 0:
            return "%s@init" % latch.state
        return source_name(latch.next_state, frame - 1)

    for latch in seq.latches:
        result.add_gate("%s@init" % latch.state,
                        GateType.CONST1 if latch.init
                        else GateType.CONST0, [])
    for frame in range(frames):
        for net in seq.inputs:
            result.add_input(frame_net(net, frame))
        for net in seq.core.topological_order():
            gate = seq.core.gate(net)
            result.add_gate(
                frame_net(net, frame), gate.gtype,
                [source_name(src, frame) for src in gate.inputs])
    # Outputs are buffered per frame: distinct frames of one output may
    # resolve to the same source net (e.g. a latch that holds its reset
    # value), and output names must be unique.
    existing = set(result.nets())
    for frame in range(frames):
        for index, net in enumerate(seq.outputs):
            out_name = "po%d@%d" % (index, frame)
            while out_name in existing:
                out_name = "_" + out_name
            existing.add(out_name)
            result.add_gate(out_name, GateType.BUF,
                            [source_name(net, frame)])
            result.add_output(out_name)


def unroll(seq: SequentialCircuit, frames: int,
           name: Optional[str] = None) -> Circuit:
    """Combinational expansion of a *complete* sequential circuit.

    Inputs: ``x@t`` per primary input and frame; outputs: every primary
    output per frame, in frame-major order.
    """
    undriven_latches = [
        latch.next_state for latch in seq.latches
        if not (seq.core.drives(latch.next_state)
                or seq.core.is_input(latch.next_state))]
    if seq.core.free_nets() or undriven_latches:
        raise CircuitError("use unroll_partial for designs with boxes")
    result = Circuit(name or "%s_u%d" % (seq.name, frames))
    _build_frames(seq, frames, result)
    result.validate()
    return result


def unroll_partial(seq: SequentialCircuit, frames: int,
                   boxes: List[BlackBox],
                   name: Optional[str] = None)\
        -> PartialImplementation:
    """Expansion of a partial sequential circuit.

    Every Black Box is copied once per time frame (``BB@t``).  Note the
    relaxation: the copies are treated as *independent* boxes, although
    a real implementation uses the same function in every frame.  The
    checks therefore consider a superset of the legal behaviours —
    reported errors remain sound, but some sequential-only errors are
    missed (exactly the approximation direction of the whole ladder).
    """
    result = Circuit(name or "%s_u%d" % (seq.name, frames))
    _build_frames(seq, frames, result)

    states = {latch.state: latch for latch in seq.latches}

    def source_name(net: str, frame: int) -> str:
        latch = states.get(net)
        if latch is None:
            return frame_net(net, frame)
        if frame == 0:
            return "%s@init" % latch.state
        return source_name(latch.next_state, frame - 1)

    frame_boxes: List[BlackBox] = []
    for frame in range(frames):
        for box in boxes:
            frame_boxes.append(BlackBox(
                "%s@%d" % (box.name, frame),
                tuple(source_name(net, frame) for net in box.inputs),
                tuple(frame_net(net, frame) for net in box.outputs)))
    return PartialImplementation(result, frame_boxes)
