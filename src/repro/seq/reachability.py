"""Symbolic reachability and unbounded sequential equivalence.

Bounded unrolling (:mod:`repro.seq.check`) answers the paper's
sequential future-work question up to a depth; this module closes the
loop for *complete* machines with the classic BDD machinery the paper
cites ([4] symbolic model checking, [7] verification of sequential
machines): build the product machine's transition relation, compute the
reachable state set as a least fixpoint of relational products, and
test output agreement on every reachable state.

Counterexamples are full input *traces*, extracted by walking the onion
rings of the fixpoint backwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bdd import Bdd, Function, default_bdd
from ..circuit.netlist import CircuitError
from ..sim.symbolic import symbolic_simulate
from .sequential import SequentialCircuit

__all__ = ["MachineEncoding", "encode_machine", "reachable_states",
           "SequentialEquivalenceResult",
           "check_unbounded_equivalence"]


@dataclass
class MachineEncoding:
    """Symbolic encoding of one machine inside a shared manager.

    ``state_vars``/``next_vars`` are the BDD variable names for current
    and next state; ``transition`` is ``⋀_i (q_i' ↔ δ_i(q, x))``;
    ``outputs`` are the output functions over state and input variables;
    ``init`` is the characteristic function of the reset state.
    """

    seq: SequentialCircuit
    prefix: str
    state_vars: List[str]
    next_vars: List[str]
    transition: Function
    outputs: List[Function]
    init: Function


def encode_machine(seq: SequentialCircuit, bdd: Bdd,
                   prefix: str) -> MachineEncoding:
    """Encode a complete machine's transition/output functions."""
    missing = [latch.next_state for latch in seq.latches
               if not (seq.core.drives(latch.next_state)
                       or seq.core.is_input(latch.next_state))]
    if seq.core.free_nets() or missing:
        raise CircuitError("reachability needs a complete machine")

    # Current-state variables are named per machine; inputs keep their
    # own (shared) names, so two encodings drive on the same inputs.
    # The state nets are *renamed in the core* so the BDD variables the
    # simulation declares for them are machine-private.
    rename = {latch.state: "%s.%s" % (prefix, latch.state)
              for latch in seq.latches}
    core = seq.core.renamed(rename)

    state_vars: List[str] = []
    next_vars: List[str] = []
    for latch in seq.latches:
        current = rename[latch.state]
        nxt = current + "'"
        # Interleave current/next in the order for small relations.
        for name in (current, nxt):
            if not bdd.has_var(name):
                bdd.add_var(name)
        state_vars.append(current)
        next_vars.append(nxt)

    def net_of(net: str) -> str:
        return rename.get(net, net)

    nets = list({net_of(latch.next_state) for latch in seq.latches}
                | {net_of(net) for net in seq.outputs})
    functions = symbolic_simulate(core, bdd, nets=nets)
    transition = bdd.true
    for latch, nxt in zip(seq.latches, next_vars):
        transition = transition \
            & bdd.var(nxt).equiv(functions[net_of(latch.next_state)])
    outputs = [functions[net_of(net)] for net in seq.outputs]
    init = bdd.cube({var: latch.init
                     for var, latch in zip(state_vars, seq.latches)})
    return MachineEncoding(seq, prefix, state_vars, next_vars,
                           transition, outputs, init)


def reachable_states(encodings: List[MachineEncoding],
                     bdd: Bdd,
                     max_iterations: int = 100_000)\
        -> Tuple[Function, List[Function]]:
    """Least fixpoint of the (product) transition relation.

    Returns ``(reachable, rings)`` where ``rings[k]`` is the set of
    states first reached after exactly ``k`` steps (``rings[0]`` the
    initial states) — the onion rings used for trace extraction.
    """
    inputs = encodings[0].seq.inputs
    transition = bdd.true
    for enc in encodings:
        transition = transition & enc.transition
    current_vars = [v for enc in encodings for v in enc.state_vars]
    next_vars = [v for enc in encodings for v in enc.next_vars]
    rename_back = {nxt: bdd.var(cur)
                   for cur, nxt in zip(current_vars, next_vars)}

    reached = encodings[0].init
    for enc in encodings[1:]:
        reached = reached & enc.init
    rings = [reached]
    frontier = reached
    for _ in range(max_iterations):
        image_next = frontier.and_exists(
            transition, current_vars + list(inputs))
        image = image_next.compose(rename_back)
        new = image - reached
        if new.is_false:
            return reached, rings
        reached = reached | new
        rings.append(new)
        frontier = new
    raise RuntimeError("reachability did not converge")


@dataclass
class SequentialEquivalenceResult:
    """Verdict of the unbounded product-machine check."""

    equivalent: bool
    iterations: int
    reachable_count: int
    trace: Optional[List[Dict[str, bool]]] = None

    def __repr__(self) -> str:
        if self.equivalent:
            return ("<SequentialEquivalenceResult equivalent, "
                    "%d reachable states>" % self.reachable_count)
        return ("<SequentialEquivalenceResult differ after %d steps>"
                % (len(self.trace or []) - 1 if self.trace else -1))


def check_unbounded_equivalence(spec: SequentialCircuit,
                                impl: SequentialCircuit,
                                bdd: Optional[Bdd] = None)\
        -> SequentialEquivalenceResult:
    """Complete sequential equivalence from reset, any depth.

    Builds the product machine, computes the reachable set, and checks
    that no reachable state admits an input on which the two machines'
    outputs differ.  On failure, returns a concrete input trace that
    drives the machines apart (replayable with
    :meth:`SequentialCircuit.simulate`).
    """
    if spec.inputs != impl.inputs:
        raise CircuitError("primary input lists differ")
    if len(spec.outputs) != len(impl.outputs):
        raise CircuitError("output counts differ")
    if bdd is None:
        bdd = default_bdd()
    enc_a = encode_machine(spec, bdd, prefix="A")
    enc_b = encode_machine(impl, bdd, prefix="B")

    mismatch = bdd.false
    for out_a, out_b in zip(enc_a.outputs, enc_b.outputs):
        mismatch = mismatch | (out_a ^ out_b)

    reached, rings = reachable_states([enc_a, enc_b], bdd)
    bad = reached & mismatch
    reachable_count = _count_states(reached, enc_a, enc_b, bdd)
    if bad.is_false:
        return SequentialEquivalenceResult(
            equivalent=True, iterations=len(rings),
            reachable_count=reachable_count)

    trace = _extract_trace(bad, rings, [enc_a, enc_b], bdd)
    return SequentialEquivalenceResult(
        equivalent=False, iterations=len(rings),
        reachable_count=reachable_count, trace=trace)


def _count_states(reached: Function, enc_a: MachineEncoding,
                  enc_b: MachineEncoding, bdd: Bdd) -> int:
    # ``reached`` is a function of the current-state variables only.
    over = enc_a.state_vars + enc_b.state_vars
    free = bdd.num_vars - len(over)
    return reached.sat_count() >> free


def _extract_trace(bad: Function, rings: List[Function],
                   encodings: List[MachineEncoding], bdd: Bdd)\
        -> List[Dict[str, bool]]:
    """Input sequence from reset to a distinguishing state + input.

    Walks the onion rings backwards: find the earliest ring meeting the
    bad set, then repeatedly pick a predecessor in the previous ring and
    record the input that makes the step.
    """
    inputs = list(encodings[0].seq.inputs)
    current_vars = [v for enc in encodings for v in enc.state_vars]
    next_vars = [v for enc in encodings for v in enc.next_vars]
    transition = bdd.true
    for enc in encodings:
        transition = transition & enc.transition
    rename_fwd = {cur: bdd.var(nxt)
                  for cur, nxt in zip(current_vars, next_vars)}

    depth = next(k for k, ring in enumerate(rings)
                 if not (ring & bad).is_false)
    # Pick one concrete bad state at that depth.
    bad_state = bdd.cube(_pick(rings[depth] & bad, current_vars))
    target = bad_state

    backwards: List[Dict[str, bool]] = []
    for k in range(depth, 0, -1):
        shifted = target.compose(rename_fwd)
        pred_relation = rings[k - 1] & transition & shifted
        choice = _pick(pred_relation, current_vars + inputs)
        backwards.append({name: choice[name] for name in inputs})
        target = bdd.cube({v: choice[v] for v in current_vars})
    steps = list(reversed(backwards))

    # Final step: an input distinguishing the outputs in the bad state.
    mismatch = bdd.false
    for out_a, out_b in zip(encodings[0].outputs,
                            encodings[1].outputs):
        mismatch = mismatch | (out_a ^ out_b)
    final_choice = _pick(bad_state & mismatch, current_vars + inputs)
    steps.append({name: final_choice[name] for name in inputs})
    return steps


def _pick(function: Function, names: List[str]) -> Dict[str, bool]:
    witness = function.sat_one()
    if witness is None:
        raise RuntimeError("expected a satisfiable set during trace "
                           "extraction")
    return {name: witness.get(name, False) for name in names}
