"""Deterministic fault injection for the recovery paths.

Every claim the resilience layer makes — "a MemoryError in ``mk``
degrades to an ERROR record", "an aborted reordering leaves the manager
consistent", "an ENOSPC during a journal append is retried once and
then diagnosed" — is only worth anything if a test can *make* the fault
happen, at a reproducible instant.  This module provides that: each
injector is a context manager that patches exactly one seam, fires at a
deterministic trigger point, and restores the seam on exit.

Trigger points are derived from coordinates via
:func:`repro.jobs.spec.derive_seed` (the same SHA-256 scheme the
campaign engine uses), so a fault schedule is a pure function of the
case it torments — stable across processes, machines and Python
versions.

Faults raise *real* exception types where the production code must
handle real ones (``MemoryError``, ``OSError(ENOSPC)``); only the
reorder abort uses the :class:`InjectedFault` marker, because no
organic exception type exists for "sifting died mid-pass".
"""

from __future__ import annotations

import errno
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..jobs.spec import CaseSpec, derive_seed

__all__ = ["InjectedFault", "FaultPlan", "inject_mk_memory_error",
           "inject_reorder_abort", "inject_journal_fault",
           "crashy_stub_task", "planned_crash",
           "FLEET_FAULTS_ENV", "FleetFaultPlan",
           "inject_lease_contention", "tear_journal_tail"]


class InjectedFault(RuntimeError):
    """Marker exception for injected faults with no organic type."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault schedule derived from case coordinates."""

    seed: int

    @classmethod
    def for_case(cls, case: CaseSpec, salt: str = "faults")\
            -> "FaultPlan":
        """The plan every process derives identically for ``case``."""
        return cls(derive_seed(case.seed, case.benchmark, case.selection,
                               case.error_index, salt))

    def trigger(self, site: str, lo: int, hi: int) -> int:
        """Deterministic trigger count in ``[lo, hi)`` for one site."""
        if hi <= lo:
            raise ValueError("empty trigger range")
        return lo + derive_seed(self.seed, site) % (hi - lo)

    def fires(self, site: str, one_in: int) -> bool:
        """Deterministic coin flip: fire at this site with odds 1/n."""
        return derive_seed(self.seed, site) % one_in == 0


@contextmanager
def inject_mk_memory_error(manager, at_call: int) -> Iterator[List[int]]:
    """Raise ``MemoryError`` from the manager's ``at_call``-th ``mk``.

    Simulates the allocator failing mid-operation — the manager must
    stay consistent (the failed node was never inserted) and the caller
    must degrade, not crash.  Yields a one-element call-counter list.
    """
    if at_call < 1:
        raise ValueError("at_call is 1-based")
    original = manager.mk
    calls = [0]

    def faulty_mk(var: int, low: int, high: int) -> int:
        calls[0] += 1
        if calls[0] == at_call:
            raise MemoryError("injected: mk call %d" % at_call)
        return original(var, low, high)

    manager.mk = faulty_mk
    try:
        yield calls
    finally:
        del manager.mk


@contextmanager
def inject_reorder_abort(at_swap: int) -> Iterator[List[int]]:
    """Abort dynamic reordering before its ``at_swap``-th level swap.

    The fault fires *before* the swap mutates anything, which is the
    strongest claim the reorder path makes: any interruption surfacing
    at a swap boundary leaves every manager invariant intact
    (verifiable via ``BddManager.invariant_violations()``).
    """
    if at_swap < 1:
        raise ValueError("at_swap is 1-based")
    from ..bdd import reorder

    original = reorder.swap_adjacent_levels
    swaps = [0]

    def faulty_swap(mgr, level: int) -> int:
        swaps[0] += 1
        if swaps[0] == at_swap:
            raise InjectedFault("injected: reorder abort at swap %d"
                                % at_swap)
        return original(mgr, level)

    reorder.swap_adjacent_levels = faulty_swap
    try:
        yield swaps
    finally:
        reorder.swap_adjacent_levels = original


class _FaultyFile:
    """File proxy failing the Nth raw ``write`` in a chosen mode.

    ``mode="enospc"`` raises ``OSError(ENOSPC)`` before writing a byte;
    ``mode="torn"`` writes half the payload first, leaving a torn tail
    the writer's truncate-and-retry recovery must clean up.  With
    ``repeat=True`` every subsequent write fails too (a genuinely full
    disk); the default fails once (transient pressure).
    """

    def __init__(self, handle, at_write: int, mode: str,
                 repeat: bool) -> None:
        self._handle = handle
        self._at_write = at_write
        self._mode = mode
        self._repeat = repeat
        self.writes = 0
        self.fired = 0

    def write(self, data) -> int:
        self.writes += 1
        if self.writes == self._at_write \
                or (self._repeat and self.writes > self._at_write):
            self.fired += 1
            if self._mode == "torn":
                self._handle.write(bytes(data)[:max(1, len(data) // 2)])
            raise OSError(errno.ENOSPC,
                          "No space left on device (injected)")
        return self._handle.write(data)

    def __getattr__(self, name):
        return getattr(self._handle, name)


@contextmanager
def inject_journal_fault(writer, at_write: int = 1,
                         mode: str = "enospc",
                         repeat: bool = False)\
        -> Iterator[_FaultyFile]:
    """Fail the journal writer's ``at_write``-th raw file write.

    ``writer`` is a :class:`repro.jobs.journal.JournalWriter`; the
    injected failure exercises its fsync-truncate-retry path.  Yields
    the proxy so tests can assert how often the fault fired.
    """
    if mode not in ("enospc", "torn"):
        raise ValueError("unknown journal fault mode %r" % mode)
    original = writer._handle
    proxy = _FaultyFile(original, at_write, mode, repeat)
    writer._handle = proxy
    try:
        yield proxy
    finally:
        writer._handle = original


def planned_crash(case: CaseSpec, one_in: int = 3) -> bool:
    """Whether the shared fault plan says this case's worker crashes."""
    return FaultPlan.for_case(case).fires("worker-crash", one_in)


def crashy_stub_task(case: CaseSpec):
    """Pool task whose workers die on plan-selected cases.

    Importable at top level (spawn children rebuild it by reference);
    the crash decision is a pure function of the case coordinates, so
    the *retry* of a crashed case crashes again and ends in a terminal
    ERROR record — the recovery path the pool tests must prove.
    Non-crashing cases return a minimal OK record.
    """
    from ..core.result import OUTCOME_OK
    from ..jobs.journal import CaseRecord, CheckOutcome

    if planned_crash(case):
        os._exit(3)
    return CaseRecord(
        case=case, outcome=OUTCOME_OK, seconds=0.001,
        inputs=2, outputs=1, spec_nodes=3, mutation="stub",
        checks={c: CheckOutcome(error_found=case.error_index % 2 == 0)
                for c in case.checks})


# --------------------------------------------------------------------
# Shard-level injectors for the campaign fleet (repro.fleet).
#
# Fleet shards are spawned processes; they cannot be monkeypatched from
# the test process.  The fault schedule therefore travels through one
# environment variable (spawn children inherit the environment), parsed
# by the shard at startup.  Faults apply only to a shard's *first*
# incarnation — a shard the supervisor respawns after a drill kill runs
# clean, so every drill terminates.

#: Comma-separated fault tokens, e.g.
#: ``kill-shard:1@2,heartbeat-blackhole:0,torn-journal:2``.
FLEET_FAULTS_ENV = "REPRO_FLEET_FAULTS"


@dataclass(frozen=True)
class FleetFaultPlan:
    """Parsed shard-level fault schedule for one fleet run.

    * ``kill-shard:K@N`` — shard K SIGKILLs itself when it is about to
      execute its N-th case (1-based), *after* writing the claim record
      — the case is in-flight, so the supervisor must mark it lost and
      reschedule it;
    * ``heartbeat-blackhole:K`` — shard K never writes heartbeat
      records (it otherwise runs normally), so the supervisor must
      declare it dead on heartbeat miss and SIGKILL it;
    * ``torn-journal:K`` — shard K's journal starts with a torn
      half-line (simulating a previous run killed mid-append); readers
      must skip it and the writer must self-heal.
    """

    kill_at: "FrozenSet[Tuple[int, int]]" = frozenset()
    blackhole: "FrozenSet[int]" = frozenset()
    torn_journal: "FrozenSet[int]" = frozenset()

    @classmethod
    def parse(cls, text: str) -> "FleetFaultPlan":
        kill, black, torn = set(), set(), set()
        for token in filter(None,
                            (t.strip() for t in text.split(","))):
            name, _, arg = token.partition(":")
            if name == "kill-shard":
                shard, _, ordinal = arg.partition("@")
                kill.add((int(shard), int(ordinal or 1)))
            elif name == "heartbeat-blackhole":
                black.add(int(arg))
            elif name == "torn-journal":
                torn.add(int(arg))
            else:
                raise ValueError("unknown fleet fault token %r" % token)
        return cls(kill_at=frozenset(kill), blackhole=frozenset(black),
                   torn_journal=frozenset(torn))

    @classmethod
    def from_env(cls) -> "FleetFaultPlan":
        return cls.parse(os.environ.get(FLEET_FAULTS_ENV, ""))

    def kill_ordinal(self, shard: int) -> Optional[int]:
        """The case ordinal at which ``shard`` kills itself, if any."""
        for who, ordinal in self.kill_at:
            if who == shard:
                return ordinal
        return None


def tear_journal_tail(path: str,
                      garbage: bytes = b'{"v":1,"ev":"case","tr')\
        -> None:
    """Append a torn half-line to a (possibly absent) shard journal.

    Recreates the on-disk state a SIGKILL mid-append leaves behind;
    :class:`repro.jobs.journal.LineJournalWriter` must self-heal it and
    :func:`repro.jobs.journal.iter_journal_dicts` must skip it.
    """
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "ab") as handle:
        handle.write(garbage)


@contextmanager
def inject_lease_contention(leases, rival: str = "rival#0",
                            lose_first: int = 1) -> Iterator[List[str]]:
    """Make the first ``lose_first`` lease acquisitions lose the race.

    Patches ``leases.acquire`` so a rival grabs each contested key just
    before the caller's own attempt — the exact interleaving of two
    shards stealing the same key, compressed into a deterministic unit
    test.  Yields the list of keys the caller lost.
    """
    original = leases.acquire
    lost: List[str] = []

    def contended_acquire(key: str, owner: str) -> bool:
        if len(lost) < lose_first and original(key, rival):
            lost.append(key)
        return original(key, owner)

    leases.acquire = contended_acquire
    try:
        yield lost
    finally:
        del leases.acquire
