"""Folding a budget kill into a usable partial verdict.

When a ladder rung overruns its :class:`~repro.resilience.budget.Budget`
the right answer is not a crash and not a bare TIMEOUT: every *completed*
rung already produced a verdict, and the strongest of those is exactly
the information the paper's tables are built from.  This module builds
the ``inconclusive`` :class:`~repro.core.result.CheckResult` that
carries it.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.result import (OUTCOME_INCONCLUSIVE, OUTCOME_OK, CheckResult)
from .budget import BudgetExceededError

__all__ = ["strongest_completed", "inconclusive_result",
           "describe_strongest"]


def strongest_completed(completed: List[CheckResult])\
        -> Optional[CheckResult]:
    """The most accurate completed rung (``None`` if nothing finished).

    ``completed`` must be in ladder order (cheapest first); results
    without an ``ok`` outcome do not count.
    """
    strongest = None
    for result in completed:
        if result.outcome == OUTCOME_OK:
            strongest = result
    return strongest


def describe_strongest(strongest: Optional[CheckResult]) -> str:
    """Human-readable "strongest completed level" clause."""
    if strongest is None:
        return "no level completed"
    verdict = "error found" if strongest.error_found else "no error found"
    return "strongest completed level: %s (%s)" % (strongest.check,
                                                   verdict)


def inconclusive_result(check: str, completed: List[CheckResult],
                        exc: BudgetExceededError,
                        peak_nodes: int = 0) -> CheckResult:
    """Build the degraded result for the rung that blew its budget.

    The result's ``error_found`` carries the strongest *completed*
    level's verdict (``False`` when nothing completed), ``exact`` is
    always ``False``, and ``stats`` records the kill reason plus the
    per-level timings and node peaks of every completed rung.
    """
    strongest = strongest_completed(completed)
    stats = {
        "budget_resource": exc.resource,
        "budget_where": exc.where,
        "budget_value": exc.value,
        "budget_limit": exc.limit,
        "budget_steps": exc.steps,
        "completed_levels": sum(
            1 for r in completed if r.outcome == OUTCOME_OK),
        "peak_nodes": peak_nodes,
    }
    for result in completed:
        if result.outcome != OUTCOME_OK:
            continue
        stats["%s_seconds" % result.check] = result.seconds
        stats["%s_peak_nodes" % result.check] = int(
            result.stats.get("peak_nodes", 0))
    detail = "%s; %s" % (exc, describe_strongest(strongest))
    return CheckResult(
        check=check,
        error_found=strongest.error_found if strongest else False,
        exact=False,
        counterexample=strongest.counterexample if strongest else None,
        failing_output=strongest.failing_output if strongest else None,
        detail=detail,
        seconds=exc.elapsed,
        outcome=OUTCOME_INCONCLUSIVE,
        stats=stats,
    )
