"""Deterministic capped exponential backoff.

One policy object shared by every retry path in the tree — the fleet
supervisor rescheduling cases off a dead shard
(:mod:`repro.fleet.supervisor`), the serve executor throttling a
crash-looping worker slot (:mod:`repro.fleet.slots`) and the blocking
service client honouring ``Retry-After`` (:mod:`repro.serve.client`).

The jitter is *seeded*: it comes from
:func:`repro.jobs.spec.derive_seed` over ``(seed, "backoff", attempt)``,
never from ``random``.  Two processes configured with the same policy
therefore compute the same delays, which is what lets tests assert
exact retry schedules and keeps recovery replayable from journals.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..jobs.spec import derive_seed

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempts 1, 2, 3... grows as
    ``base * multiplier**(attempt-1)``, is raised to at least ``floor``
    (a server-provided ``Retry-After``), clamped to ``cap``, and then
    stretched by up to ``jitter`` (a fraction, e.g. 0.1 = +0..10%)
    using a seeded hash of the attempt number.
    """

    base: float = 0.1
    multiplier: float = 2.0
    cap: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def delay(self, attempt: int, floor: float = 0.0) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = self.base * self.multiplier ** (attempt - 1)
        if floor > raw:
            raw = floor
        if raw > self.cap:
            raw = self.cap
        if self.jitter:
            unit = (derive_seed(self.seed, "backoff", attempt)
                    % 1_000_000) / 1_000_000.0
            raw *= 1.0 + self.jitter * unit
        return raw

    def schedule(self, attempts: int, floor: float = 0.0) -> list:
        """The full delay sequence for ``attempts`` retries."""
        return [self.delay(i, floor) for i in range(1, attempts + 1)]
