"""In-process resource budgets for the symbolic checks.

The paper's five-check ladder is a cost/accuracy trade-off: the exact
checks (Lemma 2.2 / Theorem 2.1) can blow up in BDD size while the
cheaper rungs almost always finish.  A :class:`Budget` turns a blow-up
from a process kill (SIGKILL at the pool's hard deadline, all completed
work lost) into a structured, catchable :class:`BudgetExceededError`
raised *inside* the operation that overran — at a point where the BDD
manager is still consistent and usable.

Three resources are tracked:

``wall_seconds``
    Cooperative soft deadline.  Checked every ``check_interval``
    recursion steps (one ``time.monotonic`` call per interval), so the
    cost is amortised to almost nothing.
``max_live_nodes``
    Upper bound on the manager's live node count.  The manager
    amortises the check behind a countdown clamped to the remaining
    headroom, so the trip still fires exactly at the node creation that
    crosses the limit.
``max_steps``
    Upper bound on recursion steps across ``mk`` / ``_ite`` /
    quantification — a machine-independent cost metric, useful for
    reproducible degradation tests.

A budget with no limit set is inert; a manager whose ``budget`` is
``None`` pays one attribute test per hot call (see
``benchmarks/test_bdd_micro.py::test_bench_budget_overhead``).
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Budget", "BudgetExceededError"]


class BudgetExceededError(RuntimeError):
    """A resource budget was exceeded inside a symbolic operation.

    Attributes
    ----------
    resource:
        Which limit tripped: ``"wall_clock"``, ``"live_nodes"`` or
        ``"steps"``.
    where:
        The operation that was running (``"mk"``, ``"ite"``,
        ``"quantify"``, ``"and_exists"``, ``"reorder"``,
        ``"random_pattern"``, ...).
    value / limit:
        The measured value and the limit it crossed.
    steps / elapsed:
        Total recursion steps charged and wall-clock seconds elapsed on
        this budget when the limit tripped.
    """

    def __init__(self, resource: str, where: str, value: float,
                 limit: float, steps: int = 0,
                 elapsed: float = 0.0) -> None:
        self.resource = resource
        self.where = where
        self.value = value
        self.limit = limit
        self.steps = steps
        self.elapsed = elapsed
        if resource == "wall_clock":
            detail = "%.2fs > soft deadline %.2fs" % (value, limit)
        else:
            detail = "%d > %d" % (value, limit)
        super().__init__("budget exceeded in %s: %s %s"
                         % (where, resource, detail))


class Budget:
    """Resource envelope threaded through BDD / check hot loops.

    One budget may outlive a single manager: the campaign worker
    attaches the same (already ticking) budget to every fresh per-check
    manager, so the soft deadline spans the whole case while the node
    limit applies to each manager's own live count.
    """

    __slots__ = ("wall_seconds", "max_live_nodes", "max_steps",
                 "check_interval", "started_at", "steps", "next_check_at")

    def __init__(self, wall_seconds: Optional[float] = None,
                 max_live_nodes: Optional[int] = None,
                 max_steps: Optional[int] = None,
                 check_interval: int = 256) -> None:
        # 256 keeps the manager's countdown inside CPython's small-int
        # cache (decrementing a larger counter heap-allocates an int
        # per hot-loop event) while still amortising one
        # time.monotonic call over hundreds of operations.
        if wall_seconds is not None and wall_seconds <= 0:
            raise ValueError("wall_seconds must be positive")
        if max_live_nodes is not None and max_live_nodes <= 0:
            raise ValueError("max_live_nodes must be positive")
        if max_steps is not None and max_steps <= 0:
            raise ValueError("max_steps must be positive")
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.wall_seconds = wall_seconds
        self.max_live_nodes = max_live_nodes
        self.max_steps = max_steps
        self.check_interval = check_interval
        self.started_at: Optional[float] = None
        self.steps = 0
        self.next_check_at = check_interval

    @classmethod
    def from_limits(cls, node_limit: Optional[int] = None,
                    soft_timeout: Optional[float] = None,
                    max_steps: Optional[int] = None)\
            -> Optional["Budget"]:
        """A budget from optional CLI-style limits; ``None`` if all unset."""
        if node_limit is None and soft_timeout is None \
                and max_steps is None:
            return None
        return cls(wall_seconds=soft_timeout, max_live_nodes=node_limit,
                   max_steps=max_steps)

    @property
    def limited(self) -> bool:
        """Whether any limit is actually set."""
        return (self.wall_seconds is not None
                or self.max_live_nodes is not None
                or self.max_steps is not None)

    def start(self) -> "Budget":
        """Start the wall clock (idempotent); returns ``self``."""
        if self.started_at is None:
            self.started_at = time.monotonic()
        return self

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0 when never started)."""
        if self.started_at is None:
            return 0.0
        return time.monotonic() - self.started_at

    def expired(self) -> bool:
        """Whether the soft deadline has already passed (no raise)."""
        return (self.wall_seconds is not None
                and self.started_at is not None
                and self.elapsed() > self.wall_seconds)

    # -- hot path ------------------------------------------------------

    def tick(self, where: str = "op") -> None:
        """Charge one recursion step; periodically check the slow limits.

        ``steps``, ``next_check_at``, ``check_interval`` and
        :meth:`slow_check` are public so hot loops can do their own
        amortisation (the BDD manager batches steps behind a countdown
        and charges them in ``_budget_poll``) — keep them in sync with
        any change here.
        """
        self.steps += 1
        if self.steps >= self.next_check_at:
            self.next_check_at = self.steps + self.check_interval
            self.slow_check(where)

    def tick_node(self, live_nodes: int, where: str = "mk") -> None:
        """Charge one node creation; node limit checked every call."""
        max_nodes = self.max_live_nodes
        if max_nodes is not None and live_nodes > max_nodes:
            raise BudgetExceededError(
                "live_nodes", where, live_nodes, max_nodes,
                steps=self.steps, elapsed=self.elapsed())
        steps = self.steps + 1
        self.steps = steps
        if steps >= self.next_check_at:
            self.next_check_at = steps + self.check_interval
            self.slow_check(where)

    def trip_nodes(self, live_nodes: int, where: str = "mk") -> None:
        """Raise the node-limit error (cold path for inlined callers).

        The BDD manager compares its live count against a cached copy of
        ``max_live_nodes`` itself — one integer compare per ``mk``, no
        method call — and only calls here once the limit is crossed.
        """
        raise BudgetExceededError(
            "live_nodes", where, live_nodes, self.max_live_nodes,
            steps=self.steps, elapsed=self.elapsed())

    # -- slow path -----------------------------------------------------

    def checkpoint(self, where: str,
                   live_nodes: Optional[int] = None) -> None:
        """Unconditional check of every limit (for safe points only).

        Used where charging per step is too coarse (between random
        patterns, between reorder swaps) or where raising must happen at
        a structurally safe boundary (before a level swap mutates the
        manager).
        """
        if live_nodes is not None and self.max_live_nodes is not None \
                and live_nodes > self.max_live_nodes:
            raise BudgetExceededError(
                "live_nodes", where, live_nodes, self.max_live_nodes,
                steps=self.steps, elapsed=self.elapsed())
        self.slow_check(where)

    def slow_check(self, where: str) -> None:
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceededError(
                "steps", where, self.steps, self.max_steps,
                steps=self.steps, elapsed=self.elapsed())
        if self.wall_seconds is not None:
            if self.started_at is None:
                # Auto-start on first use so a budget attached directly
                # to a manager works without an explicit start().
                self.started_at = time.monotonic()
                return
            elapsed = time.monotonic() - self.started_at
            if elapsed > self.wall_seconds:
                raise BudgetExceededError(
                    "wall_clock", where, elapsed, self.wall_seconds,
                    steps=self.steps, elapsed=elapsed)

    def __repr__(self) -> str:
        limits = []
        if self.wall_seconds is not None:
            limits.append("wall=%.3gs" % self.wall_seconds)
        if self.max_live_nodes is not None:
            limits.append("nodes=%d" % self.max_live_nodes)
        if self.max_steps is not None:
            limits.append("steps=%d" % self.max_steps)
        return "<Budget %s steps=%d>" % (
            " ".join(limits) or "unlimited", self.steps)
