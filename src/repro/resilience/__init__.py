"""Resource governance, graceful degradation and fault injection.

Layers (see ``docs/robustness.md``):

* :mod:`~repro.resilience.budget` — :class:`Budget` envelopes (soft
  wall-clock deadline, live-node cap, step cap) threaded through the
  BDD manager's hot loops; overruns raise a structured
  :class:`BudgetExceededError` at a consistent-state point;
* :mod:`~repro.resilience.degrade` — fold a budget kill plus the
  already-completed ladder rungs into an ``inconclusive``
  :class:`~repro.core.result.CheckResult` carrying the strongest
  completed verdict;
* :mod:`~repro.resilience.faults` — deterministic fault injection
  (allocator failure in ``mk``, worker crashes, journal ENOSPC / torn
  writes, mid-reorder aborts, and shard-level fleet faults: kill at
  case k, heartbeat blackhole, lease contention, torn shard journal)
  so every recovery path is provable;
* :mod:`~repro.resilience.backoff` — :class:`BackoffPolicy`, capped
  exponential backoff with *seeded* jitter, shared by the fleet
  supervisor, the serve executor and the service client so retry
  schedules are reproducible.
"""

from .backoff import BackoffPolicy
from .budget import Budget, BudgetExceededError
from .degrade import (describe_strongest, inconclusive_result,
                      strongest_completed)
from .faults import (FLEET_FAULTS_ENV, FaultPlan, FleetFaultPlan,
                     InjectedFault, crashy_stub_task,
                     inject_journal_fault, inject_lease_contention,
                     inject_mk_memory_error, inject_reorder_abort,
                     planned_crash, tear_journal_tail)

__all__ = [
    "BackoffPolicy",
    "Budget",
    "BudgetExceededError",
    "inconclusive_result",
    "strongest_completed",
    "describe_strongest",
    "FaultPlan",
    "FleetFaultPlan",
    "FLEET_FAULTS_ENV",
    "InjectedFault",
    "inject_mk_memory_error",
    "inject_reorder_abort",
    "inject_journal_fault",
    "inject_lease_contention",
    "tear_journal_tail",
    "crashy_stub_task",
    "planned_crash",
]
