"""Resource governance, graceful degradation and fault injection.

Layers (see ``docs/robustness.md``):

* :mod:`~repro.resilience.budget` — :class:`Budget` envelopes (soft
  wall-clock deadline, live-node cap, step cap) threaded through the
  BDD manager's hot loops; overruns raise a structured
  :class:`BudgetExceededError` at a consistent-state point;
* :mod:`~repro.resilience.degrade` — fold a budget kill plus the
  already-completed ladder rungs into an ``inconclusive``
  :class:`~repro.core.result.CheckResult` carrying the strongest
  completed verdict;
* :mod:`~repro.resilience.faults` — deterministic fault injection
  (allocator failure in ``mk``, worker crashes, journal ENOSPC / torn
  writes, mid-reorder aborts) so every recovery path is provable.
"""

from .budget import Budget, BudgetExceededError
from .degrade import (describe_strongest, inconclusive_result,
                      strongest_completed)
from .faults import (FaultPlan, InjectedFault, crashy_stub_task,
                     inject_journal_fault, inject_mk_memory_error,
                     inject_reorder_abort, planned_crash)

__all__ = [
    "Budget",
    "BudgetExceededError",
    "inconclusive_result",
    "strongest_completed",
    "describe_strongest",
    "FaultPlan",
    "InjectedFault",
    "inject_mk_memory_error",
    "inject_reorder_abort",
    "inject_journal_fault",
    "crashy_stub_task",
    "planned_crash",
]
