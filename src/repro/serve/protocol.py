"""The service's JSON request/response vocabulary.

One submission is a JSON object (``POST /v1/jobs``)::

    {"tenant": "alice",            # fair-share scheduling key
     "format": "blif",             # or "bench"
     "spec": "<netlist text>",     # the complete specification
     "impl": "<netlist text>",     # the partial implementation
     "boxes": [{"name": "BB1",     # Black Box interfaces: their
                "inputs": ["x4", "x5"],     # outputs appear as extra
                "outputs": ["z1"]}, ...],   # inputs in the netlist
     "checks": ["random_pattern", ...],     # optional, ladder order
     "patterns": 1000, "seed": 7,           # optional r.p. parameters
     "preflight": false}                    # optional static preflight

and everything else is computed server-side: per-job budgets come from
the server configuration (one tenant must not pick its own ceiling),
the check cache is the server's mount, and the job id is assigned at
admission.  :func:`parse_submit` turns the raw body into a validated
:class:`repro.serve.executor.JobSpec`; :func:`load_pair` additionally
parses and lints the two netlists, so a malformed submission is
rejected at the front door (HTTP 400 with the linter's structured
diagnostics in the body) instead of wasting a worker.

Responses are plain JSON documents built by the server from
:class:`~repro.serve.executor.JobRecord` — see ``docs/service.md`` for
the full schemas.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..analysis.lint import lint_partial
from ..circuit.blif import loads_blif
from ..circuit.iscas import loads_bench
from ..circuit.netlist import Circuit, CircuitError
from ..core.ladder import CHECK_ORDER
from ..partial.blackbox import BlackBox, PartialImplementation

__all__ = ["PROTOCOL_VERSION", "MAX_BODY_BYTES", "ProtocolError",
           "parse_submit", "load_pair", "pair_to_request"]

#: Version stamp carried in ``/healthz`` and job views; bump on any
#: incompatible request/response schema change.
PROTOCOL_VERSION = 1

#: Hard cap on a request body; larger submissions are rejected with
#: HTTP 413 before buffering (netlists this size belong in a campaign,
#: not a service call).
MAX_BODY_BYTES = 32 * 1024 * 1024

_FORMATS = ("blif", "bench")


class ProtocolError(Exception):
    """A rejected request: HTTP status, message, and (for netlist
    problems) the linter's structured diagnostics."""

    def __init__(self, status: int, message: str,
                 diagnostics: Optional[List[Dict]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.diagnostics = list(diagnostics or [])

    def body(self) -> Dict:
        """The JSON error document sent to the client."""
        payload: Dict = {"error": self.message}
        if self.diagnostics:
            payload["diagnostics"] = self.diagnostics
        return payload


def _field(data: Dict, name: str, kind, required: bool = False,
           default=None):
    value = data.get(name, default)
    if value is None:
        if required:
            raise ProtocolError(400, "missing required field %r" % name)
        return default
    if not isinstance(value, kind):
        raise ProtocolError(400, "field %r must be %s" % (
            name, getattr(kind, "__name__", kind)))
    return value


def parse_submit(body: bytes, defaults: Optional[Dict] = None) -> Dict:
    """Validate a submission body into plain job fields.

    Returns the keyword arguments for
    :class:`repro.serve.executor.JobSpec` except the server-assigned
    ones (``id``, ``cache_dir``, budgets).  ``defaults`` supplies the
    server's fallback values (patterns, checks).  Raises
    :class:`ProtocolError` (400) on any malformed field — before any
    netlist parsing happens.
    """
    defaults = defaults or {}
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(413, "request body exceeds %d bytes"
                            % MAX_BODY_BYTES)
    try:
        data = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(400, "request body is not valid JSON: %s"
                            % exc) from None
    if not isinstance(data, dict):
        raise ProtocolError(400, "request body must be a JSON object")
    fmt = _field(data, "format", str, default="blif")
    if fmt not in _FORMATS:
        raise ProtocolError(400, "unknown format %r (choose from %s)"
                            % (fmt, ", ".join(_FORMATS)))
    tenant = _field(data, "tenant", str, default="anon") or "anon"
    spec_text = _field(data, "spec", str, required=True)
    impl_text = _field(data, "impl", str, required=True)
    boxes = _field(data, "boxes", list, default=[])
    clean_boxes: List[Dict] = []
    for i, box in enumerate(boxes):
        if not isinstance(box, dict):
            raise ProtocolError(400, "boxes[%d] must be an object" % i)
        try:
            clean_boxes.append({
                "name": str(box["name"]),
                "inputs": [str(net) for net in box["inputs"]],
                "outputs": [str(net) for net in box["outputs"]]})
        except (KeyError, TypeError):
            raise ProtocolError(
                400, "boxes[%d] needs name/inputs/outputs" % i) from None
    checks = _field(data, "checks", list,
                    default=list(defaults.get("checks", CHECK_ORDER)))
    unknown = [c for c in checks if c not in CHECK_ORDER]
    if unknown or not checks:
        raise ProtocolError(
            400, "unknown checks %r (choose from %s)"
            % (unknown, ", ".join(CHECK_ORDER)))
    patterns = _field(data, "patterns", int,
                      default=int(defaults.get("patterns", 1000)))
    if isinstance(patterns, bool) or patterns < 1:
        raise ProtocolError(400, "field 'patterns' must be a positive "
                                 "integer")
    seed = _field(data, "seed", int, default=None)
    preflight = _field(data, "preflight", bool, default=False)
    return {"tenant": tenant, "fmt": fmt, "spec_text": spec_text,
            "impl_text": impl_text, "boxes": clean_boxes,
            "checks": tuple(c for c in CHECK_ORDER if c in checks),
            "patterns": patterns, "seed": seed,
            "preflight": bool(preflight)}


def _loads(fmt: str, text: str, name: str) -> Circuit:
    reader = loads_blif if fmt == "blif" else loads_bench
    return reader(text, name=name)


def _demote_box_outputs(raw: Circuit, boxes: List[Dict],
                        name: str) -> Circuit:
    """Turn box-output pseudo-inputs back into free nets.

    Netlist formats have no Black Box construct, so box outputs travel
    as extra primary inputs (the convention of
    :mod:`repro.partial.io`); the interface sidecar says which ones to
    demote before the model is rebuilt.
    """
    box_outputs = {net for box in boxes for net in box["outputs"]}
    circuit = Circuit(name)
    for net in raw.inputs:
        if net not in box_outputs:
            circuit.add_input(net)
    for gate in raw.gates:
        circuit.add_gate(gate.output, gate.gtype, gate.inputs)
    circuit.add_outputs(raw.outputs)
    return circuit


def load_pair(fields: Dict) -> Tuple[Circuit, PartialImplementation]:
    """Parse + lint a submission's (spec, partial) pair.

    The same function runs in the server (to reject bad submissions at
    the front door) and in the worker (to rebuild the pair from the
    journaled job).  Raises :class:`ProtocolError` (400) with the
    parser's message or the linter's error diagnostics.
    """
    try:
        spec = _loads(fields["fmt"], fields["spec_text"], "spec")
        spec.validate()
        if spec.free_nets():
            raise CircuitError(
                "the specification must be complete (free nets: %s)"
                % ", ".join(sorted(spec.free_nets())[:5]))
    except CircuitError as exc:
        raise ProtocolError(400, "invalid spec netlist: %s"
                            % exc) from None
    try:
        raw = _loads(fields["fmt"], fields["impl_text"], "impl")
        impl = _demote_box_outputs(raw, fields["boxes"], "impl")
        impl.validate(allow_free=True)
        blackboxes = [BlackBox(box["name"], tuple(box["inputs"]),
                               tuple(box["outputs"]))
                      for box in fields["boxes"]]
    except (CircuitError, ValueError) as exc:
        raise ProtocolError(400, "invalid impl netlist: %s"
                            % exc) from None
    # Lint against the raw circuit + interface list, *before*
    # constructing the model: the constructor rejects inconsistent
    # Black Boxes with a bare message, the linter says why with
    # structured diagnostics the client can render.
    report = lint_partial(impl, boxes=blackboxes)
    errors = report.errors
    if errors:
        raise ProtocolError(
            400, "impl netlist failed lint (%d errors)" % len(errors),
            diagnostics=[diag.to_dict()
                         for diag in report.diagnostics])
    try:
        partial = PartialImplementation(impl, blackboxes)
    except (CircuitError, ValueError) as exc:
        raise ProtocolError(400, "invalid impl netlist: %s"
                            % exc) from None
    if sorted(spec.outputs) != sorted(partial.circuit.outputs) \
            and len(spec.outputs) != len(partial.circuit.outputs):
        raise ProtocolError(
            400, "spec has %d outputs but impl has %d"
            % (len(spec.outputs), len(partial.circuit.outputs)))
    return spec, partial


def pair_to_request(spec: Circuit, partial: PartialImplementation,
                    tenant: str = "anon", **options) -> Dict:
    """Convenience inverse of :func:`load_pair`: the JSON-ready
    submission document for an in-memory pair (used by the client,
    the docs and the tests)."""
    from ..circuit.blif import dumps_blif

    request = {"tenant": tenant, "format": "blif",
               "spec": dumps_blif(spec),
               "impl": dumps_blif(partial.circuit),
               "boxes": [{"name": box.name,
                          "inputs": list(box.inputs),
                          "outputs": list(box.outputs)}
                         for box in partial.boxes]}
    request.update(options)
    return request
