"""Blocking client for the equivalence service.

A thin, dependency-free HTTP/1.1 client over a plain socket — the
mirror image of the server's hand-rolled parser, so the whole
request/response path is auditable end to end in this package.  One
connection per request (the server closes after answering), JSON in
and out::

    from repro.generators.paper_examples import figure1
    from repro.serve.client import ServeClient
    from repro.serve.protocol import pair_to_request

    client = ServeClient("127.0.0.1", 8421)
    spec, partial = figure1()
    job = client.submit(pair_to_request(spec, partial,
                                        tenant="alice"))
    final = client.wait(job["id"])
    assert final["verdict"]["refuted"]

:meth:`ServeClient.stream` consumes the ndjson progress feed and
yields each event as a dict.

Transient failures retry themselves: a 429/503 (and a refused or
dropped connection) is retried up to ``max_retries`` times with
capped exponential backoff whose jitter is *seeded* — the retry
schedule of a given client is reproducible, so a test can assert the
exact sleeps.  The server's ``retry_after`` hint is honored as a
floor on the next delay.  ``stream`` does not retry by default (the
feed is a long-lived connection; replaying half-consumed events is
the caller's call), but accepts ``max_retries`` for the connection
phase.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..resilience.backoff import BackoffPolicy
from .protocol import MAX_BODY_BYTES

__all__ = ["ServeError", "ServeClient"]

#: Statuses that signal "try again later", not "your request is bad".
RETRYABLE_STATUSES = (429, 503)


class ServeError(Exception):
    """A non-2xx service response (or a transport failure).

    ``status`` is the HTTP status (0 for transport errors), ``body``
    the decoded JSON error document when there was one — including the
    linter's ``diagnostics`` on a 400 and ``retry_after`` on a 429.
    """

    def __init__(self, status: int, message: str,
                 body: Optional[Dict] = None):
        super().__init__(message)
        self.status = status
        self.body = body or {}

    @property
    def retry_after(self) -> Optional[float]:
        value = self.body.get("retry_after")
        return float(value) if value is not None else None

    @property
    def diagnostics(self) -> List[Dict]:
        return list(self.body.get("diagnostics", []))


class ServeClient:
    """Synchronous client: one socket per call, JSON in/out.

    ``max_retries`` bounds automatic retries of transient failures
    (:data:`RETRYABLE_STATUSES` plus connection-level ``OSError``);
    ``backoff`` overrides the retry pacing and ``sleep`` is an
    injection point so tests can record the schedule instead of
    actually sleeping.
    """

    def __init__(self, host: str, port: int, timeout: float = 300.0,
                 max_retries: int = 3,
                 backoff: Optional[BackoffPolicy] = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.backoff = backoff if backoff is not None else \
            BackoffPolicy(base=0.05, multiplier=2.0, cap=2.0,
                          jitter=0.25, seed=8421)
        self._sleep = sleep

    # -- retry loop ----------------------------------------------------

    def _retrying(self, call: Callable[[], Dict],
                  max_retries: Optional[int] = None) -> Dict:
        """Run ``call`` with bounded, deterministic backoff on
        transient failures.  The server's ``retry_after`` hint floors
        the next delay; protocol-level errors (malformed responses,
        oversized bodies — ``status == 0`` but not transport) are
        never retried."""
        retries = self.max_retries if max_retries is None \
            else max_retries
        attempt = 0
        while True:
            floor = 0.0
            try:
                return call()
            except ServeError as exc:
                if exc.status not in RETRYABLE_STATUSES \
                        or attempt >= retries:
                    raise
                floor = exc.retry_after or 0.0
            except OSError:
                if attempt >= retries:
                    raise
            attempt += 1
            self._sleep(self.backoff.delay(attempt, floor=floor))

    # -- transport -----------------------------------------------------

    def _connect(self) -> socket.socket:
        return socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)

    def _send_request(self, sock: socket.socket, method: str,
                      path: str, body: Optional[bytes]) -> None:
        head = ["%s %s HTTP/1.1" % (method, path),
                "Host: %s:%d" % (self.host, self.port),
                "Connection: close"]
        if body is not None:
            head.append("Content-Type: application/json")
            head.append("Content-Length: %d" % len(body))
        sock.sendall(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + (body or b""))

    @staticmethod
    def _read_head(reader) -> Tuple[int, Dict[str, str]]:
        line = reader.readline()
        if not line:
            raise ServeError(0, "server closed the connection before "
                                "responding")
        parts = line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServeError(0, "malformed status line %r" % line)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    @staticmethod
    def _decode(status: int, payload: bytes) -> Dict:
        try:
            body = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            body = {"error": payload.decode("utf-8", "replace")}
        if not 200 <= status < 300:
            raise ServeError(status,
                             str(body.get("error", "HTTP %d" % status))
                             if isinstance(body, dict)
                             else "HTTP %d" % status,
                             body if isinstance(body, dict) else None)
        return body

    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None) -> Dict:
        body = json.dumps(payload).encode("utf-8") \
            if payload is not None else None
        with self._connect() as sock:
            self._send_request(sock, method, path, body)
            with sock.makefile("rb") as reader:
                status, headers = self._read_head(reader)
                length = int(headers.get("content-length", 0))
                if length > MAX_BODY_BYTES:
                    raise ServeError(0, "response body too large")
                return self._decode(status, reader.read(length))

    # -- API -----------------------------------------------------------

    def submit(self, request: Dict) -> Dict:
        """POST one submission (see
        :func:`repro.serve.protocol.pair_to_request`); returns the
        queued job view (``id``, ``status``...).  Backpressure (429
        with ``retry_after``) is retried up to ``max_retries`` times
        before the :class:`ServeError` escapes; ``status=400`` with
        ``diagnostics`` for a malformed netlist is raised
        immediately."""
        return self._retrying(
            lambda: self._request("POST", "/v1/jobs", request))

    def job(self, job_id: str) -> Dict:
        """GET one job's current view (retries transient failures)."""
        return self._retrying(
            lambda: self._request("GET", "/v1/jobs/%s" % job_id))

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_interval: float = 0.05) -> Dict:
        """Poll until the job is terminal; returns the final view."""
        deadline = time.monotonic() + timeout
        interval = poll_interval
        while True:
            view = self.job(job_id)
            if view["status"] in ("done", "lost"):
                return view
            if time.monotonic() >= deadline:
                raise ServeError(0, "job %s still %r after %.0fs"
                                 % (job_id, view["status"], timeout))
            time.sleep(interval)
            interval = min(interval * 1.5, 1.0)

    def stream(self, job_id: str,
               max_retries: int = 0) -> Iterator[Dict]:
        """Yield the job's ndjson progress events until it finishes.

        Only the *connection* phase retries (and only when asked via
        ``max_retries``): once events start flowing, a dropped feed
        surfaces to the caller, who knows which events it already
        consumed."""
        attempt = 0
        while True:
            try:
                sock = self._connect()
                break
            except OSError:
                if attempt >= max_retries:
                    raise
                attempt += 1
                self._sleep(self.backoff.delay(attempt))
        with sock:
            self._send_request(sock, "GET",
                               "/v1/jobs/%s/events" % job_id, None)
            with sock.makefile("rb") as reader:
                status, _headers = self._read_head(reader)
                if status != 200:
                    self._decode(status, reader.read())
                for line in reader:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))

    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/stats")
