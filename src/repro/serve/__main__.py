"""``python -m repro.serve`` — run the equivalence service.

Example::

    python -m repro.serve --port 8421 --jobs 4 \\
        --cache-dir /var/cache/repro --journal /var/lib/repro/jobs.jsonl

The process serves until SIGINT/SIGTERM, then drains gracefully
(running jobs finish; queued jobs stay journaled and resume on the
next start).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from .server import EquivalenceServer, ServeConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve black-box equivalence checks over HTTP.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8421,
                        help="bind port; 0 picks an ephemeral port "
                             "(default 8421)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes / concurrent checks "
                             "(default 2)")
    parser.add_argument("--queue", type=int, default=64,
                        help="admission queue bound; beyond it "
                             "submissions get 429 (default 64)")
    parser.add_argument("--tenant-queue", type=int, default=None,
                        help="per-tenant queue bound "
                             "(default: half of --queue)")
    parser.add_argument("--cache-dir", default=None,
                        help="shared CheckCache directory (warm "
                             "resubmissions replay cached verdicts)")
    parser.add_argument("--journal", default=None,
                        help="job journal path; enables restart "
                             "recovery")
    parser.add_argument("--timeout", type=float, default=None,
                        help="hard per-job deadline in seconds "
                             "(worker is SIGKILLed)")
    parser.add_argument("--soft-timeout", type=float, default=None,
                        help="cooperative per-job budget in seconds "
                             "(job ends inconclusive)")
    parser.add_argument("--node-limit", type=int, default=None,
                        help="per-check live BDD node budget")
    parser.add_argument("--patterns", type=int, default=1000,
                        help="default random patterns per job "
                             "(default 1000)")
    parser.add_argument("--preflight", action="store_true",
                        help="run the static ternary preflight before "
                             "every ladder")
    parser.add_argument("--trace", dest="trace_path", default=None,
                        help="write repro.obs trace events here on "
                             "shutdown")
    return parser


async def _serve(config: ServeConfig) -> None:
    server = EquivalenceServer(config)
    host, port = await server.start()
    print("serving on http://%s:%d (jobs=%d queue=%d)"
          % (host, port, config.jobs, config.queue), file=sys.stderr)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        print("shutting down...", file=sys.stderr)
        await server.stop()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = ServeConfig(
        host=args.host, port=args.port, jobs=args.jobs,
        queue=args.queue, tenant_queue=args.tenant_queue,
        cache_dir=args.cache_dir, journal=args.journal,
        timeout=args.timeout, soft_timeout=args.soft_timeout,
        node_limit=args.node_limit, patterns=args.patterns,
        preflight=args.preflight, trace_path=args.trace_path)
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
