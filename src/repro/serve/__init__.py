"""repro.serve — the equivalence checker as a long-running service.

Everything below runs on the standard library alone: :mod:`asyncio`
streams and a hand-rolled HTTP/1.1 subset (no ``http.server``), the
spawn worker pool of :mod:`repro.jobs` for isolation, its journal
machinery for durability, and the static-analysis
:class:`~repro.analysis.static.CheckCache` as the shared verdict
store.  Module map:

* :mod:`~repro.serve.protocol` — request/response vocabulary,
  validation, netlist parsing + lint at the front door.
* :mod:`~repro.serve.scheduler` — bounded admission, per-tenant
  fair-share dispatch, ``Retry-After`` sizing.
* :mod:`~repro.serve.executor` — job specs/records and the worker
  pool front (SIGKILL-able check execution).
* :mod:`~repro.serve.store` — append-only job journal; a restarted
  server resumes queued jobs and reports lost ones.
* :mod:`~repro.serve.server` — the asyncio HTTP server tying it all
  together.
* :mod:`~repro.serve.client` — blocking socket client for scripts,
  tests and docs.

Run it: ``python -m repro.serve --port 8421 --jobs 4`` — see
``docs/service.md`` for the protocol and a runnable quickstart.
"""

from .client import ServeClient, ServeError
from .executor import JobRecord, JobSpec
from .protocol import (PROTOCOL_VERSION, ProtocolError, pair_to_request,
                       parse_submit)
from .scheduler import FairScheduler, QueueFull
from .server import EquivalenceServer, ServeConfig
from .store import JobStore

__all__ = [
    "PROTOCOL_VERSION",
    "EquivalenceServer",
    "FairScheduler",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "ProtocolError",
    "QueueFull",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "pair_to_request",
    "parse_submit",
]
